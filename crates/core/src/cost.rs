//! Cost models: AWS pricing (paper Tables II and III) and the
//! pipeline-replication chooser (paper Figure 8).

use genesis_hw::memory::LINE_BYTES;
use genesis_hw::resource::{
    pipeline_overhead, shell_overhead, VU9P_BRAM_BYTES, VU9P_LUTS, VU9P_REGISTERS,
};
use genesis_hw::{MemoryConfig, ResourceUsage};
use std::time::Duration;

/// Hourly price of one machine configuration (paper Table II, Nov 2019).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstancePrice {
    /// Instance name.
    pub name: &'static str,
    /// Total $/hour (compute + storage where applicable).
    pub dollars_per_hour: f64,
}

/// `f1.2xlarge` hosting the Genesis hardware: $1.65/hr.
pub const F1_2XLARGE: InstancePrice = InstancePrice { name: "f1.2xlarge", dollars_per_hour: 1.65 };

/// `r5.4xlarge` running GATK4 software: $1.01/hr compute + $0.28/hr storage.
pub const R5_4XLARGE: InstancePrice =
    InstancePrice { name: "r5.4xlarge", dollars_per_hour: 1.01 + 0.28 };

impl InstancePrice {
    /// Dollar cost of running for `d`.
    #[must_use]
    pub fn cost_of(&self, d: Duration) -> f64 {
        self.dollars_per_hour * d.as_secs_f64() / 3600.0
    }
}

/// One row of paper Table III.
#[derive(Debug, Clone, PartialEq)]
pub struct CostRow {
    /// Stage name.
    pub stage: String,
    /// Genesis cost reduction over the baseline (×).
    pub cost_reduction: f64,
    /// Genesis speedup over the baseline (×).
    pub speedup: f64,
    /// Normalized performance per dollar (×).
    pub perf_per_dollar: f64,
}

/// Computes a Table III row from stage runtimes.
///
/// Following the paper: the baseline runs on the R5 instance, the
/// accelerated system on the F1 instance; *cost reduction* compares
/// dollars for the same work, *performance/$* compares speedup per dollar
/// rate, and their product relationship
/// `perf/$ = speedup × cost_reduction / (accel/baseline price ratio …)`
/// reduces to `speedup²/(price ratio × speedup)` — computed here directly
/// from first principles.
#[must_use]
pub fn cost_row(stage: &str, baseline: Duration, accelerated: Duration) -> CostRow {
    let base_cost = R5_4XLARGE.cost_of(baseline);
    let accel_cost = F1_2XLARGE.cost_of(accelerated);
    let speedup = baseline.as_secs_f64() / accelerated.as_secs_f64().max(1e-12);
    let cost_reduction = base_cost / accel_cost.max(1e-18);
    // Performance per dollar: (work/time)/(dollars/time) ratio vs baseline.
    let perf_per_dollar = speedup * cost_reduction;
    CostRow { stage: stage.to_owned(), cost_reduction, speedup, perf_per_dollar }
}

/// Hard cap on pipeline replication: the paper never replicates beyond 16
/// (the Figure 8 Mark Duplicates / metadata designs).
pub const MAX_REPLICATION: usize = 16;

/// Memory-port and fabric demand of *one* pipeline instance, the input to
/// [`choose_replication`].
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineProfile {
    /// Element width in bytes of each *sustained* read port (a streaming
    /// Memory Reader consumes one element per cycle at peak). Ports that
    /// move one element per multi-cycle item (e.g. an aggregate writer
    /// emitting one sum per read) contribute negligible bandwidth and are
    /// omitted.
    pub read_port_bytes: Vec<usize>,
    /// Element width in bytes of each sustained write port.
    pub write_port_bytes: Vec<usize>,
    /// Fabric usage of one pipeline: modules, queues and scratchpads
    /// (shell and per-pipeline arbiter overhead are added by the chooser).
    pub fabric: ResourceUsage,
    /// Cardinality expansion of the pipeline body: output rows per scanned
    /// input row (`1.0` for row-preserving pipelines). An exploding module
    /// (e.g. ReadToBases, ~read-length×) emits at most one flit per cycle,
    /// so its *upstream* readers sustain only `1/expansion` elements per
    /// cycle — their port demand on the memory channels shrinks
    /// accordingly, letting the Figure 8 chooser replicate an
    /// explode-bound pipeline further than raw port widths suggest.
    pub expansion: f64,
    /// Post-pushdown row rate of the spine scan: surviving rows per
    /// scanned row (`1.0` when no predicate was pushed into the scan).
    /// Replication splits the spine's *surviving* rows, so at selectivity
    /// `s` only about `ceil(s × cap)` replicas ever hold a non-trivial
    /// batch — the chooser caps the factor there, freeing area instead of
    /// replicating pipelines that would idle.
    pub selectivity: f64,
}

impl Default for PipelineProfile {
    fn default() -> PipelineProfile {
        PipelineProfile {
            read_port_bytes: Vec::new(),
            write_port_bytes: Vec::new(),
            fabric: ResourceUsage::default(),
            expansion: 1.0,
            selectivity: 1.0,
        }
    }
}

impl PipelineProfile {
    /// Bytes per cycle the pipeline's memory ports sustain at steady
    /// state: read ports are throttled by the expansion factor (the
    /// exploding module is the rate limiter), write ports run at full
    /// rate.
    fn port_bytes_per_cycle(&self) -> f64 {
        let reads: usize = self.read_port_bytes.iter().sum();
        let writes: usize = self.write_port_bytes.iter().sum();
        reads as f64 / self.expansion.max(1.0) + writes as f64
    }

    /// Peak memory-line demand of one pipeline in lines/cycle: every port
    /// moves one element per cycle (scaled by the expansion factor for
    /// read ports), 64-byte lines amortize across elements, and the local
    /// arbiter forwards at most `local_requests_per_cycle` lines.
    #[must_use]
    pub fn lines_per_cycle(&self, mem: &MemoryConfig) -> f64 {
        let raw = self.port_bytes_per_cycle() / LINE_BYTES as f64;
        raw.min(f64::from(mem.local_requests_per_cycle))
    }
}

/// Which budget limited the chosen replication factor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicationBound {
    /// The global memory channels saturate first (paper Figure 8: the
    /// channel arbiters accept `num_channels × channel_requests_per_cycle`
    /// lines per cycle).
    MemoryChannels,
    /// The FPGA fabric (LUT/register/BRAM) fills first — the BQSR case,
    /// whose per-pipeline covariate scratchpads are BRAM-heavy.
    FpgaArea,
    /// The tiered-memory PCIe spill link saturates first: every replica
    /// adds projected spill/fill traffic to one shared link, so replicating
    /// past its bandwidth only converts compute into spill-wait stalls.
    PcieLink,
    /// A pushed-down predicate leaves so few surviving rows that more
    /// replicas would idle: the factor is capped at `ceil(selectivity ×
    /// cap)` (see [`PipelineProfile::selectivity`]).
    Selectivity,
    /// Neither budget binds below the [`MAX_REPLICATION`] policy cap.
    PolicyCap,
}

/// Projected tiered-memory spill traffic of one pipeline plus the PCIe
/// link budget all replicas share — the extra input that lets
/// [`choose_replication_spill`] shrink the factor when the spill link,
/// not the memory channels or the fabric, is the bottleneck.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SpillProfile {
    /// Projected spill + fill PCIe traffic of one pipeline in bytes/cycle.
    pub demand_bytes_per_cycle: f64,
    /// PCIe link capacity in bytes/cycle, shared by every replica.
    pub link_bytes_per_cycle: f64,
}

impl SpillProfile {
    /// Projects one pipeline's spill traffic under `tiers` at `clock_hz`:
    /// scratchpad state beyond the modeled SPM misses in proportion to the
    /// overflow (`1 − spm/working-set`, with the BRAM footprint standing
    /// in for the working set), and every missed element drags a fill plus
    /// an eventual dirty write-back across the link.
    #[must_use]
    pub fn project(
        profile: &PipelineProfile,
        tiers: &crate::device::TierConfig,
        clock_hz: f64,
    ) -> SpillProfile {
        let ws = profile.fabric.bram_bytes as f64;
        let miss = if ws > 0.0 { ((ws - tiers.spm_bytes as f64) / ws).max(0.0) } else { 0.0 };
        SpillProfile {
            demand_bytes_per_cycle: miss * profile.port_bytes_per_cycle() * 2.0,
            link_bytes_per_cycle: tiers.link_bytes_per_cycle(clock_hz),
        }
    }
}

/// A replication decision with the budgets that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicationChoice {
    /// Chosen replication factor (a power of two, like all paper designs).
    pub factor: usize,
    /// Largest factor the memory channels sustain.
    pub mem_bound: usize,
    /// Largest factor that fits the VU9P fabric.
    pub area_bound: usize,
    /// Largest factor the tiered-memory PCIe spill link sustains
    /// (`usize::MAX`-clamped-to-`4×MAX_REPLICATION` when tiering is off or
    /// the pipeline projects no spill traffic).
    pub pcie_bound: usize,
    /// Largest factor a selective (pushed-down) scan keeps busy
    /// (clamped like `pcie_bound` when selectivity is 1.0).
    pub work_bound: usize,
    /// Which budget bound the choice.
    pub limited_by: ReplicationBound,
    /// One pipeline's line demand in lines/cycle.
    pub demand_lines_per_cycle: f64,
}

impl ReplicationChoice {
    /// Human-readable summary for `explain` output.
    #[must_use]
    pub fn summary(&self) -> String {
        let pcie = if self.pcie_bound < MAX_REPLICATION * 4 {
            format!(", pcie bound {}x", self.pcie_bound)
        } else {
            String::new()
        };
        let work = if self.work_bound < MAX_REPLICATION * 4 {
            format!(", selectivity bound {}x", self.work_bound)
        } else {
            String::new()
        };
        format!(
            "replication {}x (mem bound {}x, area bound {}x{pcie}{work}, demand {:.3} lines/cycle, limited by {:?})",
            self.factor, self.mem_bound, self.area_bound, self.demand_lines_per_cycle, self.limited_by
        )
    }
}

/// Largest power of two `<= n` (minimum 1): arbiter trees are binary, so
/// replication factors are powers of two — exactly the paper's 16/16/8.
fn prev_pow2(n: usize) -> usize {
    let mut p = 1;
    while p * 2 <= n {
        p *= 2;
    }
    p
}

/// Largest replication factor whose fabric fits the VU9P.
fn area_bound(profile: &PipelineProfile) -> usize {
    let shell = shell_overhead();
    let per = profile.fabric + pipeline_overhead();
    let mut r = 0usize;
    loop {
        let next = per.times(r as u64 + 1) + shell;
        let fits = next.luts <= VU9P_LUTS
            && next.registers <= VU9P_REGISTERS
            && next.bram_bytes <= VU9P_BRAM_BYTES;
        if !fits || r + 1 > 4096 {
            break;
        }
        r += 1;
    }
    r.max(1)
}

/// Picks the pipeline replication factor for one pipeline profile under
/// the channel/arbiter budget of `mem` (paper Figure 8): replicate until
/// either the global memory channels or the FPGA fabric saturates, round
/// down to a power of two, and never exceed `cap`. Equivalent to
/// [`choose_replication_spill`] with no spill profile — the tiers-off
/// decision.
#[must_use]
pub fn choose_replication(
    profile: &PipelineProfile,
    mem: &MemoryConfig,
    cap: usize,
) -> ReplicationChoice {
    choose_replication_spill(profile, mem, cap, None)
}

/// [`choose_replication`] extended with projected tiered-memory spill
/// traffic: the shared PCIe spill link becomes a third saturable budget,
/// so a pipeline whose working set overflows the modeled SPM replicates
/// only as far as the link sustains its spill/fill traffic.
#[must_use]
pub fn choose_replication_spill(
    profile: &PipelineProfile,
    mem: &MemoryConfig,
    cap: usize,
    spill: Option<SpillProfile>,
) -> ReplicationChoice {
    let capacity =
        mem.num_channels as f64 * f64::from(mem.channel_requests_per_cycle);
    let demand = profile.lines_per_cycle(mem);
    let mem_bound = if demand <= 0.0 {
        usize::MAX
    } else {
        ((capacity / demand).floor() as usize).max(1)
    };
    let pcie_bound = match spill {
        Some(s) if s.demand_bytes_per_cycle > 0.0 => {
            (((s.link_bytes_per_cycle / s.demand_bytes_per_cycle).floor()) as usize).max(1)
        }
        _ => usize::MAX,
    };
    let area = area_bound(profile);
    let cap = cap.clamp(1, MAX_REPLICATION);
    // A selective scan feeds only `selectivity × rows` into the replicas
    // that split them: past `ceil(selectivity × cap)` replicas the extra
    // pipelines hold near-empty batches, so replication stops paying.
    let work_bound = if profile.selectivity < 1.0 {
        ((cap as f64 * profile.selectivity).ceil() as usize).max(1)
    } else {
        usize::MAX
    };
    let raw = mem_bound.min(area).min(pcie_bound).min(work_bound).min(cap);
    let factor = prev_pow2(raw);
    let limited_by = if work_bound < mem_bound.min(area).min(pcie_bound).min(cap) {
        ReplicationBound::Selectivity
    } else if factor >= prev_pow2(cap) {
        ReplicationBound::PolicyCap
    } else if pcie_bound < mem_bound.min(area) {
        ReplicationBound::PcieLink
    } else if mem_bound <= area {
        ReplicationBound::MemoryChannels
    } else {
        ReplicationBound::FpgaArea
    };
    ReplicationChoice {
        factor,
        mem_bound: mem_bound.min(MAX_REPLICATION * 4),
        area_bound: area,
        pcie_bound: pcie_bound.min(MAX_REPLICATION * 4),
        work_bound: work_bound.min(MAX_REPLICATION * 4),
        limited_by,
        demand_lines_per_cycle: demand,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replication_bounds() {
        let mem = MemoryConfig::default();
        // A light pipeline (1-byte stream, small fabric) hits the policy cap.
        let light = PipelineProfile {
            read_port_bytes: vec![1],
            write_port_bytes: vec![],
            fabric: ResourceUsage { luts: 3_500, registers: 4_900, bram_bytes: 2_304 },
            expansion: 1.0,
            selectivity: 1.0,
        };
        let c = choose_replication(&light, &mem, MAX_REPLICATION);
        assert_eq!(c.factor, 16);
        assert_eq!(c.limited_by, ReplicationBound::PolicyCap);
        // A memory-hungry pipeline saturates the 4 channels first.
        let heavy = PipelineProfile {
            read_port_bytes: vec![8, 8, 8, 8, 8, 8, 8, 8],
            write_port_bytes: vec![8, 8],
            fabric: ResourceUsage { luts: 10_000, registers: 10_000, bram_bytes: 10_000 },
            expansion: 1.0,
            selectivity: 1.0,
        };
        let c = choose_replication(&heavy, &mem, MAX_REPLICATION);
        assert_eq!(c.limited_by, ReplicationBound::MemoryChannels);
        assert!(c.factor <= 4);
        // A BRAM-heavy pipeline (512 KB of scratchpads) is area-bound at 8.
        let bram = PipelineProfile {
            read_port_bytes: vec![4],
            write_port_bytes: vec![4],
            fabric: ResourceUsage { luts: 4_650, registers: 5_700, bram_bytes: 528_896 },
            expansion: 1.0,
            selectivity: 1.0,
        };
        let c = choose_replication(&bram, &mem, MAX_REPLICATION);
        assert_eq!(c.factor, 8);
        assert_eq!(c.limited_by, ReplicationBound::FpgaArea);
    }

    #[test]
    fn pcie_saturation_shrinks_replication() {
        use crate::device::TierConfig;
        let mem = MemoryConfig::default();
        // A light pipeline whose 256 KiB scratchpad working set is 4× the
        // modeled 64 KiB SPM: tiers off it replicates to the 16× policy
        // cap...
        let profile = PipelineProfile {
            read_port_bytes: vec![4],
            write_port_bytes: vec![4],
            fabric: ResourceUsage { luts: 3_500, registers: 4_900, bram_bytes: 256 << 10 },
            expansion: 1.0,
            selectivity: 1.0,
        };
        let untired = choose_replication(&profile, &mem, MAX_REPLICATION);
        assert_eq!(untired.factor, 16);
        // ...but over the default 8 GB/s link at 250 MHz (32 B/cycle), the
        // projected spill traffic (75% miss × 8 B/cycle × 2 = 12 B/cycle
        // per replica) saturates the link at 2 replicas.
        let tiers = TierConfig { spm_bytes: 64 << 10, ..TierConfig::default() };
        let spill = SpillProfile::project(&profile, &tiers, 250.0e6);
        assert!((spill.demand_bytes_per_cycle - 12.0).abs() < 1e-9);
        assert!((spill.link_bytes_per_cycle - 32.0).abs() < 1e-9);
        let tiered = choose_replication_spill(&profile, &mem, MAX_REPLICATION, Some(spill));
        assert_eq!(tiered.factor, 2);
        assert_eq!(tiered.pcie_bound, 2);
        assert_eq!(tiered.limited_by, ReplicationBound::PcieLink);
        assert!(tiered.factor < untired.factor);
        assert!(tiered.summary().contains("pcie bound 2x"), "got: {}", tiered.summary());
        // A working set that fits the SPM projects no spill traffic and
        // keeps the tiers-off decision.
        let small = PipelineProfile {
            fabric: ResourceUsage { luts: 3_500, registers: 4_900, bram_bytes: 32 << 10 },
            ..profile.clone()
        };
        let s = SpillProfile::project(&small, &tiers, 250.0e6);
        assert_eq!(s.demand_bytes_per_cycle, 0.0);
        let c = choose_replication_spill(&small, &mem, MAX_REPLICATION, Some(s));
        assert_eq!(c.factor, 16);
    }

    #[test]
    fn selectivity_caps_replication() {
        let mem = MemoryConfig::default();
        // A light pipeline behind a 10%-selective pushed predicate:
        // ceil(0.1 × 16) = 2 replicas hold every surviving row, so
        // replicating further only parks idle pipelines.
        let selective = PipelineProfile {
            read_port_bytes: vec![1],
            write_port_bytes: vec![],
            fabric: ResourceUsage { luts: 3_500, registers: 4_900, bram_bytes: 2_304 },
            expansion: 1.0,
            selectivity: 0.1,
        };
        let c = choose_replication(&selective, &mem, MAX_REPLICATION);
        assert_eq!(c.work_bound, 2);
        assert_eq!(c.factor, 2);
        assert_eq!(c.limited_by, ReplicationBound::Selectivity);
        assert!(c.summary().contains("selectivity bound 2x"), "got: {}", c.summary());
        // The same pipeline with nothing pushed keeps the policy cap.
        let full = PipelineProfile { selectivity: 1.0, ..selective };
        let c = choose_replication(&full, &mem, MAX_REPLICATION);
        assert_eq!(c.factor, 16);
        assert_eq!(c.limited_by, ReplicationBound::PolicyCap);
        assert!(!c.summary().contains("selectivity"), "got: {}", c.summary());
    }

    #[test]
    fn factors_are_powers_of_two() {
        assert_eq!(prev_pow2(1), 1);
        assert_eq!(prev_pow2(9), 8);
        assert_eq!(prev_pow2(15), 8);
        assert_eq!(prev_pow2(16), 16);
        assert_eq!(prev_pow2(31), 16);
    }

    #[test]
    fn instance_cost() {
        let hour = Duration::from_secs(3600);
        assert!((F1_2XLARGE.cost_of(hour) - 1.65).abs() < 1e-12);
        assert!((R5_4XLARGE.cost_of(hour) - 1.29).abs() < 1e-12);
    }

    #[test]
    fn equal_runtime_row() {
        // Same runtime: speedup 1, cost reduction = price ratio.
        let row = cost_row("x", Duration::from_secs(100), Duration::from_secs(100));
        assert!((row.speedup - 1.0).abs() < 1e-9);
        assert!((row.cost_reduction - 1.29 / 1.65).abs() < 1e-9);
    }

    #[test]
    fn paper_markdup_shape() {
        // Paper Table III: 2.08× speedup gives 2.08× (well, 1.63×·…)
        // cost reduction at the same price ratio and 4.31× perf/$;
        // with our formula: reduction = 2.08 × (1.29/1.65) = 1.63,
        // perf/$ = 2.08 × 1.63 = 3.38. The paper's 2.08×/4.31× implies
        // it normalized prices slightly differently; the *relationship*
        // perf/$ ≈ speedup × reduction holds in both.
        let row = cost_row("markdup", Duration::from_secs(208), Duration::from_secs(100));
        assert!(row.speedup > 2.0);
        assert!((row.perf_per_dollar - row.speedup * row.cost_reduction).abs() < 1e-9);
    }
}
