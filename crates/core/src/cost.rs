//! AWS cost model (paper Tables II and III).

use std::time::Duration;

/// Hourly price of one machine configuration (paper Table II, Nov 2019).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstancePrice {
    /// Instance name.
    pub name: &'static str,
    /// Total $/hour (compute + storage where applicable).
    pub dollars_per_hour: f64,
}

/// `f1.2xlarge` hosting the Genesis hardware: $1.65/hr.
pub const F1_2XLARGE: InstancePrice = InstancePrice { name: "f1.2xlarge", dollars_per_hour: 1.65 };

/// `r5.4xlarge` running GATK4 software: $1.01/hr compute + $0.28/hr storage.
pub const R5_4XLARGE: InstancePrice =
    InstancePrice { name: "r5.4xlarge", dollars_per_hour: 1.01 + 0.28 };

impl InstancePrice {
    /// Dollar cost of running for `d`.
    #[must_use]
    pub fn cost_of(&self, d: Duration) -> f64 {
        self.dollars_per_hour * d.as_secs_f64() / 3600.0
    }
}

/// One row of paper Table III.
#[derive(Debug, Clone, PartialEq)]
pub struct CostRow {
    /// Stage name.
    pub stage: String,
    /// Genesis cost reduction over the baseline (×).
    pub cost_reduction: f64,
    /// Genesis speedup over the baseline (×).
    pub speedup: f64,
    /// Normalized performance per dollar (×).
    pub perf_per_dollar: f64,
}

/// Computes a Table III row from stage runtimes.
///
/// Following the paper: the baseline runs on the R5 instance, the
/// accelerated system on the F1 instance; *cost reduction* compares
/// dollars for the same work, *performance/$* compares speedup per dollar
/// rate, and their product relationship
/// `perf/$ = speedup × cost_reduction / (accel/baseline price ratio …)`
/// reduces to `speedup²/(price ratio × speedup)` — computed here directly
/// from first principles.
#[must_use]
pub fn cost_row(stage: &str, baseline: Duration, accelerated: Duration) -> CostRow {
    let base_cost = R5_4XLARGE.cost_of(baseline);
    let accel_cost = F1_2XLARGE.cost_of(accelerated);
    let speedup = baseline.as_secs_f64() / accelerated.as_secs_f64().max(1e-12);
    let cost_reduction = base_cost / accel_cost.max(1e-18);
    // Performance per dollar: (work/time)/(dollars/time) ratio vs baseline.
    let perf_per_dollar = speedup * cost_reduction;
    CostRow { stage: stage.to_owned(), cost_reduction, speedup, perf_per_dollar }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instance_cost() {
        let hour = Duration::from_secs(3600);
        assert!((F1_2XLARGE.cost_of(hour) - 1.65).abs() < 1e-12);
        assert!((R5_4XLARGE.cost_of(hour) - 1.29).abs() < 1e-12);
    }

    #[test]
    fn equal_runtime_row() {
        // Same runtime: speedup 1, cost reduction = price ratio.
        let row = cost_row("x", Duration::from_secs(100), Duration::from_secs(100));
        assert!((row.speedup - 1.0).abs() < 1e-9);
        assert!((row.cost_reduction - 1.29 / 1.65).abs() < 1e-9);
    }

    #[test]
    fn paper_markdup_shape() {
        // Paper Table III: 2.08× speedup gives 2.08× (well, 1.63×·…)
        // cost reduction at the same price ratio and 4.31× perf/$;
        // with our formula: reduction = 2.08 × (1.29/1.65) = 1.63,
        // perf/$ = 2.08 × 1.63 = 3.38. The paper's 2.08×/4.31× implies
        // it normalized prices slightly differently; the *relationship*
        // perf/$ ≈ speedup × reduction holds in both.
        let row = cost_row("markdup", Duration::from_secs(208), Duration::from_secs(100));
        assert!(row.speedup > 2.0);
        assert!((row.perf_per_dollar - row.speedup * row.cost_reduction).abs() < 1e-9);
    }
}
