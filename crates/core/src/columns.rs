//! Host-side column marshalling: flattening read records into the
//! device-memory layouts the memory readers stream.

use genesis_types::{ReadRecord, TypeError};

/// The flattened column buffers for a batch of reads — the concrete layout
/// behind the paper's `configure_mem(addr, elemsize, len, colname, …)`
/// calls (§III-E).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReadColumns {
    /// `READS.POS`, one `u32` per read.
    pub pos: Vec<u32>,
    /// `READS.ENDPOS`, one `u32` per read.
    pub endpos: Vec<u32>,
    /// `READS.CIGAR`: packed 16-bit elements, concatenated.
    pub cigar: Vec<u16>,
    /// Per-read CIGAR element counts.
    pub cigar_lens: Vec<u32>,
    /// `READS.SEQ`: base codes, concatenated.
    pub seq: Vec<u8>,
    /// Per-read sequence lengths (shared by `SEQ` and `QUAL`).
    pub seq_lens: Vec<u32>,
    /// `READS.QUAL`: Phred values, concatenated.
    pub qual: Vec<u8>,
    /// Reverse-strand flag per read (BQSR cycle covariate input).
    pub flags: Vec<u8>,
}

impl ReadColumns {
    /// Flattens a slice of reads.
    ///
    /// # Errors
    ///
    /// Returns [`TypeError::InvalidCigar`] if a CIGAR cannot be packed.
    pub fn from_reads<'a, I>(reads: I) -> Result<ReadColumns, TypeError>
    where
        I: IntoIterator<Item = &'a ReadRecord>,
    {
        let mut c = ReadColumns::default();
        for r in reads {
            c.pos.push(r.pos);
            c.endpos.push(r.end_pos());
            let packed = r.cigar.pack()?;
            c.cigar_lens.push(packed.len() as u32);
            c.cigar.extend(packed);
            c.seq_lens.push(r.seq.len() as u32);
            c.seq.extend(r.seq.iter().map(|b| b.code()));
            c.qual.extend(r.qual.iter().map(|q| q.value()));
            c.flags.push(u8::from(r.flags.is_reverse()));
        }
        Ok(c)
    }

    /// Number of reads in the batch.
    #[must_use]
    pub fn num_reads(&self) -> usize {
        self.pos.len()
    }

    /// Total payload bytes (the host→device DMA volume for these columns).
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        (self.pos.len() * 4
            + self.endpos.len() * 4
            + self.cigar.len() * 2
            + self.cigar_lens.len() * 4
            + self.seq.len()
            + self.seq_lens.len() * 4
            + self.qual.len()
            + self.flags.len()) as u64
    }
}

/// Little-endian byte view of a `u32` slice.
#[must_use]
pub fn u32_bytes(v: &[u32]) -> Vec<u8> {
    v.iter().flat_map(|x| x.to_le_bytes()).collect()
}

/// Little-endian byte view of a `u16` slice.
#[must_use]
pub fn u16_bytes(v: &[u16]) -> Vec<u8> {
    v.iter().flat_map(|x| x.to_le_bytes()).collect()
}

/// Parses little-endian `u32` values out of device bytes.
#[must_use]
pub fn bytes_to_u32(bytes: &[u8]) -> Vec<u32> {
    bytes
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect()
}

/// Parses little-endian `u64` values out of device bytes.
#[must_use]
pub fn bytes_to_u64(bytes: &[u8]) -> Vec<u64> {
    bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use genesis_types::{Base, Chrom, Qual, ReadFlags};

    fn read(pos: u32, cigar: &str, reverse: bool) -> ReadRecord {
        let cigar: genesis_types::Cigar = cigar.parse().unwrap();
        let n = cigar.read_len() as usize;
        ReadRecord::builder("r", Chrom::new(1), pos)
            .cigar(cigar)
            .seq(vec![Base::C; n])
            .qual(vec![Qual::new(30).unwrap(); n])
            .flags(ReadFlags::empty().with(ReadFlags::REVERSE, reverse))
            .build()
            .unwrap()
    }

    #[test]
    fn flatten_layout() {
        let reads = vec![read(5, "3M", false), read(9, "2M1I1M", true)];
        let c = ReadColumns::from_reads(&reads).unwrap();
        assert_eq!(c.num_reads(), 2);
        assert_eq!(c.pos, vec![5, 9]);
        assert_eq!(c.endpos, vec![8, 12]);
        assert_eq!(c.cigar_lens, vec![1, 3]);
        assert_eq!(c.seq_lens, vec![3, 4]);
        assert_eq!(c.seq.len(), 7);
        assert_eq!(c.qual.len(), 7);
        assert_eq!(c.flags, vec![0, 1]);
        assert!(c.total_bytes() > 0);
    }

    #[test]
    fn byte_roundtrips() {
        let v = vec![1u32, 500, 70_000];
        assert_eq!(bytes_to_u32(&u32_bytes(&v)), v);
        assert_eq!(u16_bytes(&[0x1234]), vec![0x34, 0x12]);
        assert_eq!(bytes_to_u64(&42u64.to_le_bytes()), vec![42]);
    }
}
