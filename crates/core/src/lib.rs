//! # genesis-core
//!
//! The Genesis framework itself (paper §III): everything that sits between
//! the extended-SQL front end and the simulated FPGA fabric.
//!
//! * [`library`] — the hardware library catalog: which relational operator
//!   maps to which hardware module (paper Figure 6 and §III-D).
//! * [`compile`] — the logical-plan → hardware-pipeline translator. The
//!   paper performs this step manually and "envisions it to be automated";
//!   this module implements the automated translation for the supported
//!   operator idioms.
//! * [`builder`] — the manual pipeline-stitching API (the Chisel-library
//!   analog used to construct the paper's three proof-of-concept
//!   accelerators).
//! * [`device`] — the modeled F1 device: clock, pipeline replication, DMA
//!   link, and job batching across parallel pipelines (paper Figure 8).
//! * [`host`] — the paper's host API (§III-E): `configure_mem`,
//!   non-blocking `run_genesis`, `check_genesis`, `wait_genesis`,
//!   `genesis_flush`; the accelerator simulation runs on a worker thread so
//!   non-blocking semantics are real.
//! * [`accel`] — the three paper accelerators (Mark Duplicates, Metadata
//!   Update, BQSR covariate construction; Figures 10–12) plus the Figure 7
//!   example pipeline, each with host-side orchestration and result merge.
//! * [`fault`] — deterministic, seed-replayable fault injection and the
//!   recovery policy (retry with capped backoff, graceful degradation to
//!   the software oracle, watchdog timeouts).
//! * [`perf`] — wall-clock/breakdown accounting (Figure 13).
//! * [`cost`] — the AWS cost model (Tables II and III).
//! * [`serve`] — the multi-tenant serving front door: compiled-pipeline
//!   LRU cache with reconfiguration-penalty accounting, a fair-queued
//!   device pool (`GENESIS_DEVICES`), and deadline-aware admission.
//! * [`sched`] — the deterministic fair-queuing primitives behind
//!   [`serve`].
//!
//! # Examples
//!
//! ```
//! use genesis_core::device::DeviceConfig;
//! use genesis_core::accel::example::CountMatchingBases;
//! use genesis_datagen::{DatagenConfig, Dataset};
//!
//! let dataset = Dataset::generate(&DatagenConfig::tiny());
//! let accel = CountMatchingBases::new(DeviceConfig::small());
//! let run = accel.run(&dataset.reads, &dataset.genome)?;
//! assert_eq!(run.counts.len(), dataset.reads.len());
//! # Ok::<(), genesis_core::CoreError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod accel;
pub mod builder;
pub mod columns;
pub mod compile;
pub mod cost;
pub mod device;
pub mod env;
pub mod error;
pub mod fault;
pub mod host;
pub mod library;
mod lower;
pub mod perf;
pub mod sched;
pub mod serve;

pub use compile::{Compiler, PipelinePlan};
pub use device::{DeviceConfig, TierConfig};
pub use env::{EnvError, GenesisEnv};
pub use error::CoreError;
pub use fault::{FaultConfig, FaultReport};
pub use host::{GenesisHost, JobHandle, JobSpec, OracleFn, PipelineStatus};
pub use perf::{AccelStats, Breakdown};
pub use sched::{DispatchRecord, FairQueue};
pub use serve::{CacheStats, GenesisServer, Request, ServerConfig, Ticket};
