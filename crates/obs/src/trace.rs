//! Trace configuration and the per-system recording buffer.

use crate::chrome::ChromeTrace;
use crate::span::{Ring, Sample, Span, SpanKind};
use std::path::PathBuf;

/// Default span-ring capacity (per simulated system).
pub const DEFAULT_SPAN_CAPACITY: usize = 1 << 16;
/// Default queue-sample ring capacity (per simulated system).
pub const DEFAULT_SAMPLE_CAPACITY: usize = 1 << 16;
/// Default queue-depth sampling stride in cycles.
pub const DEFAULT_SAMPLE_STRIDE: u64 = 64;

/// Opt-in tracing knobs for a simulated `System` (and, through
/// `DeviceConfig`, for every batch system an accelerator spawns).
///
/// Tracing is off by default and costs nothing when off: the engine's
/// always-on stall attribution is event-based (one bookkeeping update per
/// park/unpark, not per cycle), and span/counter recording only happens
/// when [`TraceConfig::enabled`] is set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceConfig {
    /// Master switch for span + queue-depth recording.
    pub enabled: bool,
    /// Capacity of the per-system span ring (oldest spans are dropped
    /// beyond this).
    pub span_capacity: usize,
    /// Capacity of the per-system queue-sample ring.
    pub sample_capacity: usize,
    /// Queue depths are sampled every this many cycles (only changed depths
    /// are recorded).
    pub sample_stride: u64,
    /// Where the merged Chrome trace is written after a run (a sibling
    /// `<path>.stalls.txt` flame table is written next to it).
    pub path: Option<PathBuf>,
}

impl Default for TraceConfig {
    fn default() -> TraceConfig {
        TraceConfig::off()
    }
}

impl TraceConfig {
    /// Tracing disabled (the default).
    #[must_use]
    pub fn off() -> TraceConfig {
        TraceConfig {
            enabled: false,
            span_capacity: DEFAULT_SPAN_CAPACITY,
            sample_capacity: DEFAULT_SAMPLE_CAPACITY,
            sample_stride: DEFAULT_SAMPLE_STRIDE,
            path: None,
        }
    }

    /// Tracing enabled with default capacities and no export path (read the
    /// buffer programmatically).
    #[must_use]
    pub fn on() -> TraceConfig {
        TraceConfig { enabled: true, ..TraceConfig::off() }
    }

    /// Tracing enabled with a Chrome-trace export path.
    #[must_use]
    pub fn to_path(path: impl Into<PathBuf>) -> TraceConfig {
        TraceConfig { enabled: true, path: Some(path.into()), ..TraceConfig::off() }
    }

    /// Reads `GENESIS_TRACE` from the environment: unset, empty, `0`, or
    /// `off` means disabled; any other value enables tracing and is used as
    /// the Chrome-trace output path.
    #[must_use]
    pub fn from_env() -> TraceConfig {
        match std::env::var("GENESIS_TRACE") {
            Ok(v) => {
                let t = v.trim();
                if t.is_empty() || t == "0" || t.eq_ignore_ascii_case("off") {
                    TraceConfig::off()
                } else {
                    TraceConfig::to_path(t)
                }
            }
            Err(_) => TraceConfig::off(),
        }
    }
}

/// The recording target one simulated system fills during a run: a span
/// ring per the module tracks and a sample ring over the queue counter
/// tracks, plus the track/counter name tables needed for export.
#[derive(Debug, Clone)]
pub struct TraceBuffer {
    cfg: TraceConfig,
    tracks: Vec<String>,
    counters: Vec<String>,
    spans: Ring<Span>,
    samples: Ring<Sample>,
}

impl TraceBuffer {
    /// Creates an empty buffer with the configured ring capacities.
    #[must_use]
    pub fn new(cfg: TraceConfig) -> TraceBuffer {
        let spans = Ring::new(cfg.span_capacity.max(1));
        let samples = Ring::new(cfg.sample_capacity.max(1));
        TraceBuffer { cfg, tracks: Vec::new(), counters: Vec::new(), spans, samples }
    }

    /// The configuration this buffer was created with.
    #[must_use]
    pub fn config(&self) -> &TraceConfig {
        &self.cfg
    }

    /// Installs the module-track name table (module registration order).
    pub fn set_tracks(&mut self, labels: Vec<String>) {
        self.tracks = labels;
    }

    /// Installs the counter-track name table (queue registration order).
    pub fn set_counters(&mut self, names: Vec<String>) {
        self.counters = names;
    }

    /// Module-track names.
    #[must_use]
    pub fn tracks(&self) -> &[String] {
        &self.tracks
    }

    /// Counter-track names.
    #[must_use]
    pub fn counters(&self) -> &[String] {
        &self.counters
    }

    /// Records a completed span; zero-length spans are ignored.
    pub fn record_span(&mut self, track: u32, kind: SpanKind, start: u64, end: u64) {
        if end > start {
            self.spans.push(Span { track, start, end, kind });
        }
    }

    /// Records a queue-depth sample.
    pub fn record_sample(&mut self, counter: u32, cycle: u64, value: u64) {
        self.samples.push(Sample { counter, cycle, value });
    }

    /// Retained spans, oldest first.
    pub fn spans(&self) -> impl Iterator<Item = &Span> {
        self.spans.iter()
    }

    /// Retained samples, oldest first.
    pub fn samples(&self) -> impl Iterator<Item = &Sample> {
        self.samples.iter()
    }

    /// Spans evicted from the ring (they were older than the retained
    /// window).
    #[must_use]
    pub fn dropped_spans(&self) -> u64 {
        self.spans.dropped()
    }

    /// Samples evicted from the ring.
    #[must_use]
    pub fn dropped_samples(&self) -> u64 {
        self.samples.dropped()
    }

    /// Appends this buffer's contents to a Chrome trace under process id
    /// `pid` (one process per batch system, one thread per module track,
    /// one counter track per queue that was ever sampled).
    pub fn append_chrome(&self, out: &mut ChromeTrace, pid: u32, process_name: &str) {
        out.process_name(pid, process_name);
        for (tid, label) in self.tracks.iter().enumerate() {
            out.thread_name(pid, tid as u32, label);
        }
        for s in self.spans.iter() {
            let cat = match s.kind {
                SpanKind::Active => "active",
                SpanKind::Stall(_) => "stall",
            };
            out.complete(pid, s.track, s.kind.name(), cat, s.start, s.end - s.start);
        }
        let unnamed = String::new();
        for s in self.samples.iter() {
            let qname = self.counters.get(s.counter as usize).unwrap_or(&unnamed);
            out.counter(pid, &format!("queue:{qname}"), "depth", s.cycle, s.value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    #[test]
    fn env_parsing() {
        std::env::remove_var("GENESIS_TRACE");
        assert!(!TraceConfig::from_env().enabled);
        std::env::set_var("GENESIS_TRACE", "off");
        assert!(!TraceConfig::from_env().enabled);
        std::env::set_var("GENESIS_TRACE", "/tmp/t.json");
        let cfg = TraceConfig::from_env();
        assert!(cfg.enabled);
        assert_eq!(cfg.path.as_deref(), Some(std::path::Path::new("/tmp/t.json")));
        std::env::remove_var("GENESIS_TRACE");
    }

    #[test]
    fn buffer_to_chrome() {
        let mut buf = TraceBuffer::new(TraceConfig::on());
        buf.set_tracks(vec!["src".into(), "sink".into()]);
        buf.set_counters(vec!["q".into()]);
        buf.record_span(0, SpanKind::Active, 0, 10);
        buf.record_span(1, SpanKind::Stall(crate::StallClass::InputStarved), 0, 4);
        buf.record_span(0, SpanKind::Active, 10, 10); // zero-length: dropped
        buf.record_sample(0, 5, 3);
        let mut ct = ChromeTrace::new();
        buf.append_chrome(&mut ct, 7, "batch 7");
        let parsed = Json::parse(&ct.to_json()).unwrap();
        let events = parsed.get("traceEvents").and_then(Json::as_array).unwrap();
        // 1 process name + 2 thread names + 2 spans + 1 counter.
        assert_eq!(events.len(), 6);
        assert!(events
            .iter()
            .all(|e| e.get("pid").and_then(Json::as_u64) == Some(7)));
    }
}
