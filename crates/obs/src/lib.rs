//! # genesis-obs
//!
//! The observability subsystem of the Genesis reproduction: everything
//! needed to see *where time goes*, both inside the cycle-level hardware
//! simulation and on the host.
//!
//! The paper's evaluation lives on attribution — Figure 13(b) splits every
//! stage into host software / host↔FPGA communication / accelerator
//! execution, and §V diagnoses bottlenecks from module utilization and
//! memory traffic. This crate supplies the shared, dependency-free data
//! model for that attribution:
//!
//! * [`span`] — per-module span events (active vs. a classified stall) and
//!   the preallocated ring buffers they live in.
//! * [`stall`] — stall attribution: per-module cycle counters splitting
//!   time into active / input-starved / output-backpressured / memory-wait,
//!   rolled up into a [`StallReport`] with a top-N "flame table" renderer.
//! * [`trace`] — [`TraceConfig`] (opt-in knobs, `GENESIS_TRACE` env) and
//!   [`TraceBuffer`], the per-`System` recording target: module span tracks
//!   plus queue-depth counter tracks.
//! * [`chrome`] — Chrome trace-event JSON export (`chrome://tracing` /
//!   Perfetto loadable).
//! * [`metrics`] — a host-side metrics registry: atomics-based counters and
//!   log₂-bucketed histograms with a coherent [`MetricsRegistry::snapshot`].
//! * [`json`] — a minimal JSON value parser used to validate exported
//!   traces in tests (the workspace has no serde).
//!
//! The crate deliberately depends on nothing (not even the workspace
//! shims), so both `genesis-hw` (device side) and `genesis-core` (host
//! side) can use it without layering cycles.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod chrome;
pub mod json;
pub mod metrics;
pub mod span;
pub mod stall;
pub mod trace;

pub use chrome::ChromeTrace;
pub use metrics::{Counter, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot};
pub use span::{Ring, Sample, Span, SpanKind};
pub use stall::{ModuleStall, StallClass, StallCounters, StallReport};
pub use trace::{TraceBuffer, TraceConfig};
