//! Host-side metrics registry: counters and histograms.
//!
//! The hot path is lock-free: a [`Counter`] is an `Arc<AtomicU64>` and a
//! [`Histogram`] is a fixed array of atomic log₂ buckets, so recording an
//! observation is a handful of relaxed atomic adds with no allocation. The
//! registry map itself is guarded by an `RwLock`, taken only to *register*
//! (first use of a name) or to snapshot; convenience helpers that look up
//! by name take a read lock, and callers on genuinely hot paths can cache
//! the returned handles instead.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Duration;

/// A monotonically increasing counter handle. Cheap to clone; all clones
/// share the same cell.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of log₂ buckets: observation `v` lands in bucket
/// `min(63, bit_length(v))`, i.e. bucket `i` covers `[2^(i-1), 2^i)`.
const BUCKETS: usize = 64;

/// A lock-free histogram over `u64` observations (nanoseconds, bytes, …)
/// with power-of-two buckets plus exact count / sum / max.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
        let bucket = (64 - value.leading_zeros()).min(BUCKETS as u32 - 1) as usize;
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds.
    pub fn observe_duration(&self, d: Duration) {
        self.observe(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// A point-in-time copy of the histogram state.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
        }
    }
}

/// A frozen copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Largest observation.
    pub max: u64,
    /// Log₂ bucket counts (`buckets[i]` covers `[2^(i-1), 2^i)`; bucket 0
    /// is exactly zero).
    pub buckets: [u64; BUCKETS],
}

impl HistogramSnapshot {
    /// Mean observation (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile: the upper bound of the log₂ bucket containing
    /// the `q`-th observation (`0.0 ..= 1.0`). Accurate to within 2×.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if i == 0 { 0 } else { 1u64 << i };
            }
        }
        self.max
    }
}

/// A registry of named counters and histograms.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<String, Counter>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

/// Recovers a lock from poisoning. The maps guard only registration
/// (values are atomics), so a writer that panicked mid-insert leaves the
/// map in a usable state — at worst a freshly-default entry. Propagating
/// the poison would instead cascade one worker's panic into every later
/// metrics call on unrelated threads.
fn unpoison<G>(r: Result<G, std::sync::PoisonError<G>>) -> G {
    r.unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl MetricsRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Returns (registering on first use) the counter named `name`. Cache
    /// the handle on hot paths: increments on the handle are lock-free.
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        if let Some(c) = unpoison(self.counters.read()).get(name) {
            return c.clone();
        }
        let mut map = unpoison(self.counters.write());
        map.entry(name.to_owned()).or_default().clone()
    }

    /// Returns (registering on first use) the histogram named `name`.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(h) = unpoison(self.histograms.read()).get(name) {
            return Arc::clone(h);
        }
        let mut map = unpoison(self.histograms.write());
        Arc::clone(map.entry(name.to_owned()).or_default())
    }

    /// Convenience: record `d` into histogram `name` (one read-lock lookup;
    /// cache the [`MetricsRegistry::histogram`] handle if called in a loop).
    pub fn observe_duration(&self, name: &str, d: Duration) {
        self.histogram(name).observe_duration(d);
    }

    /// A coherent point-in-time snapshot of every registered metric.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = unpoison(self.counters.read())
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let histograms = unpoison(self.histograms.read())
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        MetricsSnapshot { counters, histograms }
    }
}

/// Frozen registry contents, sorted by name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, v) in &self.counters {
            writeln!(f, "{name:<40} {v}")?;
        }
        for (name, h) in &self.histograms {
            writeln!(
                f,
                "{name:<40} n={} mean={:.0} p50~{} p99~{} max={}",
                h.count,
                h.mean(),
                h.quantile(0.50),
                h.quantile(0.99),
                h.max
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_shares_state_across_clones() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.inc();
        b.add(4);
        assert_eq!(reg.snapshot().counters["x"], 5);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::default();
        h.observe(0);
        h.observe(1);
        h.observe(1000);
        h.observe(1_000_000);
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 1_001_001);
        assert_eq!(s.max, 1_000_000);
        assert_eq!(s.buckets[0], 1); // the zero
        assert_eq!(s.buckets[1], 1); // 1 ∈ [1, 2)
        assert_eq!(s.buckets[10], 1); // 1000 ∈ [512, 1024)
        assert_eq!(s.quantile(0.0), 0);
        assert!(s.quantile(1.0) >= 1_000_000);
        assert!((s.mean() - 250_250.25).abs() < 1.0);
    }

    #[test]
    fn empty_histogram_is_safe() {
        let s = Histogram::default().snapshot();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.quantile(0.5), 0);
    }

    #[test]
    fn concurrent_updates_do_not_lose_counts() {
        let reg = Arc::new(MetricsRegistry::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let reg = Arc::clone(&reg);
            handles.push(std::thread::spawn(move || {
                let c = reg.counter("hits");
                let h = reg.histogram("lat");
                for i in 0..1000u64 {
                    c.inc();
                    h.observe(i);
                }
            }));
        }
        for t in handles {
            t.join().unwrap();
        }
        let s = reg.snapshot();
        assert_eq!(s.counters["hits"], 4000);
        assert_eq!(s.histograms["lat"].count, 4000);
    }

    #[test]
    fn snapshot_display_mentions_names() {
        let reg = MetricsRegistry::new();
        reg.counter("calls").inc();
        reg.observe_duration("wait", Duration::from_micros(5));
        let text = reg.snapshot().to_string();
        assert!(text.contains("calls"));
        assert!(text.contains("wait"));
    }
}
