//! Span events and the preallocated ring buffers that hold them.
//!
//! A [`Span`] is one contiguous stretch of cycles during which a module was
//! in one state: doing observable work ([`SpanKind::Active`]) or parked on
//! a classified stall ([`SpanKind::Stall`]). Spans on one track never
//! overlap and are recorded in increasing start order, which is what makes
//! the Chrome-trace export well-nested by construction.
//!
//! Rings are preallocated at a fixed capacity and overwrite their oldest
//! entries when full (counting what they dropped), so tracing never
//! reallocates on the simulation hot path and a runaway trace degrades to
//! "most recent window" rather than unbounded memory growth.

use crate::stall::StallClass;

/// What a module was doing during a [`Span`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// The module ticked with observable work (or had finished and sat
    /// retired; see [`crate::stall::StallCounters::active`]).
    Active,
    /// The module was parked on the classified stall.
    Stall(StallClass),
}

impl SpanKind {
    /// Short display name used for Chrome-trace slice labels.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Active => "active",
            SpanKind::Stall(c) => c.name(),
        }
    }
}

/// One recorded span on a module track. Cycle interval is half-open:
/// `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Track index (module registration index within its `System`).
    pub track: u32,
    /// First cycle of the span.
    pub start: u64,
    /// One past the last cycle of the span (`end > start` always).
    pub end: u64,
    /// What the module was doing.
    pub kind: SpanKind,
}

/// One queue-depth counter sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sample {
    /// Counter index (queue index within its `System`).
    pub counter: u32,
    /// Cycle at which the depth was observed.
    pub cycle: u64,
    /// Observed value (buffered flits).
    pub value: u64,
}

/// A fixed-capacity overwrite-oldest ring buffer.
///
/// `push` never allocates after construction; once full, each push evicts
/// the oldest element and increments [`Ring::dropped`].
#[derive(Debug, Clone)]
pub struct Ring<T> {
    buf: Vec<T>,
    head: usize,
    dropped: u64,
}

impl<T: Copy> Ring<T> {
    /// Creates a ring holding at most `capacity` elements.
    ///
    /// # Panics
    ///
    /// Panics when `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize) -> Ring<T> {
        assert!(capacity > 0, "ring capacity must be positive");
        Ring { buf: Vec::with_capacity(capacity), head: 0, dropped: 0 }
    }

    /// Appends an element, evicting the oldest when full.
    pub fn push(&mut self, value: T) {
        if self.buf.len() < self.buf.capacity() {
            self.buf.push(value);
        } else {
            self.buf[self.head] = value;
            self.head = (self.head + 1) % self.buf.capacity();
            self.dropped += 1;
        }
    }

    /// Number of retained elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// How many elements were evicted to make room for newer ones.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Iterates the retained elements oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.buf[self.head..].iter().chain(self.buf[..self.head].iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_newest_and_counts_drops() {
        let mut r: Ring<u64> = Ring::new(3);
        for v in 0..5u64 {
            r.push(v);
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let got: Vec<u64> = r.iter().copied().collect();
        assert_eq!(got, vec![2, 3, 4]);
    }

    #[test]
    fn ring_below_capacity_in_order() {
        let mut r: Ring<u64> = Ring::new(8);
        r.push(7);
        r.push(8);
        assert_eq!(r.dropped(), 0);
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![7, 8]);
    }

    #[test]
    fn span_kind_names() {
        assert_eq!(SpanKind::Active.name(), "active");
        assert_eq!(SpanKind::Stall(StallClass::MemoryWait).name(), "stall:memory");
    }
}
