//! A minimal JSON value parser.
//!
//! The workspace is offline and serde-free; this parser exists so tests can
//! load an exported Chrome trace (or a benchmark snapshot) back in and
//! assert structural properties. It accepts standard JSON (objects, arrays,
//! strings with escapes, numbers, booleans, null) and is not
//! performance-tuned — traces under test are a few megabytes at most.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (duplicate keys retained).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first syntax error.
    pub fn parse(src: &str) -> Result<Json, String> {
        let mut p = Parser { src: src.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.src.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup (first match).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array elements, when this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, when this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number, when this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as an unsigned integer (must be whole and non-negative).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }
}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.src.len()
            && matches!(self.src[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> bool {
        if self.src[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') if self.eat_lit("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_lit("false") => Ok(Json::Bool(false)),
            Some(b'n') if self.eat_lit("null") => Ok(Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .src
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape".to_owned())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_owned())?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for our traces;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        c => return Err(format!("bad escape '\\{}'", c as char)),
                    }
                }
                Some(_) => {
                    // Copy a full UTF-8 scalar, not a byte at a time.
                    let rest = &self.src[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid UTF-8".to_owned())?;
                    let c = s.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii number");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"a": [1, 2.5, -3], "b": {"c": "x\ny", "d": true}, "e": null}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_array).unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[0].as_u64(), Some(1));
        assert_eq!(v.get("b").and_then(|b| b.get("c")).and_then(Json::as_str), Some("x\ny"));
        assert_eq!(v.get("b").and_then(|b| b.get("d")), Some(&Json::Bool(true)));
        assert_eq!(v.get("e"), Some(&Json::Null));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn unicode_escapes() {
        let v = Json::parse(r#""café""#).unwrap();
        assert_eq!(v.as_str(), Some("café"));
    }

    #[test]
    fn u64_rejects_fractions() {
        assert_eq!(Json::parse("2.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(Json::parse("-7").unwrap().as_u64(), None);
    }
}
