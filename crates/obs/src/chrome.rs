//! Chrome trace-event JSON export.
//!
//! Produces the JSON-object flavor of the [trace-event format] that both
//! `chrome://tracing` and Perfetto load directly: `"X"` complete events for
//! spans, `"C"` counter events for queue depths, and `"M"` metadata events
//! naming processes and threads. Timestamps are *simulated cycles* reported
//! in the format's microsecond field — one tick of the viewer's clock is
//! one accelerator cycle (document in the UI via `displayTimeUnit`).
//!
//! The builder renders events to strings immediately, so merging traces
//! from many batch systems is cheap and the final write is one
//! concatenation.
//!
//! [trace-event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use std::fmt::Write as _;

/// Escapes a string for inclusion in a JSON string literal.
#[must_use]
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// An in-progress Chrome trace: accumulate events, then serialize once.
#[derive(Debug, Default, Clone)]
pub struct ChromeTrace {
    events: Vec<String>,
}

impl ChromeTrace {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> ChromeTrace {
        ChromeTrace::default()
    }

    /// Number of accumulated events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Names a process (one per batch `System` in merged exports).
    pub fn process_name(&mut self, pid: u32, name: &str) {
        self.events.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":\"{}\"}}}}",
            escape_json(name)
        ));
    }

    /// Names a thread (one per module track).
    pub fn thread_name(&mut self, pid: u32, tid: u32, name: &str) {
        self.events.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
             \"args\":{{\"name\":\"{}\"}}}}",
            escape_json(name)
        ));
    }

    /// Adds a complete (`"X"`) span: `[ts, ts + dur)` on track `(pid, tid)`.
    pub fn complete(&mut self, pid: u32, tid: u32, name: &str, cat: &str, ts: u64, dur: u64) {
        self.events.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{ts},\"dur\":{dur},\
             \"pid\":{pid},\"tid\":{tid}}}",
            escape_json(name),
            escape_json(cat)
        ));
    }

    /// Adds a counter (`"C"`) sample: one series named `series` under the
    /// counter track `name`.
    pub fn counter(&mut self, pid: u32, name: &str, series: &str, ts: u64, value: u64) {
        self.events.push(format!(
            "{{\"name\":\"{}\",\"ph\":\"C\",\"ts\":{ts},\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"{}\":{value}}}}}",
            escape_json(name),
            escape_json(series)
        ));
    }

    /// Serializes to a complete trace-event JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(32 + self.events.iter().map(String::len).sum::<usize>());
        out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n");
        for (i, e) in self.events.iter().enumerate() {
            out.push_str(e);
            out.push_str(if i + 1 < self.events.len() { ",\n" } else { "\n" });
        }
        out.push_str("]}\n");
        out
    }

    /// Writes the serialized trace to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write_to(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }

    #[test]
    fn trace_round_trips_through_parser() {
        let mut t = ChromeTrace::new();
        t.process_name(0, "batch 0");
        t.thread_name(0, 1, "joiner \"left\"");
        t.complete(0, 1, "active", "module", 10, 5);
        t.counter(0, "queue:in", "depth", 12, 3);
        let parsed = Json::parse(&t.to_json()).expect("valid JSON");
        let events = parsed.get("traceEvents").and_then(Json::as_array).unwrap();
        assert_eq!(events.len(), 4);
        let x = &events[2];
        assert_eq!(x.get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(x.get("ts").and_then(Json::as_u64), Some(10));
        assert_eq!(x.get("dur").and_then(Json::as_u64), Some(5));
        let name = events[1].get("args").and_then(|a| a.get("name")).and_then(Json::as_str);
        assert_eq!(name, Some("joiner \"left\""));
    }

    #[test]
    fn empty_trace_is_valid() {
        let parsed = Json::parse(&ChromeTrace::new().to_json()).unwrap();
        assert!(parsed
            .get("traceEvents")
            .and_then(Json::as_array)
            .unwrap()
            .is_empty());
    }
}
