//! Stall attribution: where every simulated cycle of every module went.
//!
//! Each module's timeline is partitioned into five disjoint buckets that
//! always sum to the total simulated cycles (the invariant the hw tests
//! enforce): `active` plus the four parked classes. Classification comes
//! from the park's `Watch`: a module starved on its inputs, backpressured
//! on its outputs, waiting out a device-memory latency window, or waiting
//! for a scratchpad page to be filled from a lower memory tier.

use std::fmt;

/// Why a parked module could not make progress.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StallClass {
    /// Waiting for upstream data (an input queue to become non-empty or
    /// close).
    InputStarved,
    /// Waiting for downstream space (an output queue to drain).
    Backpressured,
    /// Waiting on a device-memory response (timed wake only).
    MemoryWait,
    /// Waiting for a scratchpad page to spill/fill across the memory
    /// tiers (device DRAM or host DRAM over PCIe; timed wake only).
    SpillWait,
}

impl StallClass {
    /// Short display name (also the Chrome-trace slice label).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            StallClass::InputStarved => "stall:input",
            StallClass::Backpressured => "stall:backpressure",
            StallClass::MemoryWait => "stall:memory",
            StallClass::SpillWait => "stall:spill",
        }
    }
}

/// Per-module cycle accounting. All five buckets are disjoint and sum to
/// the cycles the module was simulated for.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StallCounters {
    /// Cycles not attributable to a stall: the module ticked with
    /// observable work, or had already finished and sat retired while the
    /// rest of the pipeline drained.
    pub active: u64,
    /// Cycles parked waiting for input data.
    pub input_starved: u64,
    /// Cycles parked waiting for output space.
    pub backpressured: u64,
    /// Cycles parked inside a memory latency window.
    pub memory_wait: u64,
    /// Cycles parked waiting on a tiered-memory page spill/fill.
    pub spill_wait: u64,
}

impl StallCounters {
    /// Adds `cycles` to the bucket for `class`.
    pub fn add(&mut self, class: StallClass, cycles: u64) {
        match class {
            StallClass::InputStarved => self.input_starved += cycles,
            StallClass::Backpressured => self.backpressured += cycles,
            StallClass::MemoryWait => self.memory_wait += cycles,
            StallClass::SpillWait => self.spill_wait += cycles,
        }
    }

    /// Total parked cycles across the four stall classes.
    #[must_use]
    pub fn parked(&self) -> u64 {
        self.input_starved + self.backpressured + self.memory_wait + self.spill_wait
    }

    /// Total accounted cycles (all five buckets).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.active + self.parked()
    }

    /// Component-wise accumulation (batch roll-ups).
    pub fn absorb(&mut self, other: StallCounters) {
        self.active += other.active;
        self.input_starved += other.input_starved;
        self.backpressured += other.backpressured;
        self.memory_wait += other.memory_wait;
        self.spill_wait += other.spill_wait;
    }
}

/// One module's attribution within a [`StallReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModuleStall {
    /// Module label.
    pub label: String,
    /// Cycle buckets.
    pub counters: StallCounters,
}

/// Roll-up of stall attribution for a whole simulated system (or a merge
/// of several batch systems, keyed by module label).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StallReport {
    /// Total simulated cycles each module was accounted over.
    pub total_cycles: u64,
    /// Per-module buckets, in module registration order.
    pub modules: Vec<ModuleStall>,
}

impl StallReport {
    /// Sums the per-module buckets.
    #[must_use]
    pub fn totals(&self) -> StallCounters {
        let mut t = StallCounters::default();
        for m in &self.modules {
            t.absorb(m.counters);
        }
        t
    }

    /// Merges another report (batch accumulation): modules with the same
    /// label accumulate, new labels append, total cycles add up (batches
    /// run back to back on the modeled device).
    pub fn absorb(&mut self, other: &StallReport) {
        self.total_cycles += other.total_cycles;
        for m in &other.modules {
            if let Some(mine) = self.modules.iter_mut().find(|x| x.label == m.label) {
                mine.counters.absorb(m.counters);
            } else {
                self.modules.push(m.clone());
            }
        }
    }

    /// Renders the top-`n` most-stalled modules as a plain-text "flame
    /// table": one row per module, columns for each bucket's share of the
    /// module's timeline, sorted by parked cycles descending.
    #[must_use]
    pub fn flame_table(&self, n: usize) -> String {
        use std::fmt::Write as _;
        let mut rows: Vec<&ModuleStall> = self.modules.iter().collect();
        rows.sort_by(|a, b| {
            b.counters.parked().cmp(&a.counters.parked()).then(a.label.cmp(&b.label))
        });
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<24} {:>12} {:>8} {:>8} {:>8} {:>8} {:>8}",
            "module", "cycles", "active%", "input%", "backpr%", "mem%", "spill%"
        );
        for m in rows.iter().take(n) {
            let t = m.counters.total().max(1) as f64;
            let _ = writeln!(
                out,
                "{:<24} {:>12} {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}%",
                m.label,
                m.counters.total(),
                100.0 * m.counters.active as f64 / t,
                100.0 * m.counters.input_starved as f64 / t,
                100.0 * m.counters.backpressured as f64 / t,
                100.0 * m.counters.memory_wait as f64 / t,
                100.0 * m.counters.spill_wait as f64 / t,
            );
        }
        if self.modules.len() > n {
            let _ = writeln!(out, "... ({} more modules)", self.modules.len() - n);
        }
        out
    }
}

impl fmt::Display for StallReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.flame_table(usize::MAX))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(label: &str, a: u64, i: u64, b: u64, m: u64) -> ModuleStall {
        ModuleStall {
            label: label.into(),
            counters: StallCounters {
                active: a,
                input_starved: i,
                backpressured: b,
                memory_wait: m,
                spill_wait: 0,
            },
        }
    }

    #[test]
    fn counters_add_and_total() {
        let mut c = StallCounters::default();
        c.add(StallClass::InputStarved, 5);
        c.add(StallClass::MemoryWait, 2);
        c.add(StallClass::SpillWait, 4);
        c.active += 3;
        assert_eq!(c.parked(), 11);
        assert_eq!(c.total(), 14);
    }

    #[test]
    fn report_merges_by_label() {
        let mut a = StallReport {
            total_cycles: 100,
            modules: vec![mk("src", 90, 10, 0, 0)],
        };
        let b = StallReport {
            total_cycles: 50,
            modules: vec![mk("src", 40, 10, 0, 0), mk("sink", 20, 30, 0, 0)],
        };
        a.absorb(&b);
        assert_eq!(a.total_cycles, 150);
        assert_eq!(a.modules.len(), 2);
        assert_eq!(a.modules[0].counters.active, 130);
        assert_eq!(a.modules[0].counters.input_starved, 20);
    }

    #[test]
    fn flame_table_sorts_by_parked() {
        let r = StallReport {
            total_cycles: 100,
            modules: vec![mk("busy", 100, 0, 0, 0), mk("starved", 10, 90, 0, 0)],
        };
        let table = r.flame_table(10);
        let busy_at = table.find("busy").unwrap();
        let starved_at = table.find("starved").unwrap();
        assert!(starved_at < busy_at, "most-stalled module first:\n{table}");
        assert!(table.contains("90.0%"));
    }

    #[test]
    fn flame_table_has_spill_column() {
        let mut m = mk("spiller", 10, 0, 0, 0);
        m.counters.spill_wait = 90;
        let r = StallReport { total_cycles: 100, modules: vec![m] };
        let table = r.flame_table(10);
        assert!(table.contains("spill%"), "header names the spill bucket:\n{table}");
        assert!(table.contains("90.0%"));
        assert_eq!(StallClass::SpillWait.name(), "stall:spill");
    }

    #[test]
    fn flame_table_truncates() {
        let r = StallReport {
            total_cycles: 1,
            modules: (0..5).map(|i| mk(&format!("m{i}"), 1, 0, 0, 0)).collect(),
        };
        assert!(r.flame_table(2).contains("3 more modules"));
    }
}
