//! Logical query plans.
//!
//! "SQL queries can be easily parsed into a tree graph where each node
//! represents a table (leaf node) or a relational/computational operator"
//! (paper §III-D). The Genesis compiler in `genesis-core` maps each node of
//! this tree to a hardware module and each edge to a hardware queue.

use crate::ast::{ColRef, Expr, JoinKind, Query, SelectItem, TableRef};

/// A logical operator tree.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Leaf: a named table (optionally one partition of it).
    Scan {
        /// Table name.
        table: String,
        /// `PARTITION (expr)` selector.
        partition: Option<Expr>,
    },
    /// Column projection / scalar computation.
    Project {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Non-aggregate select items.
        items: Vec<SelectItem>,
    },
    /// Row filtering.
    Filter {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Predicate.
        pred: Expr,
    },
    /// Key join.
    Join {
        /// Join kind.
        kind: JoinKind,
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
        /// Left key.
        left_key: ColRef,
        /// Right key.
        right_key: ColRef,
    },
    /// Aggregation (with optional grouping).
    Aggregate {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Select items (aggregates and, with GROUP BY, group columns).
        items: Vec<SelectItem>,
        /// Group-by columns.
        group_by: Vec<ColRef>,
    },
    /// `ORDER BY` (the host-side coordinate sort of §IV-B; the paper's
    /// hardware never sorts — sorting stays on the host).
    Sort {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Sort keys with per-key descending flags.
        keys: Vec<(ColRef, bool)>,
    },
    /// `LIMIT offset, count`.
    Limit {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Row offset.
        offset: Expr,
        /// Row count.
        count: Expr,
    },
    /// `PosExplode(COL, INITPOS)`.
    PosExplode {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Array column to explode.
        array: ColRef,
        /// Initial position.
        init_pos: Expr,
    },
    /// `ReadExplode(POS, CIGAR, SEQ[, QUAL])`.
    ReadExplode {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Position expression.
        pos: Expr,
        /// CIGAR column.
        cigar: ColRef,
        /// Sequence column.
        seq: ColRef,
        /// Optional quality column.
        qual: Option<ColRef>,
    },
}

impl LogicalPlan {
    /// Number of operator nodes (excluding scans).
    #[must_use]
    pub fn operator_count(&self) -> usize {
        match self {
            LogicalPlan::Scan { .. } => 0,
            LogicalPlan::Project { input, .. }
            | LogicalPlan::Filter { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. }
            | LogicalPlan::PosExplode { input, .. }
            | LogicalPlan::ReadExplode { input, .. } => 1 + input.operator_count(),
            LogicalPlan::Join { left, right, .. } => {
                1 + left.operator_count() + right.operator_count()
            }
        }
    }

    /// All scanned table names, leftmost-first.
    #[must_use]
    pub fn scans(&self) -> Vec<&str> {
        match self {
            LogicalPlan::Scan { table, .. } => vec![table],
            LogicalPlan::Project { input, .. }
            | LogicalPlan::Filter { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. }
            | LogicalPlan::PosExplode { input, .. }
            | LogicalPlan::ReadExplode { input, .. } => input.scans(),
            LogicalPlan::Join { left, right, .. } => {
                let mut s = left.scans();
                s.extend(right.scans());
                s
            }
        }
    }
}

/// Lowers a table reference to a plan leaf (or subquery plan).
fn lower_source(t: &TableRef) -> LogicalPlan {
    match t {
        TableRef::Named { name, partition } => {
            LogicalPlan::Scan { table: name.clone(), partition: partition.clone() }
        }
        TableRef::Subquery(q) => lower_query(q),
    }
}

/// Lowers a parsed query into a logical plan.
#[must_use]
pub fn lower_query(q: &Query) -> LogicalPlan {
    match q {
        Query::Select { items, from, join, filter, group_by, order_by, limit } => {
            let mut plan = lower_source(from);
            if let Some(j) = join {
                plan = LogicalPlan::Join {
                    kind: j.kind,
                    left: Box::new(plan),
                    right: Box::new(lower_source(&j.table)),
                    left_key: j.left_key.clone(),
                    right_key: j.right_key.clone(),
                };
            }
            if let Some(pred) = filter {
                plan = LogicalPlan::Filter { input: Box::new(plan), pred: pred.clone() };
            }
            let has_agg = items.iter().any(|i| matches!(i, SelectItem::Agg { .. }));
            if has_agg || !group_by.is_empty() {
                plan = LogicalPlan::Aggregate {
                    input: Box::new(plan),
                    items: items.clone(),
                    group_by: group_by.clone(),
                };
            } else if !items.iter().all(|i| matches!(i, SelectItem::Star)) {
                plan = LogicalPlan::Project { input: Box::new(plan), items: items.clone() };
            }
            if !order_by.is_empty() {
                plan = LogicalPlan::Sort { input: Box::new(plan), keys: order_by.clone() };
            }
            if let Some((offset, count)) = limit {
                plan = LogicalPlan::Limit {
                    input: Box::new(plan),
                    offset: offset.clone(),
                    count: count.clone(),
                };
            }
            plan
        }
        Query::PosExplode { array, init_pos, from } => LogicalPlan::PosExplode {
            input: Box::new(lower_source(from)),
            array: array.clone(),
            init_pos: init_pos.clone(),
        },
        Query::ReadExplode { pos, cigar, seq, qual, from } => LogicalPlan::ReadExplode {
            input: Box::new(lower_source(from)),
            pos: pos.clone(),
            cigar: cigar.clone(),
            seq: seq.clone(),
            qual: qual.clone(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Statement;
    use crate::parser::parse_script;

    fn plan_of(src: &str) -> LogicalPlan {
        let stmts = parse_script(src).unwrap();
        let Statement::CreateTableAs { query, .. } = &stmts[0] else { panic!() };
        lower_query(query)
    }

    #[test]
    fn select_star_is_bare_scan() {
        let p = plan_of("CREATE TABLE T AS SELECT * FROM U");
        assert_eq!(p, LogicalPlan::Scan { table: "U".into(), partition: None });
        assert_eq!(p.operator_count(), 0);
    }

    #[test]
    fn filter_then_project_order() {
        let p = plan_of("CREATE TABLE T AS SELECT X FROM U WHERE X > 2");
        let LogicalPlan::Project { input, .. } = &p else { panic!("{p:?}") };
        assert!(matches!(**input, LogicalPlan::Filter { .. }));
        assert_eq!(p.operator_count(), 2);
    }

    #[test]
    fn join_collects_scans() {
        let p = plan_of(
            "CREATE TABLE T AS SELECT A.X, B.Y FROM A INNER JOIN B ON A.K = B.K",
        );
        assert_eq!(p.scans(), vec!["A", "B"]);
    }

    #[test]
    fn aggregate_detected() {
        let p = plan_of("CREATE TABLE T AS SELECT SUM(X) FROM U");
        assert!(matches!(p, LogicalPlan::Aggregate { .. }));
    }

    #[test]
    fn limit_wraps_subquery_plan() {
        let p = plan_of("CREATE TABLE T AS SELECT * FROM U LIMIT 5, 10");
        assert!(matches!(p, LogicalPlan::Limit { .. }));
    }
}
