//! # genesis-sql
//!
//! The extended-SQL front end of the Genesis framework (paper §III-B).
//!
//! Genomic data manipulation operations are expressed as SQL-style queries
//! over the `READS`/`REF` tables, extended with:
//!
//! * `PosExplode(COL, INITPOS)` — array-to-rows expansion with a generated
//!   `POS` column (as in Hive QL / Spark SQL);
//! * `ReadExplode(POS, CIGAR, SEQ[, QUAL])` — the genomics-specific
//!   per-base expansion of Figure 3;
//! * `FOR row IN table … END LOOP` iteration (as in Oracle PL/SQL);
//! * `EXEC ModuleName InputStream1 = _ …` custom-module escape hatch
//!   (§III-F);
//! * `PARTITION (expr)` table qualifiers selecting pre-partitioned windows.
//!
//! The pipeline is classic: [`token`] lexes, [`parser`] builds the
//! [`ast`], [`plan`] lowers queries to logical operator trees, and
//! [`exec`] evaluates plans over [`genesis_types::Table`]s — the software
//! reference semantics against which every hardware pipeline is checked.
//!
//! # Examples
//!
//! ```
//! use genesis_sql::{Catalog, Script};
//! use genesis_types::{Column, DataType, Field, Schema, Table};
//!
//! let mut catalog = Catalog::new();
//! let schema = Schema::new(vec![Field::new("X", DataType::U32)]);
//! let table = Table::from_columns(schema, vec![Column::U32(vec![1, 2, 3])])?;
//! catalog.register("T", table);
//! let script = Script::parse("CREATE TABLE S AS SELECT SUM(X) FROM T")?;
//! script.run(&mut catalog)?;
//! assert_eq!(catalog.table("S").unwrap().get(0, "SUM")?.as_u64(), Some(6));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ast;
pub mod catalog;
pub mod error;
pub mod exec;
pub mod parser;
pub mod plan;
pub mod token;

pub use catalog::Catalog;
pub use error::SqlError;
pub use exec::Script;
pub use plan::LogicalPlan;
