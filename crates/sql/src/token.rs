//! Lexer for the extended SQL dialect.

use crate::error::SqlError;
use std::fmt;

/// One lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier (may begin with `#` for temp tables or `@` for
    /// variables); keywords are produced as `Keyword`.
    Ident(String),
    /// Unsigned integer literal.
    Number(u64),
    /// A keyword, upper-cased.
    Keyword(Kw),
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `,`.
    Comma,
    /// `.`.
    Dot,
    /// `;`.
    Semi,
    /// `:`.
    Colon,
    /// `*`.
    Star,
    /// `=`.
    Assign,
    /// `==`.
    EqEq,
    /// `!=` / `<>`.
    Ne,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `+`.
    Plus,
    /// `-`.
    Minus,
    /// `_` placeholder (EXEC argument).
    Underscore,
}

/// Keywords of the dialect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Kw {
    Create,
    Table,
    As,
    Select,
    From,
    Where,
    Inner,
    Left,
    Outer,
    Join,
    On,
    Group,
    By,
    Limit,
    Sum,
    Count,
    Min,
    Max,
    Insert,
    Into,
    Declare,
    Set,
    For,
    In,
    End,
    Loop,
    Partition,
    Order,
    Desc,
    Asc,
    PosExplode,
    ReadExplode,
    Exec,
    And,
    Or,
    Int,
}

impl Kw {
    fn from_upper(s: &str) -> Option<Kw> {
        Some(match s {
            "CREATE" => Kw::Create,
            "TABLE" => Kw::Table,
            "AS" => Kw::As,
            "SELECT" => Kw::Select,
            "FROM" => Kw::From,
            "WHERE" => Kw::Where,
            "INNER" => Kw::Inner,
            "LEFT" => Kw::Left,
            "OUTER" => Kw::Outer,
            "JOIN" => Kw::Join,
            "ON" => Kw::On,
            "GROUP" => Kw::Group,
            "BY" => Kw::By,
            "LIMIT" => Kw::Limit,
            "SUM" => Kw::Sum,
            "COUNT" => Kw::Count,
            "MIN" => Kw::Min,
            "MAX" => Kw::Max,
            "INSERT" => Kw::Insert,
            "INTO" => Kw::Into,
            "DECLARE" => Kw::Declare,
            "SET" => Kw::Set,
            "FOR" => Kw::For,
            "IN" => Kw::In,
            "END" => Kw::End,
            "LOOP" => Kw::Loop,
            "PARTITION" => Kw::Partition,
            "ORDER" => Kw::Order,
            "DESC" => Kw::Desc,
            "ASC" => Kw::Asc,
            "POSEXPLODE" => Kw::PosExplode,
            "READEXPLODE" => Kw::ReadExplode,
            "EXEC" => Kw::Exec,
            "AND" => Kw::And,
            "OR" => Kw::Or,
            "INT" => Kw::Int,
            _ => return None,
        })
    }
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Number(n) => write!(f, "{n}"),
            Tok::Keyword(k) => write!(f, "{k:?}"),
            other => write!(f, "{other:?}"),
        }
    }
}

/// Lexes a source string.
///
/// Comments run from `/*` to `*/` or from `--` to end of line.
///
/// # Errors
///
/// Returns [`SqlError::Lex`] at the first unrecognized character.
pub fn lex(src: &str) -> Result<Vec<Tok>, SqlError> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                i += 2;
                while i + 1 < bytes.len() && !(bytes[i] == b'*' && bytes[i + 1] == b'/') {
                    i += 1;
                }
                i = (i + 2).min(bytes.len());
            }
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                toks.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                toks.push(Tok::RParen);
                i += 1;
            }
            ',' => {
                toks.push(Tok::Comma);
                i += 1;
            }
            '.' => {
                toks.push(Tok::Dot);
                i += 1;
            }
            ';' => {
                toks.push(Tok::Semi);
                i += 1;
            }
            ':' => {
                toks.push(Tok::Colon);
                i += 1;
            }
            '*' => {
                toks.push(Tok::Star);
                i += 1;
            }
            '+' => {
                toks.push(Tok::Plus);
                i += 1;
            }
            '-' => {
                toks.push(Tok::Minus);
                i += 1;
            }
            '=' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push(Tok::EqEq);
                    i += 2;
                } else {
                    toks.push(Tok::Assign);
                    i += 1;
                }
            }
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                toks.push(Tok::Ne);
                i += 2;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push(Tok::Le);
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    toks.push(Tok::Ne);
                    i += 2;
                } else {
                    toks.push(Tok::Lt);
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push(Tok::Ge);
                    i += 2;
                } else {
                    toks.push(Tok::Gt);
                    i += 1;
                }
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let n: u64 = src[start..i]
                    .parse()
                    .map_err(|_| SqlError::Lex { offset: start, found: c })?;
                toks.push(Tok::Number(n));
            }
            '_' if !bytes
                .get(i + 1)
                .is_some_and(|b| b.is_ascii_alphanumeric() || *b == b'_') =>
            {
                toks.push(Tok::Underscore);
                i += 1;
            }
            c if c.is_ascii_alphabetic() || c == '_' || c == '#' || c == '@' => {
                let start = i;
                i += 1;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = &src[start..i];
                match Kw::from_upper(&word.to_ascii_uppercase()) {
                    Some(kw) => toks.push(Tok::Keyword(kw)),
                    None => toks.push(Tok::Ident(word.to_owned())),
                }
            }
            other => return Err(SqlError::Lex { offset: i, found: other }),
        }
    }
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_case_insensitive() {
        let toks = lex("select Select SELECT").unwrap();
        assert_eq!(toks, vec![Tok::Keyword(Kw::Select); 3]);
    }

    #[test]
    fn identifiers_with_prefixes() {
        let toks = lex("#AlignedRead @rlen READS_2").unwrap();
        assert_eq!(
            toks,
            vec![
                Tok::Ident("#AlignedRead".into()),
                Tok::Ident("@rlen".into()),
                Tok::Ident("READS_2".into()),
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        let toks = lex("/* I1: extract */ SELECT -- trailing\n 5").unwrap();
        assert_eq!(toks, vec![Tok::Keyword(Kw::Select), Tok::Number(5)]);
    }

    #[test]
    fn operators() {
        let toks = lex("== = != <> < <= > >= + - * . , ; : ( ) _").unwrap();
        assert_eq!(
            toks,
            vec![
                Tok::EqEq,
                Tok::Assign,
                Tok::Ne,
                Tok::Ne,
                Tok::Lt,
                Tok::Le,
                Tok::Gt,
                Tok::Ge,
                Tok::Plus,
                Tok::Minus,
                Tok::Star,
                Tok::Dot,
                Tok::Comma,
                Tok::Semi,
                Tok::Colon,
                Tok::LParen,
                Tok::RParen,
                Tok::Underscore,
            ]
        );
    }

    #[test]
    fn bad_char_errors() {
        assert!(matches!(lex("SELECT $"), Err(SqlError::Lex { found: '$', .. })));
    }

    #[test]
    fn numbers() {
        assert_eq!(lex("1000000").unwrap(), vec![Tok::Number(1_000_000)]);
    }
}
