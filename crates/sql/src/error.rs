//! SQL front-end errors.

use genesis_types::TypeError;
use std::fmt;

/// Error raised by the SQL lexer, parser, planner, or engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SqlError {
    /// A character the lexer cannot start a token with.
    Lex {
        /// Byte offset in the source.
        offset: usize,
        /// The offending character.
        found: char,
    },
    /// The parser expected something else.
    Parse {
        /// What was expected.
        expected: String,
        /// What was found.
        found: String,
    },
    /// A name (table, column, variable, module) could not be resolved.
    Unknown {
        /// The kind of name ("table", "column", …).
        kind: &'static str,
        /// The name itself.
        name: String,
    },
    /// An ambiguous column reference matched several columns.
    Ambiguous {
        /// The reference.
        name: String,
    },
    /// A runtime type error (bad operand types, sentinel arithmetic, …).
    Eval(String),
    /// An underlying table-layer error.
    Table(TypeError),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Lex { offset, found } => {
                write!(f, "unexpected character {found:?} at byte {offset}")
            }
            SqlError::Parse { expected, found } => {
                write!(f, "expected {expected}, found {found}")
            }
            SqlError::Unknown { kind, name } => write!(f, "unknown {kind} {name:?}"),
            SqlError::Ambiguous { name } => write!(f, "ambiguous column reference {name:?}"),
            SqlError::Eval(msg) => write!(f, "evaluation error: {msg}"),
            SqlError::Table(e) => write!(f, "table error: {e}"),
        }
    }
}

impl std::error::Error for SqlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SqlError::Table(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<TypeError> for SqlError {
    fn from(e: TypeError) -> SqlError {
        SqlError::Table(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = SqlError::Unknown { kind: "table", name: "X".into() };
        assert_eq!(e.to_string(), "unknown table \"X\"");
        let e = SqlError::Parse { expected: "FROM".into(), found: "WHERE".into() };
        assert!(e.to_string().contains("expected FROM"));
    }
}
