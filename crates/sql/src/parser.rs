//! Recursive-descent parser for the extended SQL dialect.

use crate::ast::{
    AggFn, BinOp, ColRef, Expr, JoinClause, JoinKind, Query, SelectItem, Statement, TableRef,
};
use crate::error::SqlError;
use crate::token::{lex, Kw, Tok};

/// Parses a multi-statement script.
///
/// # Errors
///
/// Returns [`SqlError::Lex`] / [`SqlError::Parse`] on malformed input.
pub fn parse_script(src: &str) -> Result<Vec<Statement>, SqlError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let mut stmts = Vec::new();
    while !p.at_end() {
        stmts.push(p.statement()?);
        while p.eat(&Tok::Semi) {}
    }
    Ok(stmts)
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: Kw) -> bool {
        self.eat(&Tok::Keyword(kw))
    }

    fn err<T>(&self, expected: &str) -> Result<T, SqlError> {
        Err(SqlError::Parse {
            expected: expected.to_owned(),
            found: self.peek().map_or("end of input".to_owned(), ToString::to_string),
        })
    }

    fn expect(&mut self, t: &Tok, what: &str) -> Result<(), SqlError> {
        if self.eat(t) {
            Ok(())
        } else {
            self.err(what)
        }
    }

    fn expect_kw(&mut self, kw: Kw) -> Result<(), SqlError> {
        self.expect(&Tok::Keyword(kw), &format!("{kw:?}"))
    }

    fn ident(&mut self, what: &str) -> Result<String, SqlError> {
        match self.peek().cloned() {
            Some(Tok::Ident(s)) => {
                self.pos += 1;
                Ok(s)
            }
            _ => self.err(what),
        }
    }

    fn statement(&mut self) -> Result<Statement, SqlError> {
        match self.peek() {
            Some(Tok::Keyword(Kw::Create)) => {
                self.pos += 1;
                self.expect_kw(Kw::Table)?;
                let name = self.ident("table name")?;
                self.expect_kw(Kw::As)?;
                let query = self.query()?;
                Ok(Statement::CreateTableAs { name, query })
            }
            Some(Tok::Keyword(Kw::Insert)) => {
                self.pos += 1;
                self.expect_kw(Kw::Into)?;
                let name = self.ident("table name")?;
                let query = self.query()?;
                Ok(Statement::Insert { name, query })
            }
            Some(Tok::Keyword(Kw::Declare)) => {
                self.pos += 1;
                let name = self.ident("variable name")?;
                // Optional type annotation (`int`).
                self.eat_kw(Kw::Int);
                Ok(Statement::Declare { name })
            }
            Some(Tok::Keyword(Kw::Set)) => {
                self.pos += 1;
                let name = self.ident("variable name")?;
                self.expect(&Tok::Assign, "=")?;
                let expr = self.expr()?;
                Ok(Statement::Set { name, expr })
            }
            Some(Tok::Keyword(Kw::For)) => {
                self.pos += 1;
                let var = self.ident("loop variable")?;
                self.expect_kw(Kw::In)?;
                let table = self.ident("table name")?;
                self.eat(&Tok::Colon);
                let mut body = Vec::new();
                loop {
                    if self.eat_kw(Kw::End) {
                        self.expect_kw(Kw::Loop)?;
                        self.eat(&Tok::Semi);
                        break;
                    }
                    if self.at_end() {
                        return self.err("END LOOP");
                    }
                    body.push(self.statement()?);
                    while self.eat(&Tok::Semi) {}
                }
                Ok(Statement::ForLoop { var, table, body })
            }
            Some(Tok::Keyword(Kw::Exec)) => {
                self.pos += 1;
                let module = self.ident("module name")?;
                let mut inputs = Vec::new();
                while let Some(Tok::Ident(_)) = self.peek() {
                    let name = self.ident("input stream name")?;
                    self.expect(&Tok::Assign, "=")?;
                    if !self.eat(&Tok::Underscore) {
                        // An explicit table name is also accepted.
                        let _ = self.ident("table name or _")?;
                    }
                    inputs.push(name);
                }
                Ok(Statement::Exec { module, inputs })
            }
            _ => self.err("statement"),
        }
    }

    fn query(&mut self) -> Result<Query, SqlError> {
        match self.peek() {
            Some(Tok::Keyword(Kw::Select)) => self.select_query(),
            Some(Tok::Keyword(Kw::PosExplode)) => {
                self.pos += 1;
                self.expect(&Tok::LParen, "(")?;
                let array = self.colref()?;
                self.expect(&Tok::Comma, ",")?;
                let init_pos = self.expr()?;
                self.expect(&Tok::RParen, ")")?;
                self.expect_kw(Kw::From)?;
                let from = self.table_ref()?;
                Ok(Query::PosExplode { array, init_pos, from })
            }
            Some(Tok::Keyword(Kw::ReadExplode)) => {
                self.pos += 1;
                self.expect(&Tok::LParen, "(")?;
                let pos = self.expr()?;
                self.expect(&Tok::Comma, ",")?;
                let cigar = self.colref()?;
                self.expect(&Tok::Comma, ",")?;
                let seq = self.colref()?;
                let qual = if self.eat(&Tok::Comma) { Some(self.colref()?) } else { None };
                self.expect(&Tok::RParen, ")")?;
                self.expect_kw(Kw::From)?;
                let from = self.table_ref()?;
                Ok(Query::ReadExplode { pos, cigar, seq, qual, from })
            }
            _ => self.err("SELECT, PosExplode or ReadExplode"),
        }
    }

    fn select_query(&mut self) -> Result<Query, SqlError> {
        self.expect_kw(Kw::Select)?;
        let mut items = vec![self.select_item()?];
        while self.eat(&Tok::Comma) {
            items.push(self.select_item()?);
        }
        self.expect_kw(Kw::From)?;
        let from = self.table_ref()?;
        let join = self.join_clause()?;
        let filter = if self.eat_kw(Kw::Where) { Some(self.expr()?) } else { None };
        let mut group_by = Vec::new();
        if self.eat_kw(Kw::Group) {
            self.expect_kw(Kw::By)?;
            group_by.push(self.colref()?);
            while self.eat(&Tok::Comma) {
                group_by.push(self.colref()?);
            }
        }
        let mut order_by = Vec::new();
        if self.eat_kw(Kw::Order) {
            self.expect_kw(Kw::By)?;
            loop {
                let col = self.colref()?;
                let desc = if self.eat_kw(Kw::Desc) {
                    true
                } else {
                    self.eat_kw(Kw::Asc);
                    false
                };
                order_by.push((col, desc));
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_kw(Kw::Limit) {
            let a = self.expr()?;
            if self.eat(&Tok::Comma) {
                let b = self.expr()?;
                Some((a, b))
            } else {
                // `LIMIT n` is `LIMIT 0, n`.
                Some((Expr::Number(0), a))
            }
        } else {
            None
        };
        Ok(Query::Select { items, from, join, filter, group_by, order_by, limit })
    }

    fn join_clause(&mut self) -> Result<Option<JoinClause>, SqlError> {
        let kind = match self.peek() {
            Some(Tok::Keyword(Kw::Inner)) => {
                self.pos += 1;
                JoinKind::Inner
            }
            Some(Tok::Keyword(Kw::Left)) => {
                self.pos += 1;
                JoinKind::Left
            }
            Some(Tok::Keyword(Kw::Outer)) => {
                self.pos += 1;
                JoinKind::Outer
            }
            Some(Tok::Keyword(Kw::Join)) => JoinKind::Inner,
            _ => return Ok(None),
        };
        self.expect_kw(Kw::Join)?;
        let table = self.table_ref()?;
        self.expect_kw(Kw::On)?;
        let left_key = self.colref()?;
        if !(self.eat(&Tok::Assign) || self.eat(&Tok::EqEq)) {
            return self.err("= in ON clause");
        }
        let right_key = self.colref()?;
        Ok(Some(JoinClause { kind, table, left_key, right_key }))
    }

    fn table_ref(&mut self) -> Result<TableRef, SqlError> {
        if self.eat(&Tok::LParen) {
            let q = self.query()?;
            self.expect(&Tok::RParen, ")")?;
            return Ok(TableRef::Subquery(Box::new(q)));
        }
        let name = self.ident("table name")?;
        let partition = if self.eat_kw(Kw::Partition) {
            self.expect(&Tok::LParen, "(")?;
            let e = self.expr()?;
            self.expect(&Tok::RParen, ")")?;
            Some(e)
        } else {
            None
        };
        Ok(TableRef::Named { name, partition })
    }

    fn select_item(&mut self) -> Result<SelectItem, SqlError> {
        if self.eat(&Tok::Star) {
            return Ok(SelectItem::Star);
        }
        let agg = match self.peek() {
            Some(Tok::Keyword(Kw::Sum)) => Some(AggFn::Sum),
            Some(Tok::Keyword(Kw::Count)) => Some(AggFn::Count),
            Some(Tok::Keyword(Kw::Min)) => Some(AggFn::Min),
            Some(Tok::Keyword(Kw::Max)) => Some(AggFn::Max),
            _ => None,
        };
        if let Some(func) = agg {
            self.pos += 1;
            self.expect(&Tok::LParen, "(")?;
            let arg = if self.eat(&Tok::Star) { None } else { Some(self.expr()?) };
            self.expect(&Tok::RParen, ")")?;
            let alias = if self.eat_kw(Kw::As) { Some(self.ident("alias")?) } else { None };
            return Ok(SelectItem::Agg { func, arg, alias });
        }
        let expr = self.expr()?;
        let alias = if self.eat_kw(Kw::As) { Some(self.ident("alias")?) } else { None };
        Ok(SelectItem::Expr { expr, alias })
    }

    /// `name` or `name.name`; loop variables and `@vars` are resolved at
    /// evaluation time.
    fn colref(&mut self) -> Result<ColRef, SqlError> {
        let first = self.ident("column reference")?;
        if self.eat(&Tok::Dot) {
            let col = self.ident("column name")?;
            Ok(ColRef::qualified(&first, &col))
        } else {
            Ok(ColRef::bare(&first))
        }
    }

    // Expression grammar: or <- and <- cmp <- add <- atom.
    fn expr(&mut self) -> Result<Expr, SqlError> {
        let mut lhs = self.and_expr()?;
        while self.eat_kw(Kw::Or) {
            let rhs = self.and_expr()?;
            lhs = Expr::Bin { op: BinOp::Or, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, SqlError> {
        let mut lhs = self.cmp_expr()?;
        while self.eat_kw(Kw::And) {
            let rhs = self.cmp_expr()?;
            lhs = Expr::Bin { op: BinOp::And, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, SqlError> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Some(Tok::EqEq | Tok::Assign) => BinOp::Eq,
            Some(Tok::Ne) => BinOp::Ne,
            Some(Tok::Lt) => BinOp::Lt,
            Some(Tok::Le) => BinOp::Le,
            Some(Tok::Gt) => BinOp::Gt,
            Some(Tok::Ge) => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.pos += 1;
        let rhs = self.add_expr()?;
        Ok(Expr::Bin { op, lhs: Box::new(lhs), rhs: Box::new(rhs) })
    }

    fn add_expr(&mut self) -> Result<Expr, SqlError> {
        let mut lhs = self.atom()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => BinOp::Add,
                Some(Tok::Minus) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.atom()?;
            lhs = Expr::Bin { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn atom(&mut self) -> Result<Expr, SqlError> {
        match self.peek().cloned() {
            Some(Tok::Number(n)) => {
                self.pos += 1;
                Ok(Expr::Number(n))
            }
            Some(Tok::LParen) => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect(&Tok::RParen, ")")?;
                Ok(e)
            }
            Some(Tok::Ident(name)) if name.starts_with('@') => {
                self.pos += 1;
                Ok(Expr::Var(name))
            }
            Some(Tok::Ident(_)) => {
                // Bare or dot-qualified (Table.COL) name.
                let c = self.colref()?;
                Ok(Expr::Col(c))
            }
            _ => self.err("expression"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_select() {
        let s = parse_script("CREATE TABLE T AS SELECT POS, SEQ FROM READS PARTITION (3)")
            .unwrap();
        assert_eq!(s.len(), 1);
        let Statement::CreateTableAs { name, query } = &s[0] else {
            panic!("wrong statement")
        };
        assert_eq!(name, "T");
        let Query::Select { items, from, .. } = query else { panic!("not select") };
        assert_eq!(items.len(), 2);
        let TableRef::Named { name, partition } = from else { panic!() };
        assert_eq!(name, "READS");
        assert_eq!(partition, &Some(Expr::Number(3)));
    }

    #[test]
    fn parse_join_with_subquery_and_limit() {
        let src = "CREATE TABLE #R AS \
            SELECT #A.SEQ, Rel.SEQ FROM #A \
            INNER JOIN (SELECT * FROM Rel LIMIT SingleRead.POS, @rlen) \
            ON #A.POS = Rel.POS";
        let s = parse_script(src).unwrap();
        let Statement::CreateTableAs { query, .. } = &s[0] else { panic!() };
        let Query::Select { join: Some(j), .. } = query else { panic!("no join") };
        assert_eq!(j.kind, JoinKind::Inner);
        assert!(matches!(&j.table, TableRef::Subquery(_)));
        assert_eq!(j.left_key, ColRef::qualified("#A", "POS"));
    }

    #[test]
    fn parse_explodes() {
        let s = parse_script(
            "CREATE TABLE R AS PosExplode(Row.SEQ, Row.POS) FROM Row \
             CREATE TABLE A AS ReadExplode(S.POS, S.CIGAR, S.SEQ) FROM S",
        )
        .unwrap();
        assert!(matches!(
            &s[0],
            Statement::CreateTableAs { query: Query::PosExplode { .. }, .. }
        ));
        assert!(matches!(
            &s[1],
            Statement::CreateTableAs { query: Query::ReadExplode { qual: None, .. }, .. }
        ));
    }

    #[test]
    fn parse_for_loop_with_body() {
        let src = "FOR SingleRead IN ReadPartition: \
            SET @rlen = SingleRead.ENDPOS - SingleRead.POS \
            INSERT INTO Output SELECT SUM(A.SEQ == B.SEQ) FROM #RR \
            END LOOP;";
        let s = parse_script(src).unwrap();
        let Statement::ForLoop { var, table, body } = &s[0] else { panic!() };
        assert_eq!(var, "SingleRead");
        assert_eq!(table, "ReadPartition");
        assert_eq!(body.len(), 2);
        assert!(matches!(&body[1], Statement::Insert { .. }));
    }

    #[test]
    fn parse_aggregates_and_aliases() {
        let s =
            parse_script("CREATE TABLE T AS SELECT COUNT(*), SUM(X) AS total, MIN(Y) FROM U")
                .unwrap();
        let Statement::CreateTableAs { query: Query::Select { items, .. }, .. } = &s[0]
        else {
            panic!()
        };
        assert_eq!(items.len(), 3);
        assert!(matches!(
            &items[0],
            SelectItem::Agg { func: AggFn::Count, arg: None, .. }
        ));
        assert!(matches!(
            &items[1],
            SelectItem::Agg { func: AggFn::Sum, alias: Some(a), .. } if a == "total"
        ));
    }

    #[test]
    fn parse_exec() {
        let s = parse_script("EXEC MDGen InputStream1 = _ InputStream2 = _").unwrap();
        let Statement::Exec { module, inputs } = &s[0] else { panic!() };
        assert_eq!(module, "MDGen");
        assert_eq!(inputs, &vec!["InputStream1".to_owned(), "InputStream2".to_owned()]);
    }

    #[test]
    fn parse_declare_and_where() {
        let s = parse_script(
            "DECLARE @rlen int \
             CREATE TABLE T AS SELECT X FROM U WHERE X > 3 AND X <= 9 GROUP BY X",
        )
        .unwrap();
        assert!(matches!(&s[0], Statement::Declare { name } if name == "@rlen"));
        let Statement::CreateTableAs { query: Query::Select { filter, group_by, .. }, .. } =
            &s[1]
        else {
            panic!()
        };
        assert!(filter.is_some());
        assert_eq!(group_by.len(), 1);
    }

    #[test]
    fn error_on_garbage() {
        assert!(parse_script("CREATE VIEW X").is_err());
        assert!(parse_script("SELECT FROM").is_err());
        assert!(parse_script("FOR x IN t: SET @a = 1").is_err()); // missing END LOOP
    }
}
