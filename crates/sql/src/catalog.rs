//! Named-table registry, including partitioned tables and custom modules.

use crate::error::SqlError;
use genesis_types::Table;
use std::collections::HashMap;
use std::fmt;

/// A user-supplied custom operation (paper §III-F): takes input tables,
/// produces one output table.
///
/// Modules are `Send + Sync` so a catalog can be shared across the
/// serving layer's client and device-worker threads.
pub type CustomModule = Box<dyn Fn(&[&Table]) -> Result<Table, SqlError> + Send + Sync>;

/// The table catalog a script runs against.
///
/// Partitioned tables (paper §III-B) are registered per partition id;
/// `FROM T PARTITION (p)` resolves against them.
#[derive(Default)]
pub struct Catalog {
    tables: HashMap<String, Table>,
    partitions: HashMap<(String, u64), Table>,
    modules: HashMap<String, CustomModule>,
}

impl Catalog {
    /// Creates an empty catalog.
    #[must_use]
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Registers (or replaces) a table.
    pub fn register(&mut self, name: &str, table: Table) {
        self.tables.insert(name.to_owned(), table);
    }

    /// Registers one partition of a partitioned table.
    pub fn register_partition(&mut self, name: &str, pid: u64, table: Table) {
        self.partitions.insert((name.to_owned(), pid), table);
    }

    /// Registers a custom module (paper §III-F).
    pub fn register_module(&mut self, name: &str, module: CustomModule) {
        self.modules.insert(name.to_owned(), module);
    }

    /// Looks up a table.
    #[must_use]
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    /// Looks up a partition.
    #[must_use]
    pub fn partition(&self, name: &str, pid: u64) -> Option<&Table> {
        self.partitions.get(&(name.to_owned(), pid))
    }

    /// Looks up a custom module.
    #[must_use]
    pub fn module(&self, name: &str) -> Option<&CustomModule> {
        self.modules.get(name)
    }

    /// Removes a table (temporary `#tables` are dropped between loop
    /// iterations by the runtime).
    pub fn remove(&mut self, name: &str) -> Option<Table> {
        self.tables.remove(name)
    }

    /// A copy of this catalog's tables and partitions. Custom modules —
    /// opaque closures — are not carried over; differential suites that
    /// re-run a script against fresh state use this to fork the inputs.
    #[must_use]
    pub fn clone_tables(&self) -> Catalog {
        Catalog {
            tables: self.tables.clone(),
            partitions: self.partitions.clone(),
            modules: HashMap::new(),
        }
    }

    /// Names of all registered (non-partitioned) tables, sorted.
    #[must_use]
    pub fn table_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.tables.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }
}

impl fmt::Debug for Catalog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Catalog")
            .field("tables", &self.table_names())
            .field("partitions", &self.partitions.len())
            .field("modules", &self.modules.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genesis_types::{Column, DataType, Field, Schema};

    fn t() -> Table {
        Table::from_columns(
            Schema::new(vec![Field::new("X", DataType::U8)]),
            vec![Column::U8(vec![1])],
        )
        .unwrap()
    }

    #[test]
    fn register_and_lookup() {
        let mut c = Catalog::new();
        c.register("A", t());
        c.register_partition("A", 3, t());
        assert!(c.table("A").is_some());
        assert!(c.partition("A", 3).is_some());
        assert!(c.partition("A", 4).is_none());
        assert_eq!(c.table_names(), vec!["A"]);
        assert!(c.remove("A").is_some());
        assert!(c.table("A").is_none());
    }

    #[test]
    fn modules_callable() {
        let mut c = Catalog::new();
        c.register_module("Id", Box::new(|ins| Ok(ins[0].clone())));
        let input = t();
        let out = c.module("Id").unwrap()(&[&input]).unwrap();
        assert_eq!(out.num_rows(), 1);
    }
}
