//! The software query engine: evaluates logical plans over columnar
//! tables. This is the reference semantics every Genesis hardware pipeline
//! is validated against.

use crate::ast::{AggFn, BinOp, ColRef, Expr, JoinKind, SelectItem, Statement};
use crate::catalog::Catalog;
use crate::error::SqlError;
use crate::parser::parse_script;
use crate::plan::{lower_query, LogicalPlan};
use genesis_types::{CigarElem, CigarOp, DataType, Field, Schema, Table, Value};
#[cfg(test)]
use genesis_types::Column;
use std::collections::HashMap;

/// Execution environment: `@variables` and loop-row bindings.
#[derive(Debug, Default)]
pub struct Env {
    vars: HashMap<String, Value>,
    rows: HashMap<String, RowBinding>,
}

/// One bound row (the loop variable of `FOR row IN table`).
#[derive(Debug, Clone)]
pub struct RowBinding {
    names: Vec<String>,
    values: Vec<Value>,
}

impl Env {
    /// Sets a variable.
    pub fn set_var(&mut self, name: &str, value: Value) {
        self.vars.insert(name.to_owned(), value);
    }

    /// Reads a variable.
    #[must_use]
    pub fn var(&self, name: &str) -> Option<&Value> {
        self.vars.get(name)
    }
}

/// Resolves a column reference against a schema whose field names may be
/// bare (`POS`) or qualified (`#AlignedRead.POS`).
fn resolve_col(schema: &Schema, col: &ColRef) -> Result<usize, SqlError> {
    let want = col.display_name();
    if let Some(i) = schema.index_of(&want) {
        return Ok(i);
    }
    // Qualified reference may match a bare field; bare reference may match
    // a uniquely-qualified field.
    let suffix = format!(".{}", col.column);
    let matches: Vec<usize> = schema
        .fields()
        .iter()
        .enumerate()
        .filter(|(_, f)| f.name == col.column || f.name.ends_with(&suffix))
        .map(|(i, _)| i)
        .collect();
    match matches.as_slice() {
        [i] => Ok(*i),
        [] => Err(SqlError::Unknown { kind: "column", name: want }),
        _ => Err(SqlError::Ambiguous { name: want }),
    }
}

/// A row context for scalar evaluation.
#[derive(Debug, Clone, Copy)]
struct RowCtx<'a> {
    schema: &'a Schema,
    row: &'a [Value],
}

fn eval_expr(expr: &Expr, ctx: Option<RowCtx<'_>>, env: &Env) -> Result<Value, SqlError> {
    match expr {
        Expr::Number(n) => Ok(Value::U64(*n)),
        Expr::Var(name) => env
            .var(name)
            .cloned()
            .ok_or_else(|| SqlError::Unknown { kind: "variable", name: name.clone() }),
        Expr::Col(col) => {
            // Loop-row bindings take precedence for qualified references.
            if let Some(t) = &col.table {
                if let Some(binding) = env.rows.get(t) {
                    let i = binding
                        .names
                        .iter()
                        .position(|n| n == &col.column)
                        .ok_or_else(|| SqlError::Unknown {
                            kind: "column",
                            name: col.display_name(),
                        })?;
                    return Ok(binding.values[i].clone());
                }
            }
            if let Some(ctx) = ctx {
                if let Ok(i) = resolve_col(ctx.schema, col) {
                    return Ok(ctx.row[i].clone());
                }
            }
            // Bare names fall back to `@name` variables (the paper's
            // Figure 4 writes `LIMIT SingleRead.POS, rlen`).
            if col.table.is_none() {
                if let Some(v) = env.var(&format!("@{}", col.column)) {
                    return Ok(v.clone());
                }
            }
            Err(SqlError::Unknown { kind: "column", name: col.display_name() })
        }
        Expr::Bin { op, lhs, rhs } => {
            let l = eval_expr(lhs, ctx, env)?;
            let r = eval_expr(rhs, ctx, env)?;
            eval_binop(*op, &l, &r)
        }
    }
}

/// Scalar operator semantics. The genomics sentinels `Ins`/`Del` (and SQL
/// NULL) compare *unequal* to everything — matching the hardware Filter's
/// sentinel rule — and never satisfy ordered comparisons.
fn eval_binop(op: BinOp, l: &Value, r: &Value) -> Result<Value, SqlError> {
    let comparable = !(l.is_marker() || r.is_marker() || l.is_null() || r.is_null());
    match op {
        BinOp::Eq => Ok(Value::Bool(comparable && l == r)),
        BinOp::Ne => Ok(Value::Bool(!(comparable && l == r))),
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            let (Some(a), Some(b)) = (l.as_u64(), r.as_u64()) else {
                return Ok(Value::Bool(false));
            };
            Ok(Value::Bool(match op {
                BinOp::Lt => a < b,
                BinOp::Le => a <= b,
                BinOp::Gt => a > b,
                BinOp::Ge => a >= b,
                _ => unreachable!(),
            }))
        }
        BinOp::Add | BinOp::Sub => {
            let (Some(a), Some(b)) = (l.as_u64(), r.as_u64()) else {
                return Err(SqlError::Eval(format!("arithmetic on non-numeric {l} / {r}")));
            };
            Ok(Value::U64(match op {
                BinOp::Add => a.wrapping_add(b),
                BinOp::Sub => a.wrapping_sub(b),
                _ => unreachable!(),
            }))
        }
        BinOp::And | BinOp::Or => {
            let (Some(a), Some(b)) = (truthy(l), truthy(r)) else {
                return Ok(Value::Bool(false));
            };
            Ok(Value::Bool(if op == BinOp::And { a && b } else { a || b }))
        }
    }
}

fn truthy(v: &Value) -> Option<bool> {
    match v {
        Value::Bool(b) => Some(*b),
        Value::U64(n) => Some(*n != 0),
        _ => None,
    }
}

/// Executes a logical plan against the catalog.
///
/// # Errors
///
/// Returns [`SqlError`] for unresolved names, type errors, or table-layer
/// failures.
pub fn execute_plan(
    plan: &LogicalPlan,
    catalog: &Catalog,
    env: &Env,
) -> Result<Table, SqlError> {
    match plan {
        LogicalPlan::Scan { table, partition } => {
            // Loop-row bindings act as single-row tables.
            if let Some(binding) = env.rows.get(table) {
                let schema = Schema::new(
                    binding.names.iter().map(|n| Field::new(n, DataType::Cell)).collect(),
                );
                let mut t = Table::new(schema);
                t.push_row(binding.values.clone())?;
                return Ok(t);
            }
            let found = match partition {
                Some(p) => {
                    let pid = eval_expr(p, None, env)?
                        .as_u64()
                        .ok_or_else(|| SqlError::Eval("partition id not numeric".into()))?;
                    catalog.partition(table, pid)
                }
                None => catalog.table(table),
            };
            found
                .cloned()
                .ok_or_else(|| SqlError::Unknown { kind: "table", name: table.clone() })
        }
        LogicalPlan::Filter { input, pred } => {
            let t = execute_plan(input, catalog, env)?;
            let mut out = Table::new(t.schema().clone());
            for r in 0..t.num_rows() {
                let row = t.row(r);
                let keep = eval_expr(pred, Some(RowCtx { schema: t.schema(), row: &row }), env)?;
                if truthy(&keep).unwrap_or(false) {
                    out.push_row(row)?;
                }
            }
            Ok(out)
        }
        LogicalPlan::Project { input, items } => {
            let t = execute_plan(input, catalog, env)?;
            project(&t, items, env)
        }
        LogicalPlan::Aggregate { input, items, group_by } => {
            let t = execute_plan(input, catalog, env)?;
            aggregate(&t, items, group_by, env)
        }
        LogicalPlan::Sort { input, keys } => {
            let t = execute_plan(input, catalog, env)?;
            let key_cols: Vec<(usize, bool)> = keys
                .iter()
                .map(|(c, desc)| resolve_col(t.schema(), c).map(|i| (i, *desc)))
                .collect::<Result<_, _>>()?;
            let mut order: Vec<usize> = (0..t.num_rows()).collect();
            order.sort_by(|&a, &b| {
                for &(col, desc) in &key_cols {
                    let (va, vb) = (t.column_at(col).get(a), t.column_at(col).get(b));
                    let cmp = va.partial_cmp(&vb).unwrap_or(std::cmp::Ordering::Equal);
                    let cmp = if desc { cmp.reverse() } else { cmp };
                    if cmp != std::cmp::Ordering::Equal {
                        return cmp;
                    }
                }
                std::cmp::Ordering::Equal
            });
            let mut out = Table::new(t.schema().clone());
            for r in order {
                out.push_row(t.row(r))?;
            }
            Ok(out)
        }
        LogicalPlan::Limit { input, offset, count } => {
            let t = execute_plan(input, catalog, env)?;
            let off = eval_expr(offset, None, env)?
                .as_u64()
                .ok_or_else(|| SqlError::Eval("LIMIT offset not numeric".into()))?
                as usize;
            let cnt = eval_expr(count, None, env)?
                .as_u64()
                .ok_or_else(|| SqlError::Eval("LIMIT count not numeric".into()))?
                as usize;
            let mut out = Table::new(t.schema().clone());
            let end = off.saturating_add(cnt).min(t.num_rows());
            for r in off.min(t.num_rows())..end {
                out.push_row(t.row(r))?;
            }
            Ok(out)
        }
        LogicalPlan::Join { kind, left, right, left_key, right_key } => {
            let lt = execute_plan(left, catalog, env)?;
            let rt = execute_plan(right, catalog, env)?;
            join(&lt, &rt, *kind, left_key, right_key)
        }
        LogicalPlan::PosExplode { input, array, init_pos } => {
            let t = execute_plan(input, catalog, env)?;
            let col = resolve_col(t.schema(), array)?;
            let name = &t.schema().fields()[col].name;
            let schema = Schema::new(vec![
                Field::new("POS", DataType::Cell),
                Field::new(name, DataType::Cell),
            ]);
            let mut out = Table::new(schema);
            for r in 0..t.num_rows() {
                let row = t.row(r);
                let init = eval_expr(
                    init_pos,
                    Some(RowCtx { schema: t.schema(), row: &row }),
                    env,
                )?
                .as_u64()
                .ok_or_else(|| SqlError::Eval("INITPOS not numeric".into()))?;
                let Value::List(items) = &row[col] else {
                    return Err(SqlError::Eval(format!(
                        "PosExplode source column {name} is not a list"
                    )));
                };
                for (i, item) in items.iter().enumerate() {
                    out.push_row(vec![Value::U64(init + i as u64), item.clone()])?;
                }
            }
            Ok(out)
        }
        LogicalPlan::ReadExplode { input, pos, cigar, seq, qual } => {
            let t = execute_plan(input, catalog, env)?;
            read_explode(&t, pos, cigar, seq, qual.as_ref(), env)
        }
    }
}

/// `ReadExplode` software semantics (paper Figure 3). Output columns are
/// `POS`, `SEQ` and (when a quality column is given) `QUAL`, all dynamic
/// cells so the `Ins`/`Del` sentinels can be carried.
fn read_explode(
    t: &Table,
    pos: &Expr,
    cigar: &ColRef,
    seq: &ColRef,
    qual: Option<&ColRef>,
    env: &Env,
) -> Result<Table, SqlError> {
    let cigar_i = resolve_col(t.schema(), cigar)?;
    let seq_i = resolve_col(t.schema(), seq)?;
    let qual_i = qual.map(|q| resolve_col(t.schema(), q)).transpose()?;
    let mut fields = vec![Field::new("POS", DataType::Cell), Field::new("SEQ", DataType::Cell)];
    if qual_i.is_some() {
        fields.push(Field::new("QUAL", DataType::Cell));
    }
    let mut out = Table::new(Schema::new(fields));
    for r in 0..t.num_rows() {
        let row = t.row(r);
        let mut ref_pos = eval_expr(pos, Some(RowCtx { schema: t.schema(), row: &row }), env)?
            .as_u64()
            .ok_or_else(|| SqlError::Eval("ReadExplode POS not numeric".into()))?;
        let cigar_list = row[cigar_i]
            .as_list()
            .ok_or_else(|| SqlError::Eval("CIGAR column is not a list".into()))?
            .to_vec();
        let seq_list = row[seq_i]
            .as_list()
            .ok_or_else(|| SqlError::Eval("SEQ column is not a list".into()))?
            .to_vec();
        let qual_list = match qual_i {
            Some(qi) => Some(
                row[qi]
                    .as_list()
                    .ok_or_else(|| SqlError::Eval("QUAL column is not a list".into()))?
                    .to_vec(),
            ),
            None => None,
        };
        let mut seq_idx = 0usize;
        for packed in &cigar_list {
            let p = packed
                .as_u64()
                .ok_or_else(|| SqlError::Eval("CIGAR element not numeric".into()))?;
            let elem = CigarElem::unpack(p as u16).map_err(SqlError::Table)?;
            for _ in 0..elem.len {
                match elem.op {
                    CigarOp::Match | CigarOp::SeqMatch | CigarOp::SeqMismatch => {
                        let mut out_row = vec![
                            Value::U64(ref_pos),
                            seq_list.get(seq_idx).cloned().unwrap_or(Value::Null),
                        ];
                        if let Some(q) = &qual_list {
                            out_row.push(q.get(seq_idx).cloned().unwrap_or(Value::Null));
                        }
                        out.push_row(out_row)?;
                        ref_pos += 1;
                        seq_idx += 1;
                    }
                    CigarOp::Ins => {
                        let mut out_row = vec![
                            Value::Ins,
                            seq_list.get(seq_idx).cloned().unwrap_or(Value::Null),
                        ];
                        if let Some(q) = &qual_list {
                            out_row.push(q.get(seq_idx).cloned().unwrap_or(Value::Null));
                        }
                        out.push_row(out_row)?;
                        seq_idx += 1;
                    }
                    CigarOp::Del | CigarOp::RefSkip => {
                        let mut out_row = vec![Value::U64(ref_pos), Value::Del];
                        if qual_list.is_some() {
                            out_row.push(Value::Del);
                        }
                        out.push_row(out_row)?;
                        ref_pos += 1;
                    }
                    CigarOp::SoftClip => {
                        seq_idx += 1;
                    }
                    CigarOp::HardClip => {}
                }
            }
        }
    }
    Ok(out)
}

fn project(t: &Table, items: &[SelectItem], env: &Env) -> Result<Table, SqlError> {
    let mut fields = Vec::new();
    for (i, item) in items.iter().enumerate() {
        match item {
            SelectItem::Star => fields.extend(t.schema().fields().iter().cloned()),
            SelectItem::Expr { expr, alias } => {
                let name = alias.clone().unwrap_or_else(|| match expr {
                    Expr::Col(c) => c.display_name(),
                    _ => format!("EXPR{i}"),
                });
                fields.push(Field::new(&name, DataType::Cell));
            }
            SelectItem::Agg { .. } => {
                return Err(SqlError::Eval("aggregate outside Aggregate node".into()))
            }
        }
    }
    let mut out = Table::new(Schema::new(fields));
    for r in 0..t.num_rows() {
        let row = t.row(r);
        let ctx = RowCtx { schema: t.schema(), row: &row };
        let mut out_row = Vec::new();
        for item in items {
            match item {
                SelectItem::Star => out_row.extend(row.iter().cloned()),
                SelectItem::Expr { expr, .. } => out_row.push(eval_expr(expr, Some(ctx), env)?),
                SelectItem::Agg { .. } => unreachable!("checked above"),
            }
        }
        out.push_row(out_row)?;
    }
    Ok(out)
}

fn agg_name(func: AggFn) -> &'static str {
    match func {
        AggFn::Sum => "SUM",
        AggFn::Count => "COUNT",
        AggFn::Min => "MIN",
        AggFn::Max => "MAX",
    }
}

fn aggregate(
    t: &Table,
    items: &[SelectItem],
    group_by: &[ColRef],
    env: &Env,
) -> Result<Table, SqlError> {
    let key_cols: Vec<usize> =
        group_by.iter().map(|c| resolve_col(t.schema(), c)).collect::<Result<_, _>>()?;
    // Group rows (a single implicit group without GROUP BY).
    let mut groups: Vec<(Vec<Value>, Vec<usize>)> = Vec::new();
    let mut index: HashMap<Vec<String>, usize> = HashMap::new();
    for r in 0..t.num_rows() {
        let row = t.row(r);
        let key: Vec<Value> = key_cols.iter().map(|&i| row[i].clone()).collect();
        let key_str: Vec<String> = key.iter().map(ToString::to_string).collect();
        let slot = *index.entry(key_str).or_insert_with(|| {
            groups.push((key, Vec::new()));
            groups.len() - 1
        });
        groups[slot].1.push(r);
    }
    if group_by.is_empty() && groups.is_empty() {
        groups.push((Vec::new(), Vec::new()));
    }

    let mut fields = Vec::new();
    for (i, item) in items.iter().enumerate() {
        match item {
            SelectItem::Agg { func, alias, .. } => {
                let name = alias.clone().unwrap_or_else(|| agg_name(*func).to_owned());
                fields.push(Field::new(&name, DataType::Cell));
            }
            SelectItem::Expr { expr: Expr::Col(c), alias } => {
                let name = alias.clone().unwrap_or_else(|| c.display_name());
                fields.push(Field::new(&name, DataType::Cell));
            }
            _ => {
                return Err(SqlError::Eval(format!(
                    "select item {i} must be an aggregate or a grouped column"
                )))
            }
        }
    }
    let mut out = Table::new(Schema::new(fields));
    for (key, rows) in &groups {
        let mut out_row = Vec::new();
        for item in items {
            match item {
                SelectItem::Agg { func, arg, .. } => {
                    out_row.push(eval_agg(t, rows, *func, arg.as_ref(), env)?);
                }
                SelectItem::Expr { expr: Expr::Col(c), .. } => {
                    // Grouped column: take from the key.
                    let pos = group_by
                        .iter()
                        .position(|g| g == c)
                        .ok_or_else(|| SqlError::Eval(format!(
                            "column {} not in GROUP BY",
                            c.display_name()
                        )))?;
                    out_row.push(key[pos].clone());
                }
                _ => unreachable!("checked above"),
            }
        }
        out.push_row(out_row)?;
    }
    Ok(out)
}

fn eval_agg(
    t: &Table,
    rows: &[usize],
    func: AggFn,
    arg: Option<&Expr>,
    env: &Env,
) -> Result<Value, SqlError> {
    let mut sum = 0u64;
    let mut count = 0u64;
    let mut min: Option<u64> = None;
    let mut max: Option<u64> = None;
    for &r in rows {
        let row = t.row(r);
        let ctx = RowCtx { schema: t.schema(), row: &row };
        let v = match arg {
            Some(e) => eval_expr(e, Some(ctx), env)?,
            None => Value::U64(1),
        };
        match &v {
            Value::U64(n) => {
                sum += n;
                count += 1;
                min = Some(min.map_or(*n, |m| m.min(*n)));
                max = Some(max.map_or(*n, |m| m.max(*n)));
            }
            Value::Bool(b) => {
                sum += u64::from(*b);
                count += 1;
            }
            // NULL and sentinel cells do not contribute to SUM/MIN/MAX but
            // COUNT(expr) still counts sentinel-valued rows, matching the
            // hardware Reducer (a mismatch at an indel is a mismatch).
            Value::Ins | Value::Del => count += 1,
            _ => {}
        }
    }
    Ok(match func {
        AggFn::Sum => Value::U64(sum),
        AggFn::Count => Value::U64(count),
        AggFn::Min => min.map_or(Value::Null, Value::U64),
        AggFn::Max => max.map_or(Value::Null, Value::U64),
    })
}

fn join(
    lt: &Table,
    rt: &Table,
    kind: JoinKind,
    left_key: &ColRef,
    right_key: &ColRef,
) -> Result<Table, SqlError> {
    let lk = resolve_col(lt.schema(), left_key)?;
    let rk = resolve_col(rt.schema(), right_key)?;
    // Output schema: left fields qualified by the left key's table name
    // when they would collide, then right fields likewise.
    let lprefix = left_key.table.clone();
    let rprefix = right_key.table.clone();
    let mut fields = Vec::new();
    let qualify = |prefix: &Option<String>, name: &str| -> String {
        match prefix {
            Some(p) if !name.contains('.') => format!("{p}.{name}"),
            _ => name.to_owned(),
        }
    };
    for f in lt.schema().fields() {
        fields.push(Field::new(&qualify(&lprefix, &f.name), DataType::Cell));
    }
    for f in rt.schema().fields() {
        fields.push(Field::new(&qualify(&rprefix, &f.name), DataType::Cell));
    }
    let mut out = Table::new(Schema::new(fields));

    // Hash the right side.
    let mut right_index: HashMap<String, Vec<usize>> = HashMap::new();
    for r in 0..rt.num_rows() {
        let key = rt.row(r)[rk].clone();
        if !key.is_marker() && !key.is_null() {
            right_index.entry(key.to_string()).or_default().push(r);
        }
    }
    let mut right_matched = vec![false; rt.num_rows()];
    for l in 0..lt.num_rows() {
        let lrow = lt.row(l);
        let key = &lrow[lk];
        let matches = if key.is_marker() || key.is_null() {
            None
        } else {
            right_index.get(&key.to_string())
        };
        match matches {
            Some(rows) => {
                for &r in rows {
                    right_matched[r] = true;
                    let mut out_row = lrow.clone();
                    out_row.extend(rt.row(r));
                    out.push_row(out_row)?;
                }
            }
            None => {
                if kind != JoinKind::Inner {
                    // Pad the right side with the Del sentinel, matching
                    // the hardware Joiner's padding.
                    let mut out_row = lrow.clone();
                    out_row.extend(std::iter::repeat_n(Value::Del, rt.num_columns()));
                    out.push_row(out_row)?;
                }
            }
        }
    }
    if kind == JoinKind::Outer {
        for (r, matched) in right_matched.iter().enumerate() {
            if !matched {
                let mut out_row: Vec<Value> =
                    std::iter::repeat_n(Value::Del, lt.num_columns()).collect();
                out_row.extend(rt.row(r));
                out.push_row(out_row)?;
            }
        }
    }
    Ok(out)
}

/// A parsed multi-statement script.
#[derive(Debug, Clone)]
pub struct Script {
    stmts: Vec<Statement>,
}

impl Script {
    /// Parses a script.
    ///
    /// # Errors
    ///
    /// Returns [`SqlError`] on lex/parse failure.
    pub fn parse(src: &str) -> Result<Script, SqlError> {
        Ok(Script { stmts: parse_script(src)? })
    }

    /// The parsed statements.
    #[must_use]
    pub fn statements(&self) -> &[Statement] {
        &self.stmts
    }

    /// Runs the script against a catalog with a fresh environment.
    ///
    /// # Errors
    ///
    /// Returns the first evaluation error.
    pub fn run(&self, catalog: &mut Catalog) -> Result<(), SqlError> {
        let mut env = Env::default();
        run_statements(&self.stmts, catalog, &mut env)
    }
}

fn run_statements(
    stmts: &[Statement],
    catalog: &mut Catalog,
    env: &mut Env,
) -> Result<(), SqlError> {
    for stmt in stmts {
        match stmt {
            Statement::CreateTableAs { name, query } => {
                let plan = lower_query(query);
                let table = execute_plan(&plan, catalog, env)?;
                catalog.register(name, table);
            }
            Statement::Insert { name, query } => {
                let plan = lower_query(query);
                let table = execute_plan(&plan, catalog, env)?;
                match catalog.remove(name) {
                    Some(mut existing) => {
                        for r in 0..table.num_rows() {
                            existing.push_row(table.row(r))?;
                        }
                        catalog.register(name, existing);
                    }
                    None => catalog.register(name, table),
                }
            }
            Statement::Declare { name } => {
                env.set_var(name, Value::Null);
            }
            Statement::Set { name, expr } => {
                let v = eval_expr(expr, None, env)?;
                env.set_var(name, v);
            }
            Statement::ForLoop { var, table, body } => {
                let t = catalog
                    .table(table)
                    .ok_or_else(|| SqlError::Unknown { kind: "table", name: table.clone() })?
                    .clone();
                let names: Vec<String> =
                    t.schema().fields().iter().map(|f| f.name.clone()).collect();
                for r in 0..t.num_rows() {
                    env.rows.insert(
                        var.clone(),
                        RowBinding { names: names.clone(), values: t.row(r) },
                    );
                    run_statements(body, catalog, env)?;
                }
                env.rows.remove(var);
            }
            Statement::Exec { module, inputs } => {
                let f = catalog
                    .module(module)
                    .ok_or_else(|| SqlError::Unknown { kind: "module", name: module.clone() })?;
                let tables: Vec<&Table> = inputs
                    .iter()
                    .map(|n| {
                        catalog
                            .table(n)
                            .ok_or_else(|| SqlError::Unknown { kind: "table", name: n.clone() })
                    })
                    .collect::<Result<_, _>>()?;
                let out = f(&tables)?;
                let out_name = format!("{module}_OUT");
                drop(tables);
                catalog.register(&out_name, out);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog_with(name: &str, cols: Vec<(&str, Column)>) -> Catalog {
        let schema = Schema::new(
            cols.iter().map(|(n, c)| Field::new(n, c.dtype())).collect(),
        );
        let table =
            Table::from_columns(schema, cols.into_iter().map(|(_, c)| c).collect()).unwrap();
        let mut cat = Catalog::new();
        cat.register(name, table);
        cat
    }

    #[test]
    fn select_where_project() {
        let mut cat = catalog_with(
            "T",
            vec![("X", Column::U32(vec![1, 5, 9])), ("Y", Column::U32(vec![10, 50, 90]))],
        );
        Script::parse("CREATE TABLE S AS SELECT Y FROM T WHERE X > 1")
            .unwrap()
            .run(&mut cat)
            .unwrap();
        let s = cat.table("S").unwrap();
        assert_eq!(s.num_rows(), 2);
        assert_eq!(s.get(0, "Y").unwrap(), Value::U64(50));
    }

    #[test]
    fn aggregate_whole_table() {
        let mut cat = catalog_with("T", vec![("X", Column::U32(vec![1, 2, 3]))]);
        Script::parse("CREATE TABLE S AS SELECT SUM(X), COUNT(*), MIN(X), MAX(X) FROM T")
            .unwrap()
            .run(&mut cat)
            .unwrap();
        let s = cat.table("S").unwrap();
        assert_eq!(s.row(0), vec![Value::U64(6), Value::U64(3), Value::U64(1), Value::U64(3)]);
    }

    #[test]
    fn group_by() {
        let mut cat = catalog_with(
            "T",
            vec![
                ("G", Column::U8(vec![1, 1, 2])),
                ("X", Column::U32(vec![10, 20, 5])),
            ],
        );
        Script::parse("CREATE TABLE S AS SELECT G, SUM(X) FROM T GROUP BY G")
            .unwrap()
            .run(&mut cat)
            .unwrap();
        let s = cat.table("S").unwrap();
        assert_eq!(s.num_rows(), 2);
        assert_eq!(s.get(0, "SUM").unwrap(), Value::U64(30));
        assert_eq!(s.get(1, "SUM").unwrap(), Value::U64(5));
    }

    #[test]
    fn inner_join_by_key() {
        let mut cat = catalog_with(
            "A",
            vec![("K", Column::U32(vec![1, 2, 3])), ("VA", Column::U32(vec![10, 20, 30]))],
        );
        let b = Table::from_columns(
            Schema::new(vec![Field::new("K", DataType::U32), Field::new("VB", DataType::U32)]),
            vec![Column::U32(vec![2, 3, 4]), Column::U32(vec![200, 300, 400])],
        )
        .unwrap();
        cat.register("B", b);
        Script::parse("CREATE TABLE S AS SELECT A.VA, B.VB FROM A INNER JOIN B ON A.K = B.K")
            .unwrap()
            .run(&mut cat)
            .unwrap();
        let s = cat.table("S").unwrap();
        assert_eq!(s.num_rows(), 2);
        assert_eq!(s.get(0, "A.VA").unwrap(), Value::U64(20));
        assert_eq!(s.get(0, "B.VB").unwrap(), Value::U64(200));
    }

    #[test]
    fn left_join_pads_with_del() {
        let mut cat = catalog_with("A", vec![("K", Column::U32(vec![1, 2]))]);
        let b = Table::from_columns(
            Schema::new(vec![Field::new("K", DataType::U32)]),
            vec![Column::U32(vec![2])],
        )
        .unwrap();
        cat.register("B", b);
        Script::parse("CREATE TABLE S AS SELECT * FROM A LEFT JOIN B ON A.K = B.K")
            .unwrap()
            .run(&mut cat)
            .unwrap();
        let s = cat.table("S").unwrap();
        assert_eq!(s.num_rows(), 2);
        assert_eq!(s.get(0, "B.K").unwrap(), Value::Del);
    }

    #[test]
    fn order_by_sorts_rows() {
        let mut cat = catalog_with(
            "T",
            vec![
                ("CHR", Column::U8(vec![2, 1, 1])),
                ("POS", Column::U32(vec![5, 9, 3])),
            ],
        );
        Script::parse("CREATE TABLE S AS SELECT * FROM T ORDER BY CHR, POS")
            .unwrap()
            .run(&mut cat)
            .unwrap();
        let s = cat.table("S").unwrap();
        assert_eq!(s.get(0, "POS").unwrap(), Value::U64(3));
        assert_eq!(s.get(1, "POS").unwrap(), Value::U64(9));
        assert_eq!(s.get(2, "CHR").unwrap(), Value::U64(2));

        Script::parse("CREATE TABLE D AS SELECT * FROM T ORDER BY POS DESC")
            .unwrap()
            .run(&mut cat)
            .unwrap();
        let d = cat.table("D").unwrap();
        assert_eq!(d.get(0, "POS").unwrap(), Value::U64(9));
        assert_eq!(d.get(2, "POS").unwrap(), Value::U64(3));
    }

    #[test]
    fn order_by_then_limit() {
        let mut cat = catalog_with("T", vec![("X", Column::U32(vec![4, 1, 3, 2]))]);
        Script::parse("CREATE TABLE S AS SELECT * FROM T ORDER BY X LIMIT 2")
            .unwrap()
            .run(&mut cat)
            .unwrap();
        let s = cat.table("S").unwrap();
        assert_eq!(s.num_rows(), 2);
        assert_eq!(s.get(0, "X").unwrap(), Value::U64(1));
        assert_eq!(s.get(1, "X").unwrap(), Value::U64(2));
    }

    #[test]
    fn limit_with_offset() {
        let mut cat = catalog_with("T", vec![("X", Column::U32(vec![0, 1, 2, 3, 4]))]);
        Script::parse("CREATE TABLE S AS SELECT * FROM T LIMIT 1, 2")
            .unwrap()
            .run(&mut cat)
            .unwrap();
        let s = cat.table("S").unwrap();
        assert_eq!(s.num_rows(), 2);
        assert_eq!(s.get(0, "X").unwrap(), Value::U64(1));
    }

    #[test]
    fn pos_explode() {
        let mut cat = catalog_with(
            "R",
            vec![
                ("POS", Column::U32(vec![100])),
                ("SEQ", Column::ListU8(vec![vec![0, 1, 2]])),
            ],
        );
        Script::parse("CREATE TABLE S AS PosExplode(R.SEQ, R.POS) FROM R")
            .unwrap()
            .run(&mut cat)
            .unwrap();
        let s = cat.table("S").unwrap();
        assert_eq!(s.num_rows(), 3);
        assert_eq!(s.get(2, "POS").unwrap(), Value::U64(102));
        assert_eq!(s.get(2, "SEQ").unwrap(), Value::U64(2));
    }

    #[test]
    fn read_explode_matches_figure3() {
        // POS=104, CIGAR=2S3M1I1M1D2M, SEQ=AGGTAAACA with qualities.
        let cigar: genesis_types::Cigar = "2S3M1I1M1D2M".parse().unwrap();
        let packed = cigar.pack().unwrap();
        let seq = genesis_types::Base::seq_from_str("AGGTAAACA").unwrap();
        let mut cat = catalog_with(
            "R",
            vec![
                ("POS", Column::U32(vec![104])),
                ("CIGAR", Column::ListU16(vec![packed])),
                ("SEQ", Column::ListU8(vec![seq.iter().map(|b| b.code()).collect()])),
                ("QUAL", Column::ListU8(vec![vec![2, 2, 24, 29, 29, 32, 32, 33, 30]])),
            ],
        );
        Script::parse("CREATE TABLE S AS ReadExplode(R.POS, R.CIGAR, R.SEQ, R.QUAL) FROM R")
            .unwrap()
            .run(&mut cat)
            .unwrap();
        let s = cat.table("S").unwrap();
        assert_eq!(s.num_rows(), 8);
        // Row 3 is the inserted base; row 5 the deletion.
        assert_eq!(s.get(3, "POS").unwrap(), Value::Ins);
        assert_eq!(s.get(5, "SEQ").unwrap(), Value::Del);
        assert_eq!(s.get(5, "QUAL").unwrap(), Value::Del);
        assert_eq!(s.get(0, "POS").unwrap(), Value::U64(104));
        assert_eq!(s.get(7, "POS").unwrap(), Value::U64(110));
    }

    #[test]
    fn for_loop_with_variables_and_insert() {
        let mut cat = catalog_with("T", vec![("X", Column::U32(vec![2, 7]))]);
        let src = "DECLARE @acc int \
                   FOR Row IN T: \
                     SET @acc = Row.X + 1 \
                     INSERT INTO Out SELECT @acc AS V FROM Row \
                   END LOOP;";
        Script::parse(src).unwrap().run(&mut cat).unwrap();
        let out = cat.table("Out").unwrap();
        assert_eq!(out.num_rows(), 2);
        assert_eq!(out.get(0, "V").unwrap(), Value::U64(3));
        assert_eq!(out.get(1, "V").unwrap(), Value::U64(8));
    }

    #[test]
    fn exec_custom_module() {
        let mut cat = catalog_with("In1", vec![("X", Column::U32(vec![5]))]);
        cat.register_module(
            "Double",
            Box::new(|ins| {
                let t = ins[0];
                let mut out = Table::new(t.schema().clone());
                for r in 0..t.num_rows() {
                    let v = t.row(r)[0].as_u64().unwrap() * 2;
                    out.push_row(vec![Value::U64(v)]).map_err(SqlError::Table)?;
                }
                Ok(out)
            }),
        );
        Script::parse("EXEC Double In1 = _").unwrap().run(&mut cat).unwrap();
        assert_eq!(cat.table("Double_OUT").unwrap().get(0, "X").unwrap(), Value::U64(10));
    }

    #[test]
    fn partition_scan() {
        let mut cat = Catalog::new();
        let t = Table::from_columns(
            Schema::new(vec![Field::new("X", DataType::U32)]),
            vec![Column::U32(vec![42])],
        )
        .unwrap();
        cat.register_partition("READS", 7, t);
        Script::parse("CREATE TABLE S AS SELECT * FROM READS PARTITION (7)")
            .unwrap()
            .run(&mut cat)
            .unwrap();
        assert_eq!(cat.table("S").unwrap().get(0, "X").unwrap(), Value::U64(42));
        assert!(Script::parse("CREATE TABLE S AS SELECT * FROM READS PARTITION (8)")
            .unwrap()
            .run(&mut cat)
            .is_err());
    }

    #[test]
    fn sentinel_comparison_semantics() {
        assert_eq!(
            eval_binop(BinOp::Eq, &Value::Ins, &Value::Ins).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            eval_binop(BinOp::Ne, &Value::Del, &Value::U64(0)).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            eval_binop(BinOp::Lt, &Value::Del, &Value::U64(9)).unwrap(),
            Value::Bool(false)
        );
    }

    #[test]
    fn unknown_column_and_ambiguity() {
        let cat = catalog_with("T", vec![("X", Column::U32(vec![1]))]);
        let env = Env::default();
        let plan = lower_query(&crate::ast::Query::Select {
            items: vec![SelectItem::Expr {
                expr: Expr::Col(ColRef::bare("NOPE")),
                alias: None,
            }],
            from: crate::ast::TableRef::Named { name: "T".into(), partition: None },
            join: None,
            filter: None,
            group_by: vec![],
            order_by: vec![],
            limit: None,
        });
        assert!(matches!(
            execute_plan(&plan, &cat, &env),
            Err(SqlError::Unknown { kind: "column", .. })
        ));
    }
}

#[cfg(test)]
mod error_path_tests {
    use super::*;

    fn one_col_catalog() -> Catalog {
        let schema = Schema::new(vec![Field::new("X", DataType::U32)]);
        let t = Table::from_columns(schema, vec![Column::U32(vec![1, 2])]).unwrap();
        let mut cat = Catalog::new();
        cat.register("T", t);
        cat
    }

    #[test]
    fn unknown_table_reported() {
        let mut cat = one_col_catalog();
        let err = Script::parse("CREATE TABLE S AS SELECT * FROM NOPE")
            .unwrap()
            .run(&mut cat)
            .unwrap_err();
        assert!(matches!(err, SqlError::Unknown { kind: "table", .. }), "{err}");
    }

    #[test]
    fn unknown_variable_reported() {
        let mut cat = one_col_catalog();
        let err = Script::parse("CREATE TABLE S AS SELECT * FROM T LIMIT @nope, 1")
            .unwrap()
            .run(&mut cat)
            .unwrap_err();
        assert!(matches!(err, SqlError::Unknown { kind: "variable", .. }), "{err}");
    }

    #[test]
    fn arithmetic_on_list_reported() {
        let schema = Schema::new(vec![Field::new("L", DataType::ListU8)]);
        let t = Table::from_columns(schema, vec![Column::ListU8(vec![vec![1, 2]])]).unwrap();
        let mut cat = Catalog::new();
        cat.register("T", t);
        let err = Script::parse("CREATE TABLE S AS SELECT L + 1 FROM T")
            .unwrap()
            .run(&mut cat)
            .unwrap_err();
        assert!(matches!(err, SqlError::Eval(_)), "{err}");
    }

    #[test]
    fn for_loop_over_missing_table_reported() {
        let mut cat = one_col_catalog();
        let err = Script::parse("FOR r IN Missing: SET @x = 1 END LOOP;")
            .unwrap()
            .run(&mut cat)
            .unwrap_err();
        assert!(matches!(err, SqlError::Unknown { kind: "table", .. }), "{err}");
    }

    #[test]
    fn exec_unknown_module_reported() {
        let mut cat = one_col_catalog();
        let err = Script::parse("EXEC Nope T = _").unwrap().run(&mut cat).unwrap_err();
        assert!(matches!(err, SqlError::Unknown { kind: "module", .. }), "{err}");
    }

    #[test]
    fn ambiguous_column_after_self_join() {
        let mut cat = one_col_catalog();
        // Join T with itself without qualification: selecting bare X is
        // ambiguous (both sides expose a column ending in X).
        let err = Script::parse(
            "CREATE TABLE S AS SELECT X FROM T INNER JOIN (SELECT * FROM T) ON T.X = T.X",
        )
        .unwrap()
        .run(&mut cat)
        .unwrap_err();
        assert!(
            matches!(err, SqlError::Ambiguous { .. } | SqlError::Unknown { .. }),
            "{err}"
        );
    }
}
