//! Abstract syntax of the extended SQL dialect.

/// A possibly table-qualified column reference (`SEQ`,
/// `#AlignedRead.SEQ`, `SingleRead.POS`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ColRef {
    /// Optional qualifying table name.
    pub table: Option<String>,
    /// Column name.
    pub column: String,
}

impl ColRef {
    /// An unqualified reference.
    #[must_use]
    pub fn bare(column: &str) -> ColRef {
        ColRef { table: None, column: column.to_owned() }
    }

    /// A qualified reference.
    #[must_use]
    pub fn qualified(table: &str, column: &str) -> ColRef {
        ColRef { table: Some(table.to_owned()), column: column.to_owned() }
    }

    /// The display form used in result schemas (`T.C` or `C`).
    #[must_use]
    pub fn display_name(&self) -> String {
        match &self.table {
            Some(t) => format!("{t}.{}", self.column),
            None => self.column.clone(),
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `==` comparison (sentinels compare unequal to everything).
    Eq,
    /// `!=`.
    Ne,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `+`.
    Add,
    /// `-`.
    Sub,
    /// Logical AND.
    And,
    /// Logical OR.
    Or,
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFn {
    /// `SUM(expr)`; booleans sum as 0/1.
    Sum,
    /// `COUNT(*)` / `COUNT(expr)` (non-NULL rows).
    Count,
    /// `MIN(expr)`.
    Min,
    /// `MAX(expr)`.
    Max,
}

/// Scalar expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference.
    Col(ColRef),
    /// `@variable` reference.
    Var(String),
    /// Integer literal.
    Number(u64),
    /// Binary operation.
    Bin {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
}

/// One item of a `SELECT` list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`.
    Star,
    /// A scalar expression, optionally aliased.
    Expr {
        /// The expression.
        expr: Expr,
        /// `AS alias`.
        alias: Option<String>,
    },
    /// An aggregate call, optionally aliased.
    Agg {
        /// Aggregate function.
        func: AggFn,
        /// `None` for `COUNT(*)`.
        arg: Option<Expr>,
        /// `AS alias`.
        alias: Option<String>,
    },
}

/// A table source: a named table with optional `PARTITION (expr)`, or a
/// parenthesized subquery.
#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    /// Named table.
    Named {
        /// Table (or loop-variable) name.
        name: String,
        /// `PARTITION (expr)` selector.
        partition: Option<Expr>,
    },
    /// `( SELECT ... )` subquery.
    Subquery(Box<Query>),
}

impl TableRef {
    /// The binding name used to qualify this source's columns, if any.
    #[must_use]
    pub fn binding_name(&self) -> Option<&str> {
        match self {
            TableRef::Named { name, .. } => Some(name),
            TableRef::Subquery(_) => None,
        }
    }
}

/// Join kinds (paper §III-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// Discard unmatched rows.
    Inner,
    /// Keep unmatched left rows.
    Left,
    /// Keep unmatched rows from both sides.
    Outer,
}

/// A `JOIN … ON a = b` clause.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinClause {
    /// Join kind.
    pub kind: JoinKind,
    /// Right-hand source.
    pub table: TableRef,
    /// Left key column.
    pub left_key: ColRef,
    /// Right key column.
    pub right_key: ColRef,
}

/// A query producing a table.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// `SELECT … FROM … [JOIN …] [WHERE …] [GROUP BY …] [LIMIT o, n]`.
    Select {
        /// Select list.
        items: Vec<SelectItem>,
        /// Primary source.
        from: TableRef,
        /// Optional join.
        join: Option<JoinClause>,
        /// Optional predicate.
        filter: Option<Expr>,
        /// GROUP BY columns.
        group_by: Vec<ColRef>,
        /// `ORDER BY` columns with per-column descending flags.
        order_by: Vec<(ColRef, bool)>,
        /// `LIMIT offset, count`.
        limit: Option<(Expr, Expr)>,
    },
    /// `PosExplode(COL, INITPOS) FROM T`.
    PosExplode {
        /// The array column.
        array: ColRef,
        /// Initial position expression.
        init_pos: Expr,
        /// Source.
        from: TableRef,
    },
    /// `ReadExplode(POS, CIGAR, SEQ[, QUAL]) FROM T`.
    ReadExplode {
        /// Position column/expression.
        pos: Expr,
        /// CIGAR column.
        cigar: ColRef,
        /// Sequence column.
        seq: ColRef,
        /// Optional quality column.
        qual: Option<ColRef>,
        /// Source.
        from: TableRef,
    },
}

/// Top-level statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE TABLE name AS query`.
    CreateTableAs {
        /// Target table name.
        name: String,
        /// Producing query.
        query: Query,
    },
    /// `INSERT INTO name query`.
    Insert {
        /// Target table.
        name: String,
        /// Producing query.
        query: Query,
    },
    /// `DECLARE @name int`.
    Declare {
        /// Variable name (with `@`).
        name: String,
    },
    /// `SET @name = expr`.
    Set {
        /// Variable name (with `@`).
        name: String,
        /// Value expression.
        expr: Expr,
    },
    /// `FOR var IN table: body END LOOP`.
    ForLoop {
        /// Loop variable (bound to one row per iteration).
        var: String,
        /// Table iterated over.
        table: String,
        /// Loop body.
        body: Vec<Statement>,
    },
    /// `EXEC ModuleName Input1 = _ …` (§III-F custom modules).
    Exec {
        /// Module name.
        module: String,
        /// Named input-stream bindings (`_` placeholders become table
        /// names resolved by the runtime).
        inputs: Vec<String>,
    },
}
