//! # genesis-hw
//!
//! The Genesis hardware library and a cycle-level dataflow simulator.
//!
//! The paper (§III-C) composes configurable hardware modules — Joiner,
//! Filter, Reducer, stream ALU, Memory Reader/Writer, Scratchpad (SPM)
//! Reader/Updater, and the genomics modules ReadToBases, MDGen and BinIDGen —
//! into dataflow pipelines connected by hardware queues, clocked at 250 MHz
//! on an AWS F1 FPGA. This crate reproduces that library as a discrete,
//! cycle-stepped simulation:
//!
//! * [`word`] — 64-bit stream words with the paper's `Ins`/`Del` sentinels,
//!   grouped into multi-field flits with explicit end-of-item delimiters.
//! * [`queue`] — bounded hardware queues with backpressure.
//! * [`memory`] — a channelized device-memory model (64 B access
//!   granularity, per-channel service rate, fixed latency) with the local /
//!   global arbiter tree of paper Figure 8.
//! * [`spm`] — on-chip scratchpad memories.
//! * [`tier`] — tiered memory: page-granular SPM ↔ device DRAM ↔ host DRAM
//!   spill/fill over a PCIe link model, so oversized scratchpads become
//!   timed waits instead of capacity errors.
//! * [`modules`] — the module library itself.
//! * [`system`] — pipeline wiring and the per-cycle simulation engine.
//! * [`resource`] — the analytical FPGA resource model behind Table IV.
//!
//! Simulation semantics: each module processes at most one flit per input
//! per cycle (the paper's "fully-pipelined... single base pair per cycle"),
//! queues are bounded so stalls propagate backpressure, and the memory
//! system enforces per-cycle channel-service and arbitration limits. Module
//! ticks within a cycle run in construction order, so a flit can traverse
//! several modules in the cycle it was produced; this keeps throughput
//! modeling exact while slightly under-counting latency, which is noted in
//! DESIGN.md.
//!
//! # Examples
//!
//! A two-module pipeline that sums a stream (the heart of the paper's Mark
//! Duplicates accelerator, Figure 10):
//!
//! ```
//! use genesis_hw::system::System;
//! use genesis_hw::modules::{source::StreamSource, reducer::{Reducer, ReduceOp}, sink::StreamSink};
//! use genesis_hw::word::{Flit, HwWord};
//!
//! let mut sys = System::new();
//! let q_in = sys.add_queue("in");
//! let q_out = sys.add_queue("out");
//! let items = vec![vec![1u64, 2, 3], vec![10, 20]];
//! sys.add_module(Box::new(StreamSource::from_items("src", q_in, &items)));
//! sys.add_module(Box::new(Reducer::new("sum", ReduceOp::Sum, 0, q_in, q_out)));
//! let sink = sys.add_module(Box::new(StreamSink::new("sink", q_out)));
//! let stats = sys.run(10_000).expect("pipeline drains");
//! let sums = sys.sink_values(sink);
//! assert_eq!(sums, vec![HwWord::Val(6), HwWord::Val(30)]);
//! assert!(stats.cycles > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod engine;
pub mod memory;
pub mod modules;
pub mod queue;
pub mod resource;
pub mod spm;
pub mod system;
pub mod tier;
pub mod word;

pub use memory::{LatencyFaults, MemoryConfig, MemorySystem};
pub use queue::{QueueId, QueuePool};
pub use resource::{ResourceReport, ResourceUsage};
pub use spm::{SpmId, SpmPool};
pub use system::{EngineMode, SimError, SimStats, System};
pub use tier::{TierOverflow, TierParams, TierStats};
pub use word::{Flit, HwWord};

// Observability vocabulary used by `System::set_trace` / `stall_report`,
// re-exported so simulator users don't need a direct genesis-obs
// dependency.
pub use genesis_obs::{StallClass, StallCounters, StallReport, TraceBuffer, TraceConfig};
