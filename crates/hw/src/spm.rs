//! On-chip scratchpad memories (SPMs).
//!
//! The paper maps frequently-reused tables — the reference segment, the
//! `IS_SNP` bitmap, and the BQSR count buffers — onto on-chip scratchpads
//! "to facilitate data reuse" (§III-D), in contrast to Q100-style designs
//! that only use scratchpads as stream buffers (§VI).

/// Identifier of a scratchpad within an [`SpmPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpmId(u32);

impl SpmId {
    /// Raw index (stable for the lifetime of the pool).
    pub(crate) fn index(self) -> usize {
        self.0 as usize
    }
}

/// One scratchpad: a word-addressed on-chip buffer.
#[derive(Debug)]
pub struct Spm {
    name: String,
    data: Vec<u64>,
    /// Bits one element occupies in hardware (BRAM accounting; the paper's
    /// pipelines pack reference bases at 2 bits and SNP flags at 1 bit).
    bits_per_elem: usize,
    reads: u64,
    writes: u64,
}

impl Spm {
    /// Scratchpad name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the scratchpad has zero capacity.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Capacity in hardware bytes (packed).
    #[must_use]
    pub fn byte_size(&self) -> usize {
        (self.data.len() * self.bits_per_elem).div_ceil(8)
    }

    /// Reads element `idx` (0 for out-of-range reads, mirroring
    /// uninitialized BRAM tolerance; callers validate ranges upstream).
    pub fn read(&mut self, idx: u64) -> u64 {
        self.reads += 1;
        self.data.get(idx as usize).copied().unwrap_or(0)
    }

    /// Writes element `idx`; out-of-range writes are dropped (and counted).
    pub fn write(&mut self, idx: u64, value: u64) {
        self.writes += 1;
        if let Some(slot) = self.data.get_mut(idx as usize) {
            *slot = value;
        }
    }

    /// Zeroes the scratchpad contents.
    pub fn clear(&mut self) {
        self.data.fill(0);
    }

    /// Bulk host-side initialization (used by tests; pipelines initialize
    /// through the SPM Updater module).
    pub fn fill_from(&mut self, values: &[u64]) {
        for (i, &v) in values.iter().enumerate() {
            if i < self.data.len() {
                self.data[i] = v;
            }
        }
    }

    /// Immutable view of the contents.
    #[must_use]
    pub fn contents(&self) -> &[u64] {
        &self.data
    }

    /// Total read accesses.
    #[must_use]
    pub fn total_reads(&self) -> u64 {
        self.reads
    }

    /// Total write accesses.
    #[must_use]
    pub fn total_writes(&self) -> u64 {
        self.writes
    }

    /// Packed element width in bits (tier page-geometry input).
    pub(crate) fn bits(&self) -> usize {
        self.bits_per_elem
    }
}

/// All scratchpads of a simulated system.
#[derive(Debug, Default)]
pub struct SpmPool {
    spms: Vec<Spm>,
    /// Tiered-memory paging state; `None` (the default) means every
    /// scratchpad is fully resident and accesses are free.
    pub(crate) tiers: Option<Box<crate::tier::TierState>>,
}

impl SpmPool {
    /// Creates an empty pool.
    #[must_use]
    pub fn new() -> SpmPool {
        SpmPool::default()
    }

    /// Adds a scratchpad of `len` elements, each `elem_bytes` wide in
    /// hardware.
    ///
    /// # Panics
    ///
    /// Panics when `elem_bytes` is 0 or greater than 8.
    pub fn add(&mut self, name: &str, len: usize, elem_bytes: usize) -> SpmId {
        assert!((1..=8).contains(&elem_bytes), "element width must be 1..=8 bytes");
        self.add_packed(name, len, elem_bytes * 8)
    }

    /// Adds a scratchpad with sub-byte element packing (e.g. 2-bit bases,
    /// 1-bit SNP flags).
    ///
    /// # Panics
    ///
    /// Panics when `bits_per_elem` is 0 or greater than 64.
    pub fn add_packed(&mut self, name: &str, len: usize, bits_per_elem: usize) -> SpmId {
        assert!((1..=64).contains(&bits_per_elem), "element width must be 1..=64 bits");
        self.spms.push(Spm {
            name: name.to_owned(),
            data: vec![0; len],
            bits_per_elem,
            reads: 0,
            writes: 0,
        });
        SpmId(self.spms.len() as u32 - 1)
    }

    /// Borrows a scratchpad.
    #[must_use]
    pub fn get(&self, id: SpmId) -> &Spm {
        &self.spms[id.0 as usize]
    }

    /// Mutably borrows a scratchpad.
    #[must_use]
    pub fn get_mut(&mut self, id: SpmId) -> &mut Spm {
        &mut self.spms[id.0 as usize]
    }

    /// Total bytes across all scratchpads (BRAM demand).
    #[must_use]
    pub fn total_bytes(&self) -> usize {
        self.spms.iter().map(Spm::byte_size).sum()
    }

    /// Iterates the scratchpads in creation (id) order.
    pub fn iter(&self) -> impl Iterator<Item = &Spm> {
        self.spms.iter()
    }

    /// Number of scratchpads.
    #[must_use]
    pub fn len(&self) -> usize {
        self.spms.len()
    }

    /// True when the pool is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.spms.is_empty()
    }

    /// Splits off the scratchpads marked in `own` into a new pool for a
    /// parallel-engine component, leaving zero-capacity placeholders in
    /// unowned slots so `SpmId` indexing stays valid (see
    /// `QueuePool::split`).
    pub(crate) fn split(&mut self, own: &[bool]) -> SpmPool {
        let placeholder = || Spm {
            name: String::new(),
            data: Vec::new(),
            bits_per_elem: 1,
            reads: 0,
            writes: 0,
        };
        let mut part = SpmPool::new();
        for (i, s) in self.spms.iter_mut().enumerate() {
            let moved = if own[i] { std::mem::replace(s, placeholder()) } else { placeholder() };
            part.spms.push(moved);
        }
        // Tier state travels with the component owning the paged
        // scratchpads (the partitioner keeps them in one component, so the
        // whole state moves wholesale or not at all).
        let tiered = self.tiered_flags();
        if own.iter().zip(&tiered).any(|(&o, &t)| o && t) {
            part.tiers = self.tiers.take();
        }
        part
    }

    /// Moves the owned scratchpads of a split-off component pool back
    /// (inverse of [`SpmPool::split`]).
    pub(crate) fn absorb(&mut self, mut part: SpmPool, own: &[bool]) {
        for (i, s) in part.spms.drain(..).enumerate() {
            if own[i] {
                self.spms[i] = s;
            }
        }
        if part.tiers.is_some() {
            self.tiers = part.tiers;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip() {
        let mut pool = SpmPool::new();
        let id = pool.add("ref", 16, 1);
        pool.get_mut(id).write(3, 42);
        assert_eq!(pool.get_mut(id).read(3), 42);
        assert_eq!(pool.get_mut(id).read(4), 0);
    }

    #[test]
    fn out_of_range_is_tolerated() {
        let mut pool = SpmPool::new();
        let id = pool.add("x", 4, 8);
        pool.get_mut(id).write(100, 1);
        assert_eq!(pool.get_mut(id).read(100), 0);
    }

    #[test]
    fn byte_size_uses_element_width() {
        let mut pool = SpmPool::new();
        pool.add("a", 1000, 1);
        pool.add("b", 100, 8);
        assert_eq!(pool.total_bytes(), 1000 + 800);
    }

    #[test]
    fn access_counters() {
        let mut pool = SpmPool::new();
        let id = pool.add("x", 4, 4);
        pool.get_mut(id).write(0, 1);
        pool.get_mut(id).read(0);
        pool.get_mut(id).read(1);
        assert_eq!(pool.get(id).total_writes(), 1);
        assert_eq!(pool.get(id).total_reads(), 2);
    }

    #[test]
    fn clear_zeroes() {
        let mut pool = SpmPool::new();
        let id = pool.add("x", 4, 4);
        pool.get_mut(id).write(2, 9);
        pool.get_mut(id).clear();
        assert_eq!(pool.get_mut(id).read(2), 0);
    }

    #[test]
    #[should_panic(expected = "element width")]
    fn bad_width_panics() {
        SpmPool::new().add("x", 4, 9);
    }

    #[test]
    fn packed_accounting() {
        let mut pool = SpmPool::new();
        // 1 Mbp of 2-bit bases = 250 kB; 1 Mbp of SNP bits = 125 kB.
        pool.add_packed("ref", 1_000_000, 2);
        pool.add_packed("snp", 1_000_000, 1);
        assert_eq!(pool.total_bytes(), 250_000 + 125_000);
    }
}
