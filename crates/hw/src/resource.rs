//! Analytical FPGA resource model (paper Table IV).
//!
//! The paper reports post-synthesis CLB LUT / CLB register / BRAM usage on
//! the Xilinx Virtex UltraScale+ VU9P of an AWS F1 instance. Without an
//! FPGA toolchain (DESIGN.md §2) we estimate usage from a per-module cost
//! table plus per-queue and per-scratchpad BRAM demand, and a fixed cost
//! for the AWS shell and DMA/command plumbing. The per-module constants
//! were set so the three paper accelerators land near Table IV's totals;
//! the *analysis* the paper draws (under-utilization, BRAM-heaviness of the
//! metadata pipeline) is structural and does not depend on exact constants.

use crate::modules::ModuleKind;
use std::fmt;

/// LUT / register / BRAM usage of one component or design.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ResourceUsage {
    /// CLB lookup tables.
    pub luts: u64,
    /// CLB registers (flip-flops).
    pub registers: u64,
    /// Block RAM bytes.
    pub bram_bytes: u64,
}

impl ResourceUsage {
    /// Component-wise sum.
    #[must_use]
    pub fn plus(self, other: ResourceUsage) -> ResourceUsage {
        ResourceUsage {
            luts: self.luts + other.luts,
            registers: self.registers + other.registers,
            bram_bytes: self.bram_bytes + other.bram_bytes,
        }
    }

    /// Component-wise scaling (pipeline replication).
    #[must_use]
    pub fn times(self, n: u64) -> ResourceUsage {
        ResourceUsage {
            luts: self.luts * n,
            registers: self.registers * n,
            bram_bytes: self.bram_bytes * n,
        }
    }
}

impl std::ops::Add for ResourceUsage {
    type Output = ResourceUsage;

    fn add(self, rhs: ResourceUsage) -> ResourceUsage {
        self.plus(rhs)
    }
}

/// VU9P device capacity as reported in paper Table IV.
pub const VU9P_LUTS: u64 = 895_000;
/// VU9P CLB register capacity.
pub const VU9P_REGISTERS: u64 = 1_790_000;
/// VU9P BRAM capacity in bytes (7.56 MB).
pub const VU9P_BRAM_BYTES: u64 = 7_560_000;

/// Fixed overhead of the AWS F1 shell, DMA engine, command interface and
/// arbiter tree, charged once per design.
#[must_use]
pub fn shell_overhead() -> ResourceUsage {
    ResourceUsage { luts: 95_000, registers: 130_000, bram_bytes: 250_000 }
}

/// Per-pipeline overhead: local arbiter, command decoding, control FSM.
#[must_use]
pub fn pipeline_overhead() -> ResourceUsage {
    ResourceUsage { luts: 1_800, registers: 2_500, bram_bytes: 0 }
}

/// Logic cost of one module instance (queues and scratchpads are charged
/// separately from their actual capacities).
#[must_use]
pub fn module_cost(kind: ModuleKind) -> ResourceUsage {
    let (luts, registers) = match kind {
        ModuleKind::MemoryReader => (1_500, 2_200),
        ModuleKind::MemoryWriter => (1_200, 1_800),
        ModuleKind::Joiner => (900, 700),
        ModuleKind::Filter => (350, 250),
        ModuleKind::Reducer => (800, 900),
        ModuleKind::Alu => (600, 500),
        ModuleKind::SpmReader => (700, 600),
        ModuleKind::SpmUpdater => (1_100, 900),
        ModuleKind::ReadToBases => (2_400, 1_700),
        ModuleKind::MdGen => (1_300, 900),
        ModuleKind::BinIdGen => (1_600, 1_100),
        ModuleKind::Fanout => (150, 200),
        ModuleKind::Zip => (250, 450),
        // Host-side helpers occupy no fabric.
        ModuleKind::Source | ModuleKind::Sink => (0, 0),
    };
    ResourceUsage { luts, registers, bram_bytes: 0 }
}

/// BRAM bytes consumed by one hardware queue of `capacity` flits
/// (each flit buffers up to 8 × 64-bit fields plus control bits, and the
/// prefetch buffering around it is charged here too).
#[must_use]
pub fn queue_bram(capacity: usize) -> u64 {
    (capacity as u64) * 72
}

/// A design-level resource report.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ResourceReport {
    /// Total usage including shell overhead.
    pub total: ResourceUsage,
    /// Backpressure stall events observed so far on this system's queues
    /// (zero for a design that has not been simulated yet).
    pub backpressure_stalls: u64,
    /// Total flits moved through this system's queues so far.
    pub total_flits: u64,
}

impl ResourceReport {
    /// Builds a report from raw fabric usage (shell added here).
    #[must_use]
    pub fn from_fabric(fabric: ResourceUsage) -> ResourceReport {
        ResourceReport { total: fabric + shell_overhead(), ..ResourceReport::default() }
    }

    /// LUT utilization fraction of the VU9P.
    #[must_use]
    pub fn lut_util(&self) -> f64 {
        self.total.luts as f64 / VU9P_LUTS as f64
    }

    /// Register utilization fraction.
    #[must_use]
    pub fn register_util(&self) -> f64 {
        self.total.registers as f64 / VU9P_REGISTERS as f64
    }

    /// BRAM utilization fraction.
    #[must_use]
    pub fn bram_util(&self) -> f64 {
        self.total.bram_bytes as f64 / VU9P_BRAM_BYTES as f64
    }

    /// True when the design fits the VU9P.
    #[must_use]
    pub fn fits(&self) -> bool {
        self.lut_util() <= 1.0 && self.register_util() <= 1.0 && self.bram_util() <= 1.0
    }
}

impl fmt::Display for ResourceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "CLB Lookup Tables  {:>8}  / {:>8}  ({:.1}%)",
            self.total.luts,
            VU9P_LUTS,
            self.lut_util() * 100.0
        )?;
        writeln!(
            f,
            "CLB Registers      {:>8}  / {:>8}  ({:.1}%)",
            self.total.registers,
            VU9P_REGISTERS,
            self.register_util() * 100.0
        )?;
        writeln!(
            f,
            "BRAMs              {:>7.2}MB / {:>5.2}MB  ({:.1}%)",
            self.total.bram_bytes as f64 / 1e6,
            VU9P_BRAM_BYTES as f64 / 1e6,
            self.bram_util() * 100.0
        )?;
        write!(
            f,
            "Activity           {:>8} flits moved, {} backpressure stalls",
            self.total_flits, self.backpressure_stalls
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usage_arithmetic() {
        let a = ResourceUsage { luts: 10, registers: 20, bram_bytes: 30 };
        let b = ResourceUsage { luts: 1, registers: 2, bram_bytes: 3 };
        let s = a + b;
        assert_eq!(s.luts, 11);
        assert_eq!(s.times(2).registers, 44);
    }

    #[test]
    fn all_module_kinds_have_costs() {
        for kind in [
            ModuleKind::MemoryReader,
            ModuleKind::MemoryWriter,
            ModuleKind::Joiner,
            ModuleKind::Filter,
            ModuleKind::Reducer,
            ModuleKind::Alu,
            ModuleKind::SpmReader,
            ModuleKind::SpmUpdater,
            ModuleKind::ReadToBases,
            ModuleKind::MdGen,
            ModuleKind::BinIdGen,
            ModuleKind::Fanout,
            ModuleKind::Zip,
        ] {
            assert!(module_cost(kind).luts > 0, "{kind:?} has no cost");
        }
        assert_eq!(module_cost(ModuleKind::Sink).luts, 0);
    }

    #[test]
    fn report_utilization() {
        let r = ResourceReport::from_fabric(ResourceUsage {
            luts: 100_000,
            registers: 100_000,
            bram_bytes: 1_000_000,
        });
        assert!(r.fits());
        assert!(r.lut_util() > 0.1 && r.lut_util() < 0.3);
        let s = r.to_string();
        assert!(s.contains("CLB Lookup Tables"));
        assert!(s.contains("backpressure stalls"));
    }

    #[test]
    fn oversized_design_does_not_fit() {
        let r = ResourceReport::from_fabric(ResourceUsage {
            luts: VU9P_LUTS,
            registers: 0,
            bram_bytes: 0,
        });
        assert!(!r.fits());
    }
}
