//! The engine core shared by all three simulation engines.
//!
//! [`EngineCore`] owns the simulation state for the duration of one
//! [`crate::System::run`] call and drives it with one loop that all three
//! engines share:
//!
//! - **Reference** (`park_enabled = false`): every unfinished module ticks
//!   every cycle; park results are ignored.
//! - **Event-driven** (`park_enabled = true`, `T = Box<dyn Module>`):
//!   parked modules are skipped until a watched queue changes or a timed
//!   wake arrives, and all-parked stretches advance in closed form.
//! - **Block** (`park_enabled = true`, `T =` [`ModuleSlot`]): the event
//!   engine's skipping plus two throughput optimizations that preserve
//!   bit-identity — enum dispatch instead of vtable calls, and *windows*:
//!   stretches of `k` cycles where every live module is a streaming
//!   module with `k` buffered inputs and `k` free output slots, executed
//!   as one `tick_run` batch per module over contiguous queue storage.
//!   With `GENESIS_SIM_THREADS > 1` the module graph is partitioned at
//!   queue/scratchpad/memory seams and the components run on worker
//!   threads in lockstep 512-cycle segments (see [`run_parallel`]).
//!
//! The window transformation is exact, not approximate: a streaming
//! module pops at most one flit per input and pushes at most one flit per
//! output per tick, and it parks only on an *empty* input. With every
//! input holding at least `k` flits *or fed by an earlier exact-rate
//! window member* (see [`Tickable::exact_rate`]), every output having at
//! least `k` free slots, no other producer/consumer on those queues, and
//! no parked module watching them, the `k` per-cycle interleavings
//! commute into per-module batches: no stall, park, wake, or
//! close-visibility difference is observable, so cycle counts, stall
//! attribution, memory traffic, and outputs stay bit-identical. (Queues
//! deliberately do not track a transient high-water mark: a window batch
//! deposits `k` flits before the consumer's batch drains them, so any
//! such occupancy statistic would be the one window-visible divergence —
//! it was dropped rather than special-cased in window admission.)

/// Total simulated cycles executed through windows (diagnostic: lets
/// tests assert the fast path actually engages, and `--nocapture` runs
/// gauge coverage). Process-wide, monotone, updated relaxed.
pub(crate) static WINDOW_CYCLES: std::sync::atomic::AtomicU64 =
    std::sync::atomic::AtomicU64::new(0);
/// Number of windows executed. Companion to [`WINDOW_CYCLES`].
pub(crate) static WINDOW_COUNT: std::sync::atomic::AtomicU64 =
    std::sync::atomic::AtomicU64::new(0);

use crate::memory::MemorySystem;
use crate::modules::alu::StreamAlu;
use crate::modules::binidgen::BinIdGen;
use crate::modules::fanout::Fanout;
use crate::modules::filter::Filter;
use crate::modules::joiner::Joiner;
use crate::modules::mdgen::MdGen;
use crate::modules::mem_reader::MemReader;
use crate::modules::mem_writer::MemWriter;
use crate::modules::read_to_bases::ReadToBases;
use crate::modules::reducer::Reducer;
use crate::modules::sink::StreamSink;
use crate::modules::source::StreamSource;
use crate::modules::spm_reader::{SpmAddrReader, SpmReader};
use crate::modules::spm_updater::SpmUpdater;
use crate::modules::zip::Zip;
use crate::modules::{Ctx, Module, Tick, Watch};
use crate::queue::{QueueId, QueuePool};
use crate::spm::SpmPool;
use crate::system::{SimError, TraceState};
use crate::word::{Flit, MAX_FIELDS};
use genesis_obs::{SpanKind, StallClass, StallCounters};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};

/// Watcher-role bits: how a module relates to a watched queue.
const ROLE_INPUT: u8 = 1;
const ROLE_OUTPUT: u8 = 2;

/// Smallest window worth the setup cost of the feasibility scan.
const MIN_WINDOW: usize = 4;

/// What a module must expose to be driven by [`EngineCore`]. Implemented
/// by `Box<dyn Module>` (vtable dispatch, for the reference and event
/// engines) and by [`ModuleSlot`] (enum dispatch, for the block engine).
pub(crate) trait Tickable: Send {
    fn label(&self) -> &str;
    fn tick(&mut self, ctx: &mut Ctx<'_>) -> Tick;
    fn is_done(&self) -> bool;
    fn input_queues(&self) -> Vec<QueueId>;
    fn output_queues(&self) -> Vec<QueueId>;
    /// True when `tick_run` may replace per-cycle ticks inside a window
    /// (the module pops/pushes at most one flit per queue per tick and
    /// parks only on an empty input).
    fn streamable(&self) -> bool {
        false
    }
    /// True when every tick pops exactly one flit from each input and
    /// pushes exactly one flit to each output, independent of flit
    /// *contents*, whenever inputs are nonempty and outputs have space.
    /// The window planner uses this to project queue depths: a window of
    /// `k` cycles needs no buffered backlog on a queue whose exact-rate
    /// producer runs earlier in the same window — the producer deposits
    /// its `j`-th flit in cycle `j`, before the consumer's same-cycle
    /// tick. Modules that drop, resynchronize, or emit at data-dependent
    /// rates (filters, reducers, joiners, zips) must stay `false`.
    fn exact_rate(&self) -> bool {
        false
    }
    /// Remaining self-generated flits for supply-limited producers
    /// (sources). Caps the window length so an exact-rate producer cannot
    /// run dry mid-window.
    fn supply(&self) -> Option<usize> {
        None
    }
    /// Executes `k` consecutive ticks. The default replays `tick`
    /// per-cycle; streaming slots override it with a batch
    /// implementation over contiguous queue runs.
    fn tick_run(&mut self, ctx: &mut Ctx<'_>, k: usize, scratch: &mut Vec<Flit>) {
        let _ = scratch;
        loop_ticks(self, ctx, k);
    }
}

/// Replays `k` per-cycle ticks (the window fallback for non-streaming
/// modules: correct for any module, just not batched).
fn loop_ticks<T: Tickable + ?Sized>(t: &mut T, ctx: &mut Ctx<'_>, k: usize) {
    let base = ctx.cycle;
    for j in 0..k as u64 {
        if t.is_done() {
            break;
        }
        ctx.cycle = base + j;
        let tick = t.tick(ctx);
        debug_assert!(
            !matches!(tick, Tick::Park { .. }),
            "window contract violation: {} parked mid-window",
            t.label()
        );
        let _ = tick;
    }
    ctx.cycle = base;
}

impl Tickable for Box<dyn Module> {
    fn label(&self) -> &str {
        (**self).label()
    }
    fn tick(&mut self, ctx: &mut Ctx<'_>) -> Tick {
        (**self).tick(ctx)
    }
    fn is_done(&self) -> bool {
        (**self).is_done()
    }
    fn input_queues(&self) -> Vec<QueueId> {
        (**self).input_queues()
    }
    fn output_queues(&self) -> Vec<QueueId> {
        (**self).output_queues()
    }
}

/// A module devirtualized into an enum variant so the block engine's hot
/// loop dispatches with a jump table instead of a vtable call, and so
/// `tick_run` can reach each concrete type's batch implementation.
/// Unknown (out-of-tree) module types ride along boxed in `Other`.
#[derive(Debug)]
#[allow(clippy::large_enum_variant)]
pub(crate) enum ModuleSlot {
    MemReader(MemReader),
    MemWriter(MemWriter),
    Joiner(Joiner),
    Filter(Filter),
    Reducer(Reducer),
    Alu(StreamAlu),
    SpmReader(SpmReader),
    SpmAddrReader(SpmAddrReader),
    SpmUpdater(SpmUpdater),
    ReadToBases(ReadToBases),
    MdGen(MdGen),
    BinIdGen(BinIdGen),
    Fanout(Fanout),
    Zip(Zip),
    Source(StreamSource),
    Sink(StreamSink),
    Other(Box<dyn Module>),
}

/// Expands `$body` once per variant with `$m` bound to the payload. The
/// `Other` arm works because `Box<dyn Module>` auto-derefs.
macro_rules! for_each_slot {
    ($slot:expr, $m:ident => $body:expr) => {
        match $slot {
            ModuleSlot::MemReader($m) => $body,
            ModuleSlot::MemWriter($m) => $body,
            ModuleSlot::Joiner($m) => $body,
            ModuleSlot::Filter($m) => $body,
            ModuleSlot::Reducer($m) => $body,
            ModuleSlot::Alu($m) => $body,
            ModuleSlot::SpmReader($m) => $body,
            ModuleSlot::SpmAddrReader($m) => $body,
            ModuleSlot::SpmUpdater($m) => $body,
            ModuleSlot::ReadToBases($m) => $body,
            ModuleSlot::MdGen($m) => $body,
            ModuleSlot::BinIdGen($m) => $body,
            ModuleSlot::Fanout($m) => $body,
            ModuleSlot::Zip($m) => $body,
            ModuleSlot::Source($m) => $body,
            ModuleSlot::Sink($m) => $body,
            ModuleSlot::Other($m) => $body,
        }
    };
}

impl ModuleSlot {
    /// Devirtualizes a boxed module (falling back to `Other` for types
    /// this enum does not know).
    pub(crate) fn from_module(m: Box<dyn Module>) -> ModuleSlot {
        macro_rules! try_downcast {
            ($($variant:ident => $ty:ty),* $(,)?) => {
                $(
                    if m.as_any().is::<$ty>() {
                        return ModuleSlot::$variant(
                            *m.into_any().downcast::<$ty>().expect("checked with is"),
                        );
                    }
                )*
            };
        }
        try_downcast! {
            MemReader => MemReader,
            MemWriter => MemWriter,
            Joiner => Joiner,
            Filter => Filter,
            Reducer => Reducer,
            Alu => StreamAlu,
            SpmReader => SpmReader,
            SpmAddrReader => SpmAddrReader,
            SpmUpdater => SpmUpdater,
            ReadToBases => ReadToBases,
            MdGen => MdGen,
            BinIdGen => BinIdGen,
            Fanout => Fanout,
            Zip => Zip,
            Source => StreamSource,
            Sink => StreamSink,
        }
        ModuleSlot::Other(m)
    }

    /// Re-boxes the module (restores the `System`'s `Box<dyn Module>`
    /// registry after a block run, so downcasts and labels keep working).
    pub(crate) fn into_module(self) -> Box<dyn Module> {
        match self {
            ModuleSlot::MemReader(m) => Box::new(m),
            ModuleSlot::MemWriter(m) => Box::new(m),
            ModuleSlot::Joiner(m) => Box::new(m),
            ModuleSlot::Filter(m) => Box::new(m),
            ModuleSlot::Reducer(m) => Box::new(m),
            ModuleSlot::Alu(m) => Box::new(m),
            ModuleSlot::SpmReader(m) => Box::new(m),
            ModuleSlot::SpmAddrReader(m) => Box::new(m),
            ModuleSlot::SpmUpdater(m) => Box::new(m),
            ModuleSlot::ReadToBases(m) => Box::new(m),
            ModuleSlot::MdGen(m) => Box::new(m),
            ModuleSlot::BinIdGen(m) => Box::new(m),
            ModuleSlot::Fanout(m) => Box::new(m),
            ModuleSlot::Zip(m) => Box::new(m),
            ModuleSlot::Source(m) => Box::new(m),
            ModuleSlot::Sink(m) => Box::new(m),
            ModuleSlot::Other(m) => m,
        }
    }
}

/// True when the partitioner can account for every resource the module
/// touches (it is one of the known concrete types).
fn slot_known(m: &dyn Module) -> bool {
    let a = m.as_any();
    a.is::<MemReader>()
        || a.is::<MemWriter>()
        || a.is::<Joiner>()
        || a.is::<Filter>()
        || a.is::<Reducer>()
        || a.is::<StreamAlu>()
        || a.is::<SpmReader>()
        || a.is::<SpmAddrReader>()
        || a.is::<SpmUpdater>()
        || a.is::<ReadToBases>()
        || a.is::<MdGen>()
        || a.is::<BinIdGen>()
        || a.is::<Fanout>()
        || a.is::<Zip>()
        || a.is::<StreamSource>()
        || a.is::<StreamSink>()
}

impl Tickable for ModuleSlot {
    fn label(&self) -> &str {
        for_each_slot!(self, m => m.label())
    }
    fn tick(&mut self, ctx: &mut Ctx<'_>) -> Tick {
        for_each_slot!(self, m => m.tick(ctx))
    }
    fn is_done(&self) -> bool {
        for_each_slot!(self, m => m.is_done())
    }
    fn input_queues(&self) -> Vec<QueueId> {
        for_each_slot!(self, m => m.input_queues())
    }
    fn output_queues(&self) -> Vec<QueueId> {
        for_each_slot!(self, m => m.output_queues())
    }

    /// The window whitelist: modules that pop/push at most one flit per
    /// queue per tick, never read `ctx.cycle`, never touch memory or
    /// scratchpads, and park only on an *empty* input.
    ///
    /// Deliberately excluded:
    /// - `MemReader`/`MemWriter`: per-cycle memory arbitration.
    /// - `SpmReader`/`SpmAddrReader`/`SpmUpdater`: scratchpad traffic,
    ///   multi-pop delimiter skips, or cycle-dependent RMW hazards.
    /// - `ReadToBases`: parks on *non-empty* queues while realigning
    ///   POS/CIGAR/SEQ delimiters, so buffered input does not guarantee
    ///   park-free ticks.
    /// - `Zip` beyond `MAX_FIELDS` inputs: its batch cursors are a
    ///   fixed-size array.
    fn streamable(&self) -> bool {
        match self {
            ModuleSlot::Filter(_)
            | ModuleSlot::Reducer(_)
            | ModuleSlot::Alu(_)
            | ModuleSlot::Joiner(_)
            | ModuleSlot::MdGen(_)
            | ModuleSlot::BinIdGen(_)
            | ModuleSlot::Fanout(_)
            | ModuleSlot::Source(_)
            | ModuleSlot::Sink(_) => true,
            ModuleSlot::Zip(z) => z.fan_in() <= MAX_FIELDS,
            _ => false,
        }
    }

    /// Exact-rate subset of the whitelist: `Source` (supply-capped via
    /// [`Tickable::supply`]), `Sink`, `Fanout`, and constant-operand
    /// `Alu` move exactly one flit per queue per tick regardless of flit
    /// contents. `Filter` (drops), `Reducer` (group-boundary emits),
    /// `Joiner`/`Zip`/queue-mode `Alu` (delimiter resync), `MdGen` and
    /// `BinIdGen` (variable emit counts) do not qualify.
    fn exact_rate(&self) -> bool {
        match self {
            ModuleSlot::Source(_) | ModuleSlot::Sink(_) | ModuleSlot::Fanout(_) => true,
            ModuleSlot::Alu(a) => a.is_const(),
            _ => false,
        }
    }

    fn supply(&self) -> Option<usize> {
        match self {
            ModuleSlot::Source(s) => Some(s.pending_len()),
            _ => None,
        }
    }

    fn tick_run(&mut self, ctx: &mut Ctx<'_>, k: usize, scratch: &mut Vec<Flit>) {
        match self {
            ModuleSlot::Filter(m) => m.tick_run(ctx.queues, k, scratch),
            ModuleSlot::Fanout(m) => m.tick_run(ctx.queues, k, scratch),
            ModuleSlot::Alu(m) => m.tick_run(ctx.queues, k, scratch),
            ModuleSlot::Zip(m) => m.tick_run(ctx.queues, k, scratch),
            ModuleSlot::Source(m) => m.tick_run(ctx.queues, k),
            ModuleSlot::Sink(m) => m.tick_run(ctx.queues, k),
            other => loop_ticks(other, ctx, k),
        }
    }
}

/// The simulation state a [`crate::System`] lends to an [`EngineCore`]
/// for one run (and gets back afterwards, updated).
pub(crate) struct EngineParts {
    pub(crate) queues: QueuePool,
    pub(crate) spms: SpmPool,
    pub(crate) mem: MemorySystem,
    pub(crate) stall: Vec<StallCounters>,
    pub(crate) trace: Option<TraceState>,
    pub(crate) cycle: u64,
}

/// How [`EngineCore::run_until`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Step {
    /// Every module finished.
    Done,
    /// The requested stop cycle was reached.
    Boundary,
}

/// Per-run span/stall bookkeeping. Kept separate from the tick loop so
/// every exit path (drain, deadlock, cycle limit) finalizes identically.
struct RunObs {
    /// Cycle at which this run started.
    base: u64,
    /// Whether each module is currently parked.
    parked: Vec<bool>,
    /// Cycle at which the current park began.
    park_at: Vec<u64>,
    /// Classification of the current park.
    park_class: Vec<StallClass>,
    /// Start cycle of the current active span (tracing only).
    span_start: Vec<u64>,
    /// Stalled cycles accumulated by each module during this run.
    stalled: Vec<u64>,
}

impl RunObs {
    fn new(n: usize, base: u64) -> RunObs {
        RunObs {
            base,
            parked: vec![false; n],
            park_at: vec![0; n],
            park_class: vec![StallClass::InputStarved; n],
            span_start: vec![base; n],
            stalled: vec![0; n],
        }
    }
}

fn watch_matches(watch: Watch, role: u8, qi: u32) -> bool {
    match watch {
        Watch::Inputs => role & ROLE_INPUT != 0,
        Watch::Outputs => role & ROLE_OUTPUT != 0,
        Watch::Queue(id) => id.index() == qi as usize,
        Watch::Timer | Watch::Spill => false,
    }
}

/// Registers (or unregisters) the concrete queues a module's park
/// watches, so `get_mut` records touches only for queues some parked
/// module actually waits on.
fn adjust_watches(queues: &mut QueuePool, ins: &[QueueId], outs: &[QueueId], watch: Watch, add: bool) {
    let qs: &[QueueId] = match watch {
        Watch::Inputs => ins,
        Watch::Outputs => outs,
        Watch::Queue(q) => {
            if add {
                queues.add_watch(q);
            } else {
                queues.remove_watch(q);
            }
            return;
        }
        Watch::Timer | Watch::Spill => return,
    };
    for &q in qs {
        if add {
            queues.add_watch(q);
        } else {
            queues.remove_watch(q);
        }
    }
}

/// Classifies a park by the `Watch` it declared: what the module said it
/// was waiting on is what the stall is attributed to.
fn classify_stall(watch: Watch, ins: &[QueueId], outs: &[QueueId]) -> StallClass {
    match watch {
        Watch::Timer => StallClass::MemoryWait,
        Watch::Spill => StallClass::SpillWait,
        Watch::Inputs => StallClass::InputStarved,
        Watch::Outputs => StallClass::Backpressured,
        Watch::Queue(q) => {
            if outs.contains(&q) && !ins.contains(&q) {
                StallClass::Backpressured
            } else {
                StallClass::InputStarved
            }
        }
    }
}

/// One engine instance: the borrowed simulation state plus all scheduling
/// bookkeeping. In single-threaded runs it holds the whole system; under
/// [`run_parallel`] each core holds one graph component with its own
/// queue/scratchpad sub-pools and (for one component) the real memory
/// system.
pub(crate) struct EngineCore<T> {
    modules: Vec<T>,
    /// Each module's index in the owning `System` (stall merging, trace
    /// track ids, deterministic stuck-label ordering).
    orig_idx: Vec<usize>,
    queues: QueuePool,
    spms: SpmPool,
    mem: MemorySystem,
    pub(crate) cycle: u64,
    /// Stall counters indexed like `modules` (the `System`'s own vector
    /// in single-threaded runs, a local zeroed vector under parallelism).
    stall: Vec<StallCounters>,
    trace: Option<TraceState>,
    obs: RunObs,
    park_enabled: bool,
    /// Window execution enabled (block engine, tracing off).
    windows: bool,
    /// Queue index -> modules watching it, tagged with role bits.
    watchers: Vec<Vec<(usize, u8)>>,
    in_qs: Vec<Vec<QueueId>>,
    out_qs: Vec<Vec<QueueId>>,
    done: Vec<bool>,
    done_count: usize,
    parked_watch: Vec<Watch>,
    parked_count: usize,
    /// Bumped on every unpark so stale timed-heap entries are ignored.
    gen: Vec<u32>,
    timed: BinaryHeap<Reverse<(u64, usize, u32)>>,
    touched: Vec<u32>,
    /// Local mirror of the pool's touch-tracking flag.
    tracking: bool,
    /// Whether each module may run inside a window: streamable, and every
    /// queue it touches has no other producer or consumer.
    window_ok: Vec<bool>,
    /// Epoch-stamped scratch marking the queues of the current window.
    qmark: Vec<u32>,
    /// Epoch-stamped scratch marking queues whose exact-rate producer is
    /// in the current window (their depth is projected, not buffered).
    fed: Vec<u32>,
    win_stamp: u32,
    /// Shared output staging buffer for `tick_run`.
    scratch: Vec<Flit>,
}

impl<T: Tickable> EngineCore<T> {
    pub(crate) fn new(
        modules: Vec<T>,
        orig_idx: Vec<usize>,
        mut parts: EngineParts,
        park_enabled: bool,
        allow_windows: bool,
    ) -> EngineCore<T> {
        let n = modules.len();
        let nq = parts.queues.len();
        let mut watchers: Vec<Vec<(usize, u8)>> = vec![Vec::new(); nq];
        let mut in_qs: Vec<Vec<QueueId>> = Vec::with_capacity(n);
        let mut out_qs: Vec<Vec<QueueId>> = Vec::with_capacity(n);
        let mut producers = vec![0u32; nq];
        let mut consumers = vec![0u32; nq];
        for (i, m) in modules.iter().enumerate() {
            let ins = m.input_queues();
            let outs = m.output_queues();
            for &q in &ins {
                consumers[q.index()] += 1;
                match watchers[q.index()].iter_mut().find(|(w, _)| *w == i) {
                    Some(entry) => entry.1 |= ROLE_INPUT,
                    None => watchers[q.index()].push((i, ROLE_INPUT)),
                }
            }
            for &q in &outs {
                producers[q.index()] += 1;
                match watchers[q.index()].iter_mut().find(|(w, _)| *w == i) {
                    Some(entry) => entry.1 |= ROLE_OUTPUT,
                    None => watchers[q.index()].push((i, ROLE_OUTPUT)),
                }
            }
            in_qs.push(ins);
            out_qs.push(outs);
        }
        let windows = allow_windows && parts.trace.is_none();
        let window_ok: Vec<bool> = modules
            .iter()
            .enumerate()
            .map(|(i, m)| {
                windows
                    && m.streamable()
                    // Shared queues would interleave per-cycle; batches
                    // would reorder their contents. Self-loops likewise.
                    && in_qs[i].iter().all(|q| {
                        consumers[q.index()] == 1 && producers[q.index()] <= 1
                    })
                    && out_qs[i].iter().all(|q| {
                        producers[q.index()] == 1 && consumers[q.index()] <= 1
                    })
                    && !in_qs[i].iter().any(|q| out_qs[i].contains(q))
            })
            .collect();
        let done: Vec<bool> = modules.iter().map(Tickable::is_done).collect();
        let done_count = done.iter().filter(|&&d| d).count();
        parts.queues.set_touch_tracking(false);
        parts.queues.clear_watches();
        EngineCore {
            obs: RunObs::new(n, parts.cycle),
            cycle: parts.cycle,
            modules,
            orig_idx,
            queues: parts.queues,
            spms: parts.spms,
            mem: parts.mem,
            stall: parts.stall,
            trace: parts.trace,
            park_enabled,
            windows,
            watchers,
            in_qs,
            out_qs,
            done,
            done_count,
            parked_watch: vec![Watch::Inputs; n],
            parked_count: 0,
            gen: vec![0u32; n],
            timed: BinaryHeap::new(),
            touched: Vec::new(),
            tracking: false,
            window_ok,
            qmark: vec![0u32; nq],
            fed: vec![0u32; nq],
            win_stamp: 0,
            scratch: Vec::new(),
        }
    }

    pub(crate) fn is_complete(&self) -> bool {
        self.done_count == self.modules.len()
    }

    /// Observable-progress fingerprint (identical to the `System`'s
    /// pre-refactor signature for single-core runs; under parallelism the
    /// global signature is the component-wise sum, exact because every
    /// real queue and the real memory system live in exactly one core).
    pub(crate) fn signature(&self) -> (u64, u64, usize) {
        let pushed: u64 = self.queues.iter().map(crate::queue::Queue::total_pushed).sum();
        let mem = self.mem.stats();
        (pushed, mem.read_lines + mem.write_lines + self.spms.tier_ops(), self.done_count)
    }

    fn deadlock_window(&self) -> u64 {
        4 * self.mem.config().worst_case_latency_cycles()
            + 4 * self.spms.tier_worst_wait()
            + 10_000
    }

    fn stuck_labels(&self) -> Vec<String> {
        self.modules
            .iter()
            .enumerate()
            .filter(|&(i, _)| !self.done[i])
            .map(|(_, m)| m.label().to_owned())
            .collect()
    }

    #[inline]
    fn sample_queues_if_due(&mut self) {
        let Some(ts) = &mut self.trace else { return };
        if self.cycle < ts.next_sample {
            return;
        }
        for (qi, q) in self.queues.iter().enumerate() {
            let d = q.len() as u64;
            if ts.last_depth[qi] != d {
                ts.last_depth[qi] = d;
                ts.buf.record_sample(qi as u32, self.cycle, d);
            }
        }
        ts.next_sample = self.cycle + ts.stride;
    }

    /// Closes module `i`'s current park interval at cycle `now`.
    fn note_unpark(
        stall: &mut [StallCounters],
        trace: &mut Option<TraceState>,
        obs: &mut RunObs,
        orig: usize,
        i: usize,
        now: u64,
    ) {
        let cycles = now - obs.park_at[i];
        let class = obs.park_class[i];
        stall[i].add(class, cycles);
        obs.stalled[i] += cycles;
        if let Some(ts) = trace {
            ts.buf.record_span(orig as u32, SpanKind::Stall(class), obs.park_at[i], now);
        }
        obs.span_start[i] = now;
    }

    /// Closes all open span/stall intervals at the end of a run (any exit
    /// path) and credits each module's non-parked remainder as active.
    pub(crate) fn finalize_obs(&mut self) {
        let now = self.cycle;
        let elapsed = now - self.obs.base;
        for i in 0..self.obs.parked.len() {
            if self.obs.parked[i] {
                let cycles = now - self.obs.park_at[i];
                self.stall[i].add(self.obs.park_class[i], cycles);
                self.stall[i].active += elapsed - (self.obs.stalled[i] + cycles);
                if let Some(ts) = &mut self.trace {
                    ts.buf.record_span(
                        self.orig_idx[i] as u32,
                        SpanKind::Stall(self.obs.park_class[i]),
                        self.obs.park_at[i],
                        now,
                    );
                }
            } else {
                self.stall[i].active += elapsed - self.obs.stalled[i];
                if let Some(ts) = &mut self.trace {
                    ts.buf.record_span(
                        self.orig_idx[i] as u32,
                        SpanKind::Active,
                        self.obs.span_start[i],
                        now,
                    );
                }
            }
        }
    }

    /// Returns the modules and the (updated) borrowed state.
    pub(crate) fn into_parts(self) -> (Vec<T>, EngineParts) {
        (
            self.modules,
            EngineParts {
                queues: self.queues,
                spms: self.spms,
                mem: self.mem,
                stall: self.stall,
                trace: self.trace,
                cycle: self.cycle,
            },
        )
    }

    /// Runs the full deadlock/cycle-limit protocol: advances in segments
    /// to each 512-cycle boundary, comparing progress signatures exactly
    /// as the pre-refactor engines did, so `Deadlock` and `CycleLimit`
    /// fire at identical cycles.
    pub(crate) fn drive(&mut self, max_cycles: u64) -> Result<(), SimError> {
        let window = self.deadlock_window();
        let mut last_signature = self.signature();
        let mut last_progress_cycle = self.cycle;
        loop {
            let stop = ((self.cycle / 512) + 1) * 512;
            let stop = stop.min(max_cycles);
            if !self.is_complete() && self.cycle >= max_cycles {
                self.queues.set_touch_tracking(false);
                return Err(SimError::CycleLimit { limit: max_cycles });
            }
            match self.run_until(stop) {
                Step::Done => {
                    self.queues.set_touch_tracking(false);
                    return Ok(());
                }
                Step::Boundary => {
                    // Deadlock sampling strictly precedes the budget
                    // check, as in the per-cycle loops.
                    if self.cycle.is_multiple_of(512) {
                        let sig = self.signature();
                        if sig != last_signature {
                            last_signature = sig;
                            last_progress_cycle = self.cycle;
                        } else if self.cycle - last_progress_cycle > window {
                            self.queues.set_touch_tracking(false);
                            return Err(SimError::Deadlock {
                                cycle: self.cycle,
                                stuck: self.stuck_labels(),
                                report: Box::default(),
                            });
                        }
                    }
                    if self.cycle >= max_cycles {
                        self.queues.set_touch_tracking(false);
                        return Err(SimError::CycleLimit { limit: max_cycles });
                    }
                }
            }
        }
    }

    /// Advances until every module finishes or `stop_at` is reached,
    /// whichever comes first. No deadlock or budget policy here — the
    /// caller ([`EngineCore::drive`] or the parallel coordinator) owns
    /// that, so both paths share one tick loop.
    #[allow(clippy::too_many_lines)]
    pub(crate) fn run_until(&mut self, stop_at: u64) -> Step {
        let n = self.modules.len();
        while self.done_count < n {
            if self.cycle >= stop_at {
                return Step::Boundary;
            }
            self.sample_queues_if_due();
            if self.park_enabled {
                // Timed wakes due this cycle.
                while let Some(&Reverse((at, i, g))) = self.timed.peek() {
                    if at > self.cycle {
                        break;
                    }
                    self.timed.pop();
                    if g == self.gen[i] && self.obs.parked[i] && !self.done[i] {
                        self.obs.parked[i] = false;
                        self.parked_count -= 1;
                        self.gen[i] = self.gen[i].wrapping_add(1);
                        adjust_watches(
                            &mut self.queues,
                            &self.in_qs[i],
                            &self.out_qs[i],
                            self.parked_watch[i],
                            false,
                        );
                        Self::note_unpark(
                            &mut self.stall,
                            &mut self.trace,
                            &mut self.obs,
                            self.orig_idx[i],
                            i,
                            self.cycle,
                        );
                    }
                }
                if self.tracking && self.parked_count == 0 {
                    self.tracking = false;
                    self.queues.set_touch_tracking(false);
                }
                if self.parked_count + self.done_count == n {
                    // Every live module is parked: jump to the earliest
                    // still-valid timed wake (capped at the segment end;
                    // the caller's boundary bookkeeping replays the
                    // per-cycle deadlock arithmetic exactly).
                    let wake = loop {
                        match self.timed.peek() {
                            Some(&Reverse((at, i, g))) => {
                                if g == self.gen[i] && self.obs.parked[i] && !self.done[i] {
                                    break at;
                                }
                                self.timed.pop();
                            }
                            None => break u64::MAX,
                        }
                    };
                    self.cycle = wake.min(stop_at);
                    continue;
                }
                if self.windows {
                    let k = self.window_len(stop_at);
                    if k >= MIN_WINDOW {
                        self.run_window(k);
                        continue;
                    }
                }
            }
            self.mem.begin_cycle(self.cycle);
            for i in 0..n {
                if self.done[i] || self.obs.parked[i] {
                    continue;
                }
                let t = self.modules[i].tick(&mut Ctx {
                    queues: &mut self.queues,
                    spms: &mut self.spms,
                    mem: &mut self.mem,
                    cycle: self.cycle,
                });
                // Unpark watchers of queues this tick mutated, *before*
                // applying the tick's own result — a module that parks
                // after touching its queues (a refused push marks a
                // touch) must not immediately wake itself.
                if self.tracking && self.queues.has_touched() {
                    let mut touched = std::mem::take(&mut self.touched);
                    self.queues.take_touched(&mut touched);
                    for &qi in &touched {
                        // A touch is also a depth-change signal: sample
                        // the touched queue (deduplicated) when tracing.
                        if let Some(ts) = &mut self.trace {
                            let d = self.queues.get(QueueId(qi)).len() as u64;
                            if ts.last_depth[qi as usize] != d {
                                ts.last_depth[qi as usize] = d;
                                ts.buf.record_sample(qi, self.cycle, d);
                            }
                        }
                        for &(w, role) in &self.watchers[qi as usize] {
                            if self.obs.parked[w]
                                && !self.done[w]
                                && watch_matches(self.parked_watch[w], role, qi)
                            {
                                self.obs.parked[w] = false;
                                self.parked_count -= 1;
                                self.gen[w] = self.gen[w].wrapping_add(1);
                                adjust_watches(
                                    &mut self.queues,
                                    &self.in_qs[w],
                                    &self.out_qs[w],
                                    self.parked_watch[w],
                                    false,
                                );
                                Self::note_unpark(
                                    &mut self.stall,
                                    &mut self.trace,
                                    &mut self.obs,
                                    self.orig_idx[w],
                                    w,
                                    self.cycle,
                                );
                            }
                        }
                    }
                    touched.clear();
                    self.touched = touched;
                }
                match t {
                    Tick::Active => {
                        if self.modules[i].is_done() {
                            self.done[i] = true;
                            self.done_count += 1;
                        }
                    }
                    Tick::Park { wake_at, watch } => {
                        if self.park_enabled {
                            self.obs.parked[i] = true;
                            self.parked_watch[i] = watch;
                            self.parked_count += 1;
                            self.obs.park_at[i] = self.cycle;
                            self.obs.park_class[i] =
                                classify_stall(watch, &self.in_qs[i], &self.out_qs[i]);
                            if let Some(ts) = &mut self.trace {
                                // The park tick itself was a no-op, so the
                                // active span ends where the stall begins.
                                ts.buf.record_span(
                                    self.orig_idx[i] as u32,
                                    SpanKind::Active,
                                    self.obs.span_start[i],
                                    self.cycle,
                                );
                            }
                            adjust_watches(
                                &mut self.queues,
                                &self.in_qs[i],
                                &self.out_qs[i],
                                watch,
                                true,
                            );
                            if let Some(at) = wake_at {
                                self.timed.push(Reverse((at, i, self.gen[i])));
                            }
                            if !self.tracking {
                                // First park: start recording touches.
                                self.tracking = true;
                                self.queues.set_touch_tracking(true);
                            }
                        }
                        // Reference engine: parks are ignored (pure no-op
                        // ticks re-run every cycle).
                    }
                }
            }
            self.cycle += 1;
        }
        Step::Done
    }

    /// Largest exact window executable from the current cycle, or 0.
    ///
    /// A window of `k` cycles is exact when every live unparked module is
    /// window-capable ([`Self::window_ok`]), each input either holds `k`
    /// buffered flits or is *fed* — its producer is an exact-rate module
    /// earlier in the window, which deposits its `j`-th flit in cycle `j`,
    /// before the consumer's same-cycle tick — every output has `k` free
    /// slots, no supply-limited producer runs dry (`k` ≤ its remaining
    /// supply), no timed wake lands inside the window, and no parked
    /// module watches any queue the window touches (it would have been
    /// woken mid-window).
    ///
    /// The scan visits modules in registration order — the same order
    /// [`Self::run_window`] executes them — so a consumer sees a fed mark
    /// only from a producer that batches before it. Shrinking `k` after a
    /// mark stays sound: a fed input needs no backlog at any `k`, and
    /// buffered inputs were checked against a `k` at least as large as
    /// the final one.
    fn window_len(&mut self, stop_at: u64) -> usize {
        let mut k = usize::try_from(stop_at - self.cycle).unwrap_or(usize::MAX);
        // No timed wake may land inside the window. (Entries due at or
        // before the current cycle were handled or invalidated already,
        // so a valid head is strictly in the future.)
        while let Some(&Reverse((at, i, g))) = self.timed.peek() {
            if g == self.gen[i] && self.obs.parked[i] && !self.done[i] {
                k = k.min(usize::try_from(at - self.cycle).unwrap_or(usize::MAX));
                break;
            }
            self.timed.pop();
        }
        if k < MIN_WINDOW {
            return 0;
        }
        self.win_stamp = self.win_stamp.wrapping_add(1);
        if self.win_stamp == 0 {
            // Stamp wrapped: clear both scratch vecs so a stale entry
            // cannot collide with the new epoch (a stale `fed` hit would
            // skip a depth check it must not skip).
            self.qmark.fill(0);
            self.fed.fill(0);
            self.win_stamp = 1;
        }
        let n = self.modules.len();
        for i in 0..n {
            if self.done[i] || self.obs.parked[i] {
                continue;
            }
            if !self.window_ok[i] {
                return 0;
            }
            if let Some(supply) = self.modules[i].supply() {
                k = k.min(supply);
            }
            for q in &self.in_qs[i] {
                if self.fed[q.index()] != self.win_stamp {
                    k = k.min(self.queues.get(*q).len());
                }
                self.qmark[q.index()] = self.win_stamp;
            }
            let feeds = self.modules[i].exact_rate();
            for q in &self.out_qs[i] {
                k = k.min(self.queues.get(*q).space());
                self.qmark[q.index()] = self.win_stamp;
                if feeds {
                    self.fed[q.index()] = self.win_stamp;
                }
            }
            if k < MIN_WINDOW {
                return 0;
            }
        }
        if self.parked_count > 0 {
            for w in 0..n {
                if self.done[w] || !self.obs.parked[w] {
                    continue;
                }
                let marked = |q: &QueueId| self.qmark[q.index()] == self.win_stamp;
                let woken = match self.parked_watch[w] {
                    Watch::Timer | Watch::Spill => false,
                    Watch::Inputs => self.in_qs[w].iter().any(marked),
                    Watch::Outputs => self.out_qs[w].iter().any(marked),
                    Watch::Queue(q) => marked(&q),
                };
                if woken {
                    return 0;
                }
            }
        }
        k
    }

    /// Executes one `k`-cycle window: each live module processes `k`
    /// ticks as a batch, in registration order. Memory `begin_cycle` is
    /// skipped — no window module touches the memory system, and parked
    /// memory modules wake strictly after the window (timed-wake cap).
    fn run_window(&mut self, k: usize) {
        WINDOW_CYCLES.fetch_add(k as u64, std::sync::atomic::Ordering::Relaxed);
        WINDOW_COUNT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let n = self.modules.len();
        for i in 0..n {
            if self.done[i] || self.obs.parked[i] {
                continue;
            }
            let mut scratch = std::mem::take(&mut self.scratch);
            self.modules[i].tick_run(
                &mut Ctx {
                    queues: &mut self.queues,
                    spms: &mut self.spms,
                    mem: &mut self.mem,
                    cycle: self.cycle,
                },
                k,
                &mut scratch,
            );
            self.scratch = scratch;
            if self.modules[i].is_done() {
                self.done[i] = true;
                self.done_count += 1;
            }
        }
        self.cycle += k as u64;
    }
}

/// Splits `modules` into connected components over shared queues, shared
/// scratchpads, and the (single) memory system: two modules land in the
/// same component iff a chain of shared resources links them. Components
/// are returned in first-module registration order, each listing its
/// member indices in registration order. Unknown module types collapse
/// everything into one component — the partitioner cannot see what they
/// touch.
///
/// `tiered` flags (per scratchpad index) which scratchpads are paged by
/// the tier layer: their users all share the PCIe/DRAM link schedules, so
/// every module touching any tiered scratchpad is folded into a single
/// component (the tier state then moves wholesale with that component's
/// scratchpad sub-pool).
pub(crate) fn partition_modules(
    modules: &[Box<dyn Module>],
    nq: usize,
    ns: usize,
    tiered: &[bool],
) -> Vec<Vec<usize>> {
    let n = modules.len();
    if n == 0 {
        return Vec::new();
    }
    if !modules.iter().all(|m| slot_known(m.as_ref())) {
        return vec![(0..n).collect()];
    }
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    fn union(parent: &mut [usize], a: usize, b: usize) {
        let (ra, rb) = (find(parent, a), find(parent, b));
        if ra != rb {
            parent[ra.max(rb)] = ra.min(rb);
        }
    }
    let mut parent: Vec<usize> = (0..n).collect();
    let mut q_owner = vec![usize::MAX; nq];
    let mut s_owner = vec![usize::MAX; ns];
    let mut mem_owner = usize::MAX;
    let mut tier_owner = usize::MAX;
    for (i, m) in modules.iter().enumerate() {
        for q in m.input_queues().into_iter().chain(m.output_queues()) {
            if q_owner[q.index()] == usize::MAX {
                q_owner[q.index()] = i;
            } else {
                union(&mut parent, q_owner[q.index()], i);
            }
        }
        for s in m.spm_ids() {
            if s_owner[s.index()] == usize::MAX {
                s_owner[s.index()] = i;
            } else {
                union(&mut parent, s_owner[s.index()], i);
            }
            if tiered.get(s.index()).copied().unwrap_or(false) {
                if tier_owner == usize::MAX {
                    tier_owner = i;
                } else {
                    union(&mut parent, tier_owner, i);
                }
            }
        }
        if matches!(
            m.kind(),
            crate::modules::ModuleKind::MemoryReader | crate::modules::ModuleKind::MemoryWriter
        ) {
            if mem_owner == usize::MAX {
                mem_owner = i;
            } else {
                union(&mut parent, mem_owner, i);
            }
        }
    }
    let mut comp_of_root = vec![usize::MAX; n];
    let mut comps: Vec<Vec<usize>> = Vec::new();
    for i in 0..n {
        let r = find(&mut parent, i);
        if comp_of_root[r] == usize::MAX {
            comp_of_root[r] = comps.len();
            comps.push(Vec::new());
        }
        comps[comp_of_root[r]].push(i);
    }
    comps
}

/// Drives a set of per-component [`EngineCore`]s on `threads` scoped
/// worker threads, in lockstep 512-cycle segments.
///
/// Lockstep is load-bearing for bit-identity: the deadlock verdict
/// compares the *global* progress signature at exactly the same 512-cycle
/// boundaries the single-threaded engines sample, and a component must
/// not run ahead of a boundary at which the whole system is declared
/// deadlocked or out of budget. Within a segment components are
/// independent by construction (disjoint queues, scratchpads, and memory
/// access), so worker scheduling cannot perturb results.
///
/// On `Deadlock` the error's `stuck` list is assembled afterwards from
/// all cores in registration order.
pub(crate) fn run_parallel(
    cores: &mut [EngineCore<ModuleSlot>],
    threads: usize,
    max_cycles: u64,
) -> Result<(), SimError> {
    /// Coordinator -> worker command slot: a stop cycle, or `TERM`.
    const TERM: u64 = u64::MAX;
    let deadlock_window = cores
        .iter()
        .map(EngineCore::deadlock_window)
        .max()
        .expect("at least one core");
    let w = threads.min(cores.len()).max(1);
    let barrier = Barrier::new(w + 1);
    let cmd = AtomicU64::new(0);
    type Report = ((u64, u64, usize), bool);
    let reports: Vec<Mutex<Report>> = (0..w).map(|_| Mutex::new(((0, 0, 0), false))).collect();
    let mut last_signature = (0u64, 0u64, 0usize);
    for c in cores.iter() {
        let s = c.signature();
        last_signature.0 += s.0;
        last_signature.1 += s.1;
        last_signature.2 += s.2;
    }
    let start = cores.iter().map(|c| c.cycle).max().unwrap_or(0);
    let mut last_progress_cycle = start;
    let all_done_at_entry = cores.iter().all(EngineCore::is_complete);
    let mut verdict: Result<(), SimError> = Ok(());
    std::thread::scope(|scope| {
        let mut rest = &mut *cores;
        let per = rest.len() / w;
        let extra = rest.len() % w;
        for (wi, report) in reports.iter().enumerate() {
            let take = per + usize::from(wi < extra);
            let (chunk, tail) = rest.split_at_mut(take);
            rest = tail;
            let barrier = &barrier;
            let cmd = &cmd;
            scope.spawn(move || loop {
                barrier.wait();
                let stop = cmd.load(Ordering::Acquire);
                if stop == TERM {
                    break;
                }
                let mut sig = (0u64, 0u64, 0usize);
                let mut all = true;
                for core in chunk.iter_mut() {
                    if !core.is_complete() {
                        let _ = core.run_until(stop);
                    }
                    let s = core.signature();
                    sig.0 += s.0;
                    sig.1 += s.1;
                    sig.2 += s.2;
                    all &= core.is_complete();
                }
                *report.lock().expect("report mutex") = (sig, all);
                barrier.wait();
            });
        }
        let mut cur = start;
        if !all_done_at_entry {
            loop {
                if cur >= max_cycles {
                    verdict = Err(SimError::CycleLimit { limit: max_cycles });
                    break;
                }
                let stop = (((cur / 512) + 1) * 512).min(max_cycles);
                cmd.store(stop, Ordering::Release);
                barrier.wait();
                barrier.wait();
                let mut sig = (0u64, 0u64, 0usize);
                let mut all = true;
                for r in &reports {
                    let (s, a) = *r.lock().expect("report mutex");
                    sig.0 += s.0;
                    sig.1 += s.1;
                    sig.2 += s.2;
                    all &= a;
                }
                if all {
                    break;
                }
                // Same ordering as the single-core drive loop: deadlock
                // sampling at 512-multiples, then the budget check.
                if stop.is_multiple_of(512) {
                    if sig != last_signature {
                        last_signature = sig;
                        last_progress_cycle = stop;
                    } else if stop - last_progress_cycle > deadlock_window {
                        verdict = Err(SimError::Deadlock {
                            cycle: stop,
                            stuck: Vec::new(),
                            report: Box::default(),
                        });
                        break;
                    }
                }
                if stop >= max_cycles {
                    verdict = Err(SimError::CycleLimit { limit: max_cycles });
                    break;
                }
                cur = stop;
            }
        }
        cmd.store(TERM, Ordering::Release);
        barrier.wait();
    });
    if let Err(SimError::Deadlock { stuck, .. }) = &mut verdict {
        let mut labels: Vec<(usize, String)> = Vec::new();
        for core in cores.iter() {
            for (i, d) in core.done.iter().enumerate() {
                if !d {
                    labels.push((core.orig_idx[i], core.modules[i].label().to_owned()));
                }
            }
        }
        labels.sort_by_key(|a| a.0);
        *stuck = labels.into_iter().map(|(_, l)| l).collect();
    }
    verdict
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemoryConfig;
    use crate::modules::alu::{AluOp, AluRhs, StreamAlu};
    use crate::modules::filter::{CmpOp, Predicate};
    use crate::modules::sink::StreamSink;
    use crate::modules::source::StreamSource;
    use crate::queue::{QueueId, DEFAULT_CAPACITY};
    use crate::system::{EngineMode, System};

    /// Wraps slots in [`EngineParts`] and builds a block-engine core.
    fn block_core(slots: Vec<ModuleSlot>, queues: QueuePool) -> EngineCore<ModuleSlot> {
        let n = slots.len();
        let parts = EngineParts {
            queues,
            spms: SpmPool::new(),
            mem: MemorySystem::new(MemoryConfig::default()),
            stall: vec![StallCounters::default(); n],
            trace: None,
            cycle: 0,
        };
        EngineCore::new(slots, (0..n).collect(), parts, true, true)
    }

    /// The projected-depth planner: a chain of exact-rate modules
    /// (source -> const ALU -> fanout -> sinks) forms a window even with
    /// every queue empty, because each producer feeds its consumer
    /// in-window; queue capacity caps the length.
    #[test]
    fn exact_rate_chain_windows_from_empty_queues() {
        let mut queues = QueuePool::new();
        let q0 = queues.add("q0");
        let q1 = queues.add("q1");
        let q2 = queues.add("q2");
        let q3 = queues.add("q3");
        let flits: Vec<Flit> = (0..100u64).map(Flit::val).collect();
        let slots = vec![
            ModuleSlot::Source(StreamSource::from_flits("src", q0, flits)),
            ModuleSlot::Alu(StreamAlu::new("inc", AluOp::Add, q0, AluRhs::Const(1), q1)),
            ModuleSlot::Fanout(Fanout::new("fan", q1, vec![q2, q3])),
            ModuleSlot::Sink(StreamSink::new("ka", q2)),
            ModuleSlot::Sink(StreamSink::new("kb", q3)),
        ];
        let mut core = block_core(slots, queues);
        assert_eq!(core.window_len(512), DEFAULT_CAPACITY);
    }

    /// A source with fewer pending flits than queue capacity caps the
    /// window at its supply, so it cannot run dry mid-window.
    #[test]
    fn source_supply_caps_window_length() {
        let mut queues = QueuePool::new();
        let q0 = queues.add("q0");
        let flits: Vec<Flit> = (0..7u64).map(Flit::val).collect();
        let slots = vec![
            ModuleSlot::Source(StreamSource::from_flits("src", q0, flits)),
            ModuleSlot::Sink(StreamSink::new("k", q0)),
        ];
        let mut core = block_core(slots, queues);
        assert_eq!(core.window_len(512), 7);
    }

    /// A data-dependent module (filter) mid-chain breaks the fed chain:
    /// its consumer's empty input proves no depth, so no window forms.
    #[test]
    fn non_exact_link_blocks_empty_queue_window() {
        let mut queues = QueuePool::new();
        let q0 = queues.add("q0");
        let q1 = queues.add("q1");
        let flits: Vec<Flit> = (0..100u64).map(Flit::val).collect();
        let slots = vec![
            ModuleSlot::Source(StreamSource::from_flits("src", q0, flits)),
            ModuleSlot::Filter(Filter::new(
                "f",
                Predicate::field_const(0, CmpOp::Lt, 50),
                q0,
                q1,
            )),
            ModuleSlot::Sink(StreamSink::new("k", q1)),
        ];
        let mut core = block_core(slots, queues);
        assert_eq!(core.window_len(512), 0);
    }

    /// End to end through [`System`]: the exact-rate chain runs under the
    /// block engine with windows demonstrably firing, and its outputs and
    /// cycle count are bit-identical to the reference engine's.
    #[test]
    fn exact_chain_system_windows_and_matches_reference() {
        let items: Vec<Vec<u64>> = (0..200u64).map(|i| vec![i, i + 1, i + 2]).collect();
        let run = |mode: EngineMode| {
            let mut sys = System::new();
            let q0 = sys.add_queue("q0");
            let q1 = sys.add_queue("q1");
            let q2 = sys.add_queue("q2");
            let q3 = sys.add_queue("q3");
            sys.add_module(Box::new(StreamSource::from_items("src", q0, &items)));
            sys.add_module(Box::new(StreamAlu::new(
                "inc",
                AluOp::Add,
                q0,
                AluRhs::Const(3),
                q1,
            )));
            sys.add_module(Box::new(Fanout::new("fan", q1, vec![q2, q3])));
            let ka = sys.add_module(Box::new(StreamSink::new("ka", q2)));
            let kb = sys.add_module(Box::new(StreamSink::new("kb", q3)));
            sys.set_engine(mode);
            sys.set_sim_threads(1);
            let stats = sys.run(100_000).expect("chain drains");
            (sys.sink_values(ka), sys.sink_values(kb), stats.cycles, stats.total_flits)
        };
        let windowed_before = WINDOW_CYCLES.load(Ordering::Relaxed);
        let block = run(EngineMode::Block);
        assert!(
            WINDOW_CYCLES.load(Ordering::Relaxed) > windowed_before,
            "exact-rate chain must execute through windows"
        );
        let reference = run(EngineMode::Reference);
        assert_eq!(block, reference);
    }

    /// Independent chains partition one component per chain, in
    /// registration order.
    #[test]
    fn partitions_by_queue_connectivity() {
        let mut mods: Vec<Box<dyn Module>> = Vec::new();
        for p in 0..3u32 {
            let q = QueueId(p);
            mods.push(Box::new(StreamSource::from_items(&format!("s{p}"), q, &[vec![1, 2]])));
            mods.push(Box::new(StreamSink::new(&format!("k{p}"), q)));
        }
        let comps = partition_modules(&mods, 3, 0, &[]);
        assert_eq!(comps.len(), 3);
        assert_eq!(comps[0], vec![0, 1]);
        assert_eq!(comps[1], vec![2, 3]);
        assert_eq!(comps[2], vec![4, 5]);
    }

    /// A module bridging two chains (two-input ALU) collapses them into
    /// one component.
    #[test]
    fn shared_queue_merges_components() {
        let (qa, qb, qo) = (QueueId(0), QueueId(1), QueueId(2));
        let mods: Vec<Box<dyn Module>> = vec![
            Box::new(StreamSource::from_items("sa", qa, &[vec![1]])),
            Box::new(StreamSource::from_items("sb", qb, &[vec![2]])),
            Box::new(StreamAlu::new("add", AluOp::Add, qa, AluRhs::Queue(qb), qo)),
            Box::new(StreamSink::new("k", qo)),
        ];
        let comps = partition_modules(&mods, 3, 0, &[]);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0], vec![0, 1, 2, 3]);
    }
}
