//! Stream words and flits.

use std::fmt;

/// A 64-bit hardware word, optionally carrying one of the paper's
/// genomics sentinels (`Ins` for a base not present in the reference,
/// `Del` for a reference position not present in the read — Figure 3).
///
/// # Examples
///
/// ```
/// use genesis_hw::word::HwWord;
///
/// assert_eq!(HwWord::Val(7).as_val(), Some(7));
/// assert!(HwWord::Ins.is_marker());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum HwWord {
    /// An ordinary value.
    Val(u64),
    /// Inserted-base sentinel.
    Ins,
    /// Deleted-base sentinel.
    Del,
    /// Unused field slot.
    #[default]
    Empty,
}

impl HwWord {
    /// Returns the payload of a `Val` word.
    #[must_use]
    pub fn as_val(self) -> Option<u64> {
        match self {
            HwWord::Val(v) => Some(v),
            _ => None,
        }
    }

    /// True for the `Ins`/`Del` sentinels.
    #[must_use]
    pub fn is_marker(self) -> bool {
        matches!(self, HwWord::Ins | HwWord::Del)
    }

    /// Payload or 0 for sentinels/empty — the hardware's "don't care" view.
    #[must_use]
    pub fn val_or_zero(self) -> u64 {
        self.as_val().unwrap_or(0)
    }
}

impl From<u64> for HwWord {
    fn from(v: u64) -> HwWord {
        HwWord::Val(v)
    }
}

impl fmt::Display for HwWord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HwWord::Val(v) => write!(f, "{v}"),
            HwWord::Ins => write!(f, "Ins"),
            HwWord::Del => write!(f, "Del"),
            HwWord::Empty => write!(f, "-"),
        }
    }
}

/// Maximum number of fields a flit can carry.
pub const MAX_FIELDS: usize = 8;

/// The atomic unit of communication between modules (paper §III-C): a small
/// group of typed fields, or an explicit *end-of-item* delimiter separating
/// data items (e.g. reads) within a stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flit {
    fields: [HwWord; MAX_FIELDS],
    len: u8,
    end_item: bool,
}

impl Flit {
    /// Creates a data flit from fields.
    ///
    /// # Panics
    ///
    /// Panics when more than [`MAX_FIELDS`] fields are given.
    #[must_use]
    pub fn data(fields: &[HwWord]) -> Flit {
        assert!(fields.len() <= MAX_FIELDS, "flit supports at most {MAX_FIELDS} fields");
        let mut f = [HwWord::Empty; MAX_FIELDS];
        f[..fields.len()].copy_from_slice(fields);
        Flit { fields: f, len: fields.len() as u8, end_item: false }
    }

    /// Creates a single-value data flit.
    #[must_use]
    pub fn val(v: u64) -> Flit {
        Flit::data(&[HwWord::Val(v)])
    }

    /// Creates an end-of-item delimiter flit.
    #[must_use]
    pub fn end_item() -> Flit {
        Flit { fields: [HwWord::Empty; MAX_FIELDS], len: 0, end_item: true }
    }

    /// True for the end-of-item delimiter.
    #[must_use]
    pub fn is_end_item(&self) -> bool {
        self.end_item
    }

    /// The populated fields.
    #[must_use]
    pub fn fields(&self) -> &[HwWord] {
        &self.fields[..self.len as usize]
    }

    /// Number of populated fields.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when the flit carries no fields (delimiters).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Field `i`, or `Empty` when out of range.
    #[must_use]
    pub fn field(&self, i: usize) -> HwWord {
        if i < self.len as usize {
            self.fields[i]
        } else {
            HwWord::Empty
        }
    }

    /// Returns a new flit with the fields of `other` appended (the Joiner's
    /// merge-by-concatenation, paper §III-C).
    ///
    /// # Panics
    ///
    /// Panics when the combined field count exceeds [`MAX_FIELDS`].
    #[must_use]
    pub fn concat(&self, other: &Flit) -> Flit {
        let total = self.len() + other.len();
        assert!(total <= MAX_FIELDS, "joined flit would carry {total} fields");
        let mut f = [HwWord::Empty; MAX_FIELDS];
        f[..self.len()].copy_from_slice(self.fields());
        f[self.len()..total].copy_from_slice(other.fields());
        Flit { fields: f, len: total as u8, end_item: false }
    }

    /// Returns a new flit keeping only the selected field indices.
    ///
    /// # Panics
    ///
    /// Panics when more than [`MAX_FIELDS`] indices are given.
    #[must_use]
    pub fn select(&self, indices: &[usize]) -> Flit {
        assert!(indices.len() <= MAX_FIELDS, "flit supports at most {MAX_FIELDS} fields");
        let mut f = [HwWord::Empty; MAX_FIELDS];
        for (slot, &i) in f.iter_mut().zip(indices) {
            *slot = self.field(i);
        }
        Flit { fields: f, len: indices.len() as u8, end_item: false }
    }
}

impl fmt::Display for Flit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.end_item {
            return write!(f, "|END|");
        }
        write!(f, "(")?;
        for (i, w) in self.fields().iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{w}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_flit_fields() {
        let f = Flit::data(&[HwWord::Val(1), HwWord::Ins]);
        assert_eq!(f.len(), 2);
        assert_eq!(f.field(0), HwWord::Val(1));
        assert_eq!(f.field(1), HwWord::Ins);
        assert_eq!(f.field(5), HwWord::Empty);
        assert!(!f.is_end_item());
    }

    #[test]
    fn end_item_flit() {
        let f = Flit::end_item();
        assert!(f.is_end_item());
        assert!(f.is_empty());
        assert_eq!(f.to_string(), "|END|");
    }

    #[test]
    fn concat_merges_fields() {
        let a = Flit::data(&[HwWord::Val(1), HwWord::Val(2)]);
        let b = Flit::data(&[HwWord::Del]);
        let c = a.concat(&b);
        assert_eq!(c.fields(), &[HwWord::Val(1), HwWord::Val(2), HwWord::Del]);
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn too_many_fields_panics() {
        let _ = Flit::data(&[HwWord::Val(0); MAX_FIELDS + 1]);
    }

    #[test]
    fn select_projects() {
        let f = Flit::data(&[HwWord::Val(1), HwWord::Val(2), HwWord::Val(3)]);
        assert_eq!(f.select(&[2, 0]).fields(), &[HwWord::Val(3), HwWord::Val(1)]);
    }

    #[test]
    fn word_display() {
        assert_eq!(HwWord::Val(9).to_string(), "9");
        assert_eq!(HwWord::Ins.to_string(), "Ins");
        assert_eq!(HwWord::Val(9).val_or_zero(), 9);
        assert_eq!(HwWord::Del.val_or_zero(), 0);
    }
}
