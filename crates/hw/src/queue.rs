//! Bounded hardware queues with backpressure.

use crate::word::Flit;
use std::collections::VecDeque;

/// Identifier of a queue within a [`QueuePool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QueueId(pub(crate) u32);

impl QueueId {
    /// Raw index (stable for the lifetime of the pool).
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Default queue capacity in flits.
pub const DEFAULT_CAPACITY: usize = 16;

/// One bounded hardware queue.
#[derive(Debug)]
pub struct Queue {
    name: String,
    buf: VecDeque<Flit>,
    capacity: usize,
    closed: bool,
    /// Total flits ever enqueued (for utilization stats).
    pushed: u64,
    /// Cycles on which a push was refused for lack of space.
    full_stalls: u64,
}

impl Queue {
    fn new(name: &str, capacity: usize) -> Queue {
        Queue {
            name: name.to_owned(),
            buf: VecDeque::with_capacity(capacity),
            capacity,
            closed: false,
            pushed: 0,
            full_stalls: 0,
        }
    }

    /// Queue name (for diagnostics).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Configured capacity in flits.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// True when a flit can be pushed this cycle.
    #[must_use]
    pub fn can_push(&self) -> bool {
        self.buf.len() < self.capacity
    }

    /// Pushes a flit.
    ///
    /// # Panics
    ///
    /// Panics when full or closed — callers must check [`Queue::can_push`]
    /// first (that is the backpressure contract).
    pub fn push(&mut self, flit: Flit) {
        assert!(!self.closed, "push to closed queue {}", self.name);
        assert!(self.can_push(), "push to full queue {}", self.name);
        self.buf.push_back(flit);
        self.pushed += 1;
    }

    /// Records that a producer wanted to push but could not.
    pub fn note_full_stall(&mut self) {
        self.full_stalls += 1;
    }

    /// Flits of space left before the queue is full.
    #[must_use]
    pub fn space(&self) -> usize {
        self.capacity - self.buf.len()
    }

    /// Pushes a contiguous run of flits, accounting each as one push (the
    /// SoA block-queue fast path: one bounds check and one counter update
    /// per run instead of per flit).
    ///
    /// Queues deliberately track no transient occupancy peak: a windowed
    /// run deposits a whole batch before the consumer's batch drains it,
    /// so a high-water mark would be the one statistic visible to the
    /// window transformation. Every statistic a queue does keep is part of
    /// the engines' bit-identity contract.
    ///
    /// # Panics
    ///
    /// Panics when the queue is closed or the run exceeds the free space —
    /// callers size runs by [`Queue::space`] first.
    pub fn push_run(&mut self, flits: &[Flit]) {
        assert!(!self.closed, "push to closed queue {}", self.name);
        assert!(flits.len() <= self.space(), "run overflows queue {}", self.name);
        self.buf.extend(flits.iter().copied());
        self.pushed += flits.len() as u64;
    }

    /// The longest contiguous run of buffered flits starting at the head
    /// (the first segment of the ring buffer; a second call after
    /// [`Queue::pop_run`]-ing it yields the wrapped remainder).
    #[must_use]
    pub fn head_run(&self) -> &[Flit] {
        self.buf.as_slices().0
    }

    /// Drops the `n` oldest flits (consumed from a [`Queue::head_run`]
    /// slice).
    ///
    /// # Panics
    ///
    /// Panics when fewer than `n` flits are buffered.
    pub fn pop_run(&mut self, n: usize) {
        assert!(n <= self.buf.len(), "pop_run past end of queue {}", self.name);
        self.buf.drain(..n);
    }

    /// Peeks at the head flit.
    #[must_use]
    pub fn peek(&self) -> Option<&Flit> {
        self.buf.front()
    }

    /// Peeks at the `idx`-th buffered flit (0 = head). Constant-time; the
    /// block engine's multi-input run processing (Zip, queue-mode ALU)
    /// walks each input with an independent cursor because delimiter
    /// resynchronization can advance the sides unevenly.
    #[must_use]
    pub fn flit_at(&self, idx: usize) -> Option<&Flit> {
        self.buf.get(idx)
    }

    /// Pops the head flit.
    pub fn pop(&mut self) -> Option<Flit> {
        self.buf.pop_front()
    }

    /// Number of buffered flits.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no flits are buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Marks the stream complete: no further flits will arrive.
    pub fn close(&mut self) {
        self.closed = true;
    }

    /// True once the producer closed the stream.
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// True when the stream is closed *and* fully drained — the consumer's
    /// end-of-stream condition.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.closed && self.buf.is_empty()
    }

    /// Total flits ever pushed.
    #[must_use]
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Total refused pushes.
    #[must_use]
    pub fn total_full_stalls(&self) -> u64 {
        self.full_stalls
    }

}

/// All queues of a simulated system, addressed by [`QueueId`].
///
/// When touch tracking is enabled (an engine-internal
/// switch),
/// the pool records which queues have been handed out mutably since the
/// engine last drained the touch list. The event-driven engine uses
/// this as a conservative change signal: any `get_mut` (a push, pop,
/// close, or even a refused push) marks the queue touched, and parked
/// modules watching a touched queue are re-ticked. Spurious wakes are
/// harmless; missed wakes would break the engine, so the tracking errs on
/// the side of touching. Tracking is off by default so the reference
/// engine — and the event engine whenever nothing is parked — pays nothing
/// on the queue-access hot path.
#[derive(Debug, Default)]
pub struct QueuePool {
    queues: Vec<Queue>,
    /// Queue indices touched since the last drain (each at most once).
    touched: Vec<u32>,
    /// Dedup flags parallel to `queues`.
    touch_flag: Vec<bool>,
    /// Number of currently-parked modules watching each queue. Touches are
    /// only recorded for queues someone is actually waiting on, so active
    /// modules' routine queue traffic costs one predictable branch.
    watch_count: Vec<u16>,
    /// Whether `get_mut` records touches at all.
    tracking: bool,
}

impl QueuePool {
    /// Creates an empty pool.
    #[must_use]
    pub fn new() -> QueuePool {
        QueuePool::default()
    }

    /// Adds a queue with [`DEFAULT_CAPACITY`].
    pub fn add(&mut self, name: &str) -> QueueId {
        self.add_with_capacity(name, DEFAULT_CAPACITY)
    }

    /// Adds a queue with an explicit capacity.
    ///
    /// # Panics
    ///
    /// Panics when `capacity == 0`.
    pub fn add_with_capacity(&mut self, name: &str, capacity: usize) -> QueueId {
        assert!(capacity > 0, "queue capacity must be positive");
        self.queues.push(Queue::new(name, capacity));
        self.touch_flag.push(false);
        self.watch_count.push(0);
        QueueId(self.queues.len() as u32 - 1)
    }

    /// Borrows a queue.
    #[must_use]
    pub fn get(&self, id: QueueId) -> &Queue {
        &self.queues[id.index()]
    }

    /// Mutably borrows a queue, marking it touched for the event-driven
    /// engine's wake tracking when tracking is enabled.
    #[must_use]
    pub fn get_mut(&mut self, id: QueueId) -> &mut Queue {
        let i = id.index();
        if self.tracking && self.watch_count[i] != 0 && !self.touch_flag[i] {
            self.touch_flag[i] = true;
            self.touched.push(id.0);
        }
        &mut self.queues[i]
    }

    /// Registers a parked watcher on `q`: `get_mut` touches of `q` will be
    /// recorded until the matching [`QueuePool::remove_watch`].
    pub(crate) fn add_watch(&mut self, q: QueueId) {
        self.watch_count[q.index()] += 1;
    }

    /// Unregisters one parked watcher of `q`.
    pub(crate) fn remove_watch(&mut self, q: QueueId) {
        self.watch_count[q.index()] -= 1;
    }

    /// True when any touches are pending — a cheap pre-check so the engine
    /// can skip the drain on the (overwhelmingly common) quiet ticks.
    #[inline]
    pub(crate) fn has_touched(&self) -> bool {
        !self.touched.is_empty()
    }

    /// Clears all watch registrations (engine run boundaries and error
    /// exits, where parked bookkeeping is abandoned wholesale).
    pub(crate) fn clear_watches(&mut self) {
        self.watch_count.fill(0);
    }

    /// Turns touch recording on or off, discarding any pending touches.
    /// The event engine enables tracking only while at least one module is
    /// parked — with nothing parked there is nobody to wake, so the
    /// hot-path bookkeeping can be skipped entirely.
    pub(crate) fn set_touch_tracking(&mut self, on: bool) {
        if self.tracking != on {
            for &i in &self.touched {
                self.touch_flag[i as usize] = false;
            }
            self.touched.clear();
            self.tracking = on;
        }
    }

    /// Drains the indices of queues touched since the last call into
    /// `out`, clearing the tracking state.
    pub(crate) fn take_touched(&mut self, out: &mut Vec<u32>) {
        for &i in &self.touched {
            self.touch_flag[i as usize] = false;
        }
        out.append(&mut self.touched);
    }

    /// Number of queues.
    #[must_use]
    pub fn len(&self) -> usize {
        self.queues.len()
    }

    /// True when the pool has no queues.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.queues.is_empty()
    }

    /// Iterates over all queues.
    pub fn iter(&self) -> std::slice::Iter<'_, Queue> {
        self.queues.iter()
    }

    /// Splits off the queues marked in `own` into a new pool for a
    /// parallel-engine component. The returned pool has the *same* length
    /// and indexing as `self`, with unowned slots holding empty placeholder
    /// queues (so `QueueId`s stay valid inside the component); owned slots
    /// in `self` are left as placeholders until [`QueuePool::absorb`] moves
    /// them back.
    pub(crate) fn split(&mut self, own: &[bool]) -> QueuePool {
        let mut part = QueuePool::new();
        for (i, q) in self.queues.iter_mut().enumerate() {
            let moved =
                if own[i] { std::mem::replace(q, Queue::new("", 1)) } else { Queue::new("", 1) };
            part.queues.push(moved);
            part.touch_flag.push(false);
            part.watch_count.push(0);
        }
        part
    }

    /// Moves the owned queues of a split-off component pool back into this
    /// pool (inverse of [`QueuePool::split`]).
    pub(crate) fn absorb(&mut self, part: QueuePool, own: &[bool]) {
        for (i, q) in part.queues.into_iter().enumerate() {
            if own[i] {
                self.queues[i] = q;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut pool = QueuePool::new();
        let q = pool.add("q");
        pool.get_mut(q).push(Flit::val(1));
        pool.get_mut(q).push(Flit::val(2));
        assert_eq!(pool.get_mut(q).pop(), Some(Flit::val(1)));
        assert_eq!(pool.get_mut(q).pop(), Some(Flit::val(2)));
        assert_eq!(pool.get_mut(q).pop(), None);
    }

    #[test]
    fn capacity_backpressure() {
        let mut pool = QueuePool::new();
        let q = pool.add_with_capacity("q", 2);
        let queue = pool.get_mut(q);
        queue.push(Flit::val(1));
        queue.push(Flit::val(2));
        assert!(!queue.can_push());
        queue.pop();
        assert!(queue.can_push());
    }

    #[test]
    #[should_panic(expected = "full queue")]
    fn push_full_panics() {
        let mut pool = QueuePool::new();
        let q = pool.add_with_capacity("q", 1);
        pool.get_mut(q).push(Flit::val(1));
        pool.get_mut(q).push(Flit::val(2));
    }

    #[test]
    fn close_semantics() {
        let mut pool = QueuePool::new();
        let q = pool.add("q");
        pool.get_mut(q).push(Flit::val(1));
        pool.get_mut(q).close();
        assert!(pool.get(q).is_closed());
        assert!(!pool.get(q).is_finished());
        pool.get_mut(q).pop();
        assert!(pool.get(q).is_finished());
    }

    #[test]
    fn stats_count() {
        let mut pool = QueuePool::new();
        let q = pool.add("q");
        pool.get_mut(q).push(Flit::val(1));
        pool.get_mut(q).note_full_stall();
        assert_eq!(pool.get(q).total_pushed(), 1);
        assert_eq!(pool.get(q).total_full_stalls(), 1);
    }

    #[test]
    fn run_push_pop_roundtrip() {
        let mut pool = QueuePool::new();
        let q = pool.add_with_capacity("q", 8);
        let run: Vec<Flit> = (0..5).map(Flit::val).collect();
        pool.get_mut(q).push_run(&run);
        assert_eq!(pool.get(q).len(), 5);
        assert_eq!(pool.get(q).space(), 3);
        assert_eq!(pool.get(q).total_pushed(), 5);
        assert_eq!(pool.get(q).head_run(), &run[..]);
        pool.get_mut(q).pop_run(3);
        assert_eq!(pool.get(q).head_run(), &run[3..]);
        assert_eq!(pool.get_mut(q).pop(), Some(Flit::val(3)));
    }

    #[test]
    fn head_run_covers_ring_wrap() {
        let mut pool = QueuePool::new();
        let q = pool.add_with_capacity("q", 4);
        let queue = pool.get_mut(q);
        queue.push_run(&[Flit::val(0), Flit::val(1), Flit::val(2), Flit::val(3)]);
        queue.pop_run(3);
        queue.push_run(&[Flit::val(4), Flit::val(5)]);
        // The buffer may wrap: consuming head runs twice must see all flits.
        let mut seen = Vec::new();
        while !queue.is_empty() {
            let run = queue.head_run().to_vec();
            assert!(!run.is_empty());
            seen.extend(run.iter().map(|f| f.field(0).val_or_zero()));
            let n = run.len();
            queue.pop_run(n);
        }
        assert_eq!(seen, vec![3, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn push_run_overflow_panics() {
        let mut pool = QueuePool::new();
        let q = pool.add_with_capacity("q", 2);
        pool.get_mut(q).push_run(&[Flit::val(0); 3]);
    }

    #[test]
    fn per_queue_stats_survive_push_pop() {
        let mut pool = QueuePool::new();
        let q = pool.add("q");
        pool.get_mut(q).push(Flit::val(1));
        pool.get_mut(q).push(Flit::val(2));
        pool.get_mut(q).pop();
        pool.get_mut(q).push(Flit::val(3));
        assert_eq!(pool.get(q).total_pushed(), 3);
        assert_eq!(pool.get(q).total_full_stalls(), 0);
    }
}
