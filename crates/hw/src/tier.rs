//! Tiered memory: SPM ↔ device DRAM ↔ host DRAM paging for scratchpads.
//!
//! Genesis pipelines historically required every scratchpad to fit the
//! modeled on-chip SPM budget, capping partition sizes. This module lifts
//! that limit the way Bancroft-style accelerators do: scratchpads that
//! exceed the on-chip quota are *paged*, with page-granular spill/fill
//! between three tiers — resident SPM, device DRAM, and host DRAM behind a
//! PCIe link model with its own latency, bandwidth, and inflight cap.
//!
//! The model is **timing-only**: [`crate::Spm`] always holds the full
//! contents, so results are bit-identical with tiering on or off. What the
//! tier layer adds is *when* an access may proceed. A module touching a
//! non-resident page parks on a timed wake
//! ([`crate::modules::Watch::Spill`]) until the fill completes, and those
//! cycles land in the `stall:spill` bucket.
//!
//! # Determinism across engines
//!
//! The reference engine ignores parks and re-ticks waiting modules every
//! cycle, so every state transition here must be driven only by the
//! *initiating* tick, never by re-ticks:
//!
//! - While any page a module needs is in flight, [`TierState::access`]
//!   takes a pure pre-scan path that returns the pending ready time
//!   without mutating anything.
//! - Pages a waiting module needs are pinned (`pin_until`) for the whole
//!   wait so a concurrent module cannot evict them mid-wait, which would
//!   otherwise make re-ticks re-initiate fills.
//! - Residency ("settled") is judged by `ready_at <= cycle`, not by when
//!   bookkeeping happened, so lazily normalizing `Inflight → Resident`
//!   entries is semantically invisible.

use std::collections::VecDeque;

use crate::spm::{SpmId, SpmPool};

/// Cycle-level tier parameters (the core crate converts physical units —
/// GiB/s, ns — into these using the device clock).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierParams {
    /// Spill/fill granularity in bytes.
    pub page_bytes: u64,
    /// On-chip SPM budget in bytes. Scratchpads that fit (greedily, in
    /// creation order) are pinned and never pay tier costs; the rest are
    /// paged with at least one resident page each.
    pub spm_bytes: u64,
    /// Device-DRAM spill capacity in bytes (evicted pages land here first;
    /// overflow demotes the oldest DRAM page to host over PCIe).
    pub dram_bytes: u64,
    /// Host-DRAM capacity in bytes; `0` means unbounded (no total-capacity
    /// error possible).
    pub host_bytes: u64,
    /// PCIe transfer latency in cycles (host ↔ device DRAM).
    pub pcie_lat_cycles: u64,
    /// PCIe bandwidth in bytes per cycle (min 1).
    pub pcie_bytes_per_cycle: u64,
    /// Device-DRAM access latency in cycles (DRAM ↔ SPM).
    pub dram_lat_cycles: u64,
    /// Device-DRAM bandwidth in bytes per cycle (min 1).
    pub dram_bytes_per_cycle: u64,
    /// Maximum outstanding page transfers (prefetches are dropped at the
    /// cap; demand fills instead wait for a slot).
    pub max_inflight: usize,
}

impl Default for TierParams {
    /// PCIe-3-ish defaults at the paper's 250 MHz fabric clock: 4 KiB
    /// pages, 4 MiB SPM, 1 GiB device DRAM, unbounded host, 8 GiB/s PCIe
    /// at 800 ns, DRAM at 100 cycles.
    fn default() -> TierParams {
        TierParams {
            page_bytes: 4096,
            spm_bytes: 4 << 20,
            dram_bytes: 1 << 30,
            host_bytes: 0,
            pcie_lat_cycles: 200,
            pcie_bytes_per_cycle: 32,
            dram_lat_cycles: 100,
            dram_bytes_per_cycle: 64,
            max_inflight: 8,
        }
    }
}

impl TierParams {
    /// Upper bound on how long one module can wait on the tier layer
    /// without the simulation making signature progress (used to extend
    /// the engines' deadlock window).
    #[must_use]
    pub fn worst_case_wait_cycles(&self) -> u64 {
        let page = self.page_bytes.max(1);
        let per_op = self.pcie_lat_cycles
            + self.dram_lat_cycles
            + 2 * page.div_ceil(self.pcie_bytes_per_cycle.max(1))
            + 2 * page.div_ceil(self.dram_bytes_per_cycle.max(1));
        (self.max_inflight as u64 + 4) * per_op
    }
}

/// Tier activity counters (monotonic over a run).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierStats {
    /// Pages brought into SPM residency (demand fills + prefetches).
    pub pages_filled: u64,
    /// Pages evicted out of SPM residency.
    pub pages_spilled: u64,
    /// Prefetch fills issued by the stride detector.
    pub prefetch_issued: u64,
    /// Accesses that found their page resident (or already in flight)
    /// thanks to a prefetch.
    pub prefetch_hits: u64,
    /// Bytes moved over the PCIe link (host ↔ device DRAM, both ways).
    pub pcie_bytes: u64,
    /// Bytes moved over the device-DRAM port (DRAM ↔ SPM, both ways).
    pub dram_bytes: u64,
}

impl TierStats {
    /// Component-wise accumulation (batch roll-ups).
    pub fn absorb(&mut self, other: TierStats) {
        self.pages_filled += other.pages_filled;
        self.pages_spilled += other.pages_spilled;
        self.prefetch_issued += other.prefetch_issued;
        self.prefetch_hits += other.prefetch_hits;
        self.pcie_bytes += other.pcie_bytes;
        self.dram_bytes += other.dram_bytes;
    }
}

/// A job's scratchpad working set does not fit the combined capacity of
/// all three tiers (returned by [`SpmPool::set_tiers`]; only possible when
/// `host_bytes` is bounded).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TierOverflow {
    /// Name of the scratchpad that tipped the working set over capacity.
    pub spm: String,
    /// Bytes of that scratchpad.
    pub spm_bytes: u64,
    /// Total working-set bytes across all scratchpads.
    pub need_bytes: u64,
    /// Combined capacity of SPM + device DRAM + host DRAM.
    pub capacity_bytes: u64,
}

impl std::fmt::Display for TierOverflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "working set of {} B exceeds total tier capacity of {} B \
             (scratchpad `{}` adds {} B)",
            self.need_bytes, self.capacity_bytes, self.spm, self.spm_bytes
        )
    }
}

/// Where a page currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PageLoc {
    /// Resident in SPM.
    Spm,
    /// In device DRAM.
    Dram,
    /// In host DRAM.
    Host,
    /// Transfer into SPM completes at the given cycle (the slot is already
    /// reserved against the residency budget).
    Inflight(u64),
}

#[derive(Debug, Clone, Copy)]
struct Page {
    loc: PageLoc,
    dirty: bool,
    referenced: bool,
    prefetched: bool,
    pin_until: u64,
}

impl Page {
    /// Resident for access purposes at `cycle` (time-based so that lazy
    /// bookkeeping cannot diverge between engines).
    fn settled(&self, cycle: u64) -> bool {
        match self.loc {
            PageLoc::Spm => true,
            PageLoc::Inflight(ready) => ready <= cycle,
            PageLoc::Dram | PageLoc::Host => false,
        }
    }
}

/// Paging state for one oversized scratchpad.
#[derive(Debug)]
struct PageTable {
    pages: Vec<Page>,
    /// Elements per page (from the scratchpad's packed element width).
    elems_per_page: u64,
    /// Max pages resident (including reserved in-flight slots).
    budget: usize,
    /// Pages currently resident or reserved.
    resident: usize,
    /// Clock hand for second-chance eviction.
    hand: usize,
    /// Last demand-miss page (stride detection).
    last_miss: Option<u64>,
    last_stride: i64,
}

/// Shared tier state for an [`SpmPool`] (page tables plus the two link
/// schedules). All paged scratchpads share the links, which is why the
/// block engine folds every module touching a paged scratchpad into one
/// partition component.
#[derive(Debug)]
pub(crate) struct TierState {
    params: TierParams,
    /// Indexed by raw scratchpad index; `None` for pinned scratchpads.
    tables: Vec<Option<PageTable>>,
    /// Cycle at which the PCIe link is next free.
    pcie_free_at: u64,
    /// Cycle at which the device-DRAM port is next free.
    dram_free_at: u64,
    /// Bytes of spilled pages currently held in device DRAM.
    dram_used: u64,
    /// Pages in device DRAM, oldest first (FIFO demotion to host).
    dram_fifo: VecDeque<(u32, u64)>,
    /// Outstanding transfers `(spm, page, ready_at)`; pruned lazily on
    /// mutating ticks. Liveness is judged by `ready_at > cycle`.
    inflight: Vec<(u32, u64, u64)>,
    stats: TierStats,
    /// Monotonic count of page movements (progress-signature term).
    ops: u64,
}

impl TierState {
    fn page_of(&self, spm: usize, idx: u64) -> Option<u64> {
        let table = self.tables.get(spm)?.as_ref()?;
        let page = idx / table.elems_per_page;
        // Out-of-range accesses read 0 / drop writes upstream; no paging.
        (page < table.pages.len() as u64).then_some(page)
    }

    fn table(&mut self, spm: usize) -> &mut PageTable {
        self.tables[spm].as_mut().expect("paged scratchpad")
    }

    /// Count of transfers still in flight at `cycle` (time-based).
    fn live_inflight(&self, cycle: u64) -> usize {
        self.inflight.iter().filter(|&&(_, _, ready)| ready > cycle).count()
    }

    /// Earliest completion among transfers still in flight at `cycle`.
    fn earliest_inflight(&self, cycle: u64) -> Option<u64> {
        self.inflight
            .iter()
            .filter(|&&(_, _, ready)| ready > cycle)
            .map(|&(_, _, ready)| ready)
            .min()
    }

    /// Schedules a page transfer into SPM and returns its completion
    /// cycle. The residency slot must already be accounted by the caller.
    fn schedule_fill(&mut self, spm: usize, page: u64, cycle: u64, prefetched: bool) -> u64 {
        let bytes = self.params.page_bytes;
        let from_host = {
            let t = self.tables[spm].as_ref().expect("paged scratchpad");
            t.pages[page as usize].loc == PageLoc::Host
        };
        let (lat, bpc) = if from_host {
            (self.params.pcie_lat_cycles, self.params.pcie_bytes_per_cycle.max(1))
        } else {
            (self.params.dram_lat_cycles, self.params.dram_bytes_per_cycle.max(1))
        };
        let free_at = if from_host { &mut self.pcie_free_at } else { &mut self.dram_free_at };
        let start = cycle.max(*free_at);
        let transfer = bytes.div_ceil(bpc);
        *free_at = start + transfer;
        let ready = start + lat + transfer;
        if from_host {
            self.stats.pcie_bytes += bytes;
        } else {
            self.stats.dram_bytes += bytes;
            self.dram_used = self.dram_used.saturating_sub(bytes);
            if let Some(at) = self.dram_fifo.iter().position(|&e| e == (spm as u32, page)) {
                self.dram_fifo.remove(at);
            }
        }
        let p = &mut self.table(spm).pages[page as usize];
        p.loc = PageLoc::Inflight(ready);
        p.prefetched = prefetched;
        p.referenced = false;
        self.inflight.push((spm as u32, page, ready));
        self.stats.pages_filled += 1;
        if prefetched {
            self.stats.prefetch_issued += 1;
        }
        self.ops += 1;
        ready
    }

    /// Evicts `page` from SPM residency into device DRAM (demoting the
    /// oldest DRAM page to host when DRAM is full). Accounts write-back
    /// traffic for dirty pages.
    fn evict(&mut self, spm: usize, page: u64, cycle: u64) {
        let bytes = self.params.page_bytes;
        let dirty = {
            let p = &mut self.table(spm).pages[page as usize];
            let was = p.dirty;
            p.loc = PageLoc::Dram;
            p.dirty = false;
            p.referenced = false;
            p.prefetched = false;
            was
        };
        if dirty {
            // Dirty write-back occupies the DRAM port ahead of any fill.
            let start = cycle.max(self.dram_free_at);
            self.dram_free_at = start + bytes.div_ceil(self.params.dram_bytes_per_cycle.max(1));
            self.stats.dram_bytes += bytes;
        }
        self.table(spm).resident -= 1;
        self.dram_used += bytes;
        self.dram_fifo.push_back((spm as u32, page));
        self.stats.pages_spilled += 1;
        self.ops += 1;
        // Demote the oldest DRAM pages to host when over capacity.
        while self.dram_used > self.params.dram_bytes {
            let Some((s, p)) = self.dram_fifo.pop_front() else { break };
            let start = cycle.max(self.pcie_free_at);
            self.pcie_free_at = start + bytes.div_ceil(self.params.pcie_bytes_per_cycle.max(1));
            self.stats.pcie_bytes += bytes;
            self.dram_used -= bytes;
            self.table(s as usize).pages[p as usize].loc = PageLoc::Host;
            self.ops += 1;
        }
    }

    /// Second-chance (clock) victim selection among settled, unpinned
    /// pages of `spm`. Returns `None` when every candidate is pinned.
    fn pick_victim(&mut self, spm: usize, cycle: u64) -> Option<u64> {
        let t = self.tables[spm].as_mut().expect("paged scratchpad");
        let n = t.pages.len();
        for _ in 0..2 * n {
            let i = t.hand;
            t.hand = (t.hand + 1) % n;
            let p = &mut t.pages[i];
            if !p.settled(cycle) || p.pin_until > cycle {
                continue;
            }
            if p.referenced {
                p.referenced = false;
                continue;
            }
            return Some(i as u64);
        }
        None
    }

    /// Issues a stride prefetch for `spm` after a demand miss on `miss`,
    /// when a free residency slot and an inflight slot are available.
    fn maybe_prefetch(&mut self, spm: usize, miss: u64, cycle: u64) {
        let (stride, target) = {
            let t = self.table(spm);
            let stride = match t.last_miss {
                Some(prev) => miss as i64 - prev as i64,
                None => 0,
            };
            let established = stride != 0 && stride == t.last_stride;
            t.last_stride = stride;
            t.last_miss = Some(miss);
            if !established {
                return;
            }
            (stride, miss as i64 + stride)
        };
        let _ = stride;
        if target < 0 {
            return;
        }
        let target = target as u64;
        if self.live_inflight(cycle) >= self.params.max_inflight {
            return;
        }
        let t = self.table(spm);
        if target >= t.pages.len() as u64 || t.resident >= t.budget {
            return;
        }
        if !matches!(t.pages[target as usize].loc, PageLoc::Dram | PageLoc::Host) {
            return;
        }
        t.resident += 1;
        self.schedule_fill(spm, target, cycle, true);
    }

    /// The tier gate for one module access: all of `ids` at element `idx`.
    ///
    /// Returns `None` when every touched page is resident (marking
    /// reference/dirty bits and prefetch hits), or `Some(ready_at)` when
    /// the module must park until the given cycle. Re-invocations while a
    /// needed page is in flight are pure queries.
    fn access(&mut self, ids: &[SpmId], idx: u64, write: bool, cycle: u64) -> Option<u64> {
        // Needed (spm, page) pairs; smallvec-ish: accesses touch 1-3 SPMs.
        let mut needed: [(usize, u64); 4] = [(usize::MAX, 0); 4];
        let mut n = 0;
        for id in ids {
            let s = id.index();
            if let Some(p) = self.page_of(s, idx) {
                if n < needed.len() {
                    needed[n] = (s, p);
                    n += 1;
                }
            }
        }
        let needed = &needed[..n];
        if needed.is_empty() {
            return None;
        }

        // Pure pre-scan: while any needed page is still in flight, report
        // the latest completion without touching any state (re-ticks of a
        // parked module in the reference engine take this path).
        let mut pending = 0u64;
        for &(s, p) in needed {
            let page = self.tables[s].as_ref().expect("paged scratchpad").pages[p as usize];
            if let PageLoc::Inflight(ready) = page.loc {
                if ready > cycle {
                    pending = pending.max(ready);
                }
            }
        }
        if pending > cycle {
            return Some(pending);
        }

        let any_miss = needed.iter().any(|&(s, p)| {
            !self.tables[s].as_ref().expect("paged scratchpad").pages[p as usize].settled(cycle)
        });
        if !any_miss {
            // Success: mark bits and account prefetch hits (first touch).
            for &(s, p) in needed {
                let page = &mut self.table(s).pages[p as usize];
                if let PageLoc::Inflight(_) = page.loc {
                    page.loc = PageLoc::Spm;
                }
                page.referenced = true;
                if write {
                    page.dirty = true;
                }
                if page.prefetched {
                    page.prefetched = false;
                    self.stats.prefetch_hits += 1;
                }
            }
            self.inflight.retain(|&(_, _, ready)| ready > cycle);
            return None;
        }

        // Miss tick: provisionally pin everything this access needs so
        // victim selection (ours or a concurrent module's) cannot take it.
        for &(s, p) in needed {
            let page = &mut self.table(s).pages[p as usize];
            page.pin_until = page.pin_until.max(cycle + 1);
        }
        let mut ready_max = 0u64;
        for &(s, p) in needed {
            let settled =
                self.tables[s].as_ref().expect("paged scratchpad").pages[p as usize].settled(cycle);
            if settled {
                continue;
            }
            // Demand fills wait for an inflight slot rather than dropping.
            if self.live_inflight(cycle) >= self.params.max_inflight {
                let wait = self.earliest_inflight(cycle).unwrap_or(cycle + 1);
                ready_max = ready_max.max(wait);
                continue;
            }
            // Make room (the reserved slot counts against the budget).
            let (resident, budget) = {
                let t = self.table(s);
                (t.resident, t.budget)
            };
            if resident >= budget {
                match self.pick_victim(s, cycle) {
                    Some(victim) => self.evict(s, victim, cycle),
                    None => {
                        // Every settled page is pinned by waiting modules;
                        // retry when the earliest pin can expire.
                        let t = self.tables[s].as_ref().expect("paged scratchpad");
                        let wait = t
                            .pages
                            .iter()
                            .filter(|p| p.pin_until > cycle)
                            .map(|p| p.pin_until)
                            .min()
                            .unwrap_or(cycle + 1);
                        ready_max = ready_max.max(wait.max(cycle + 1));
                        continue;
                    }
                }
            }
            self.table(s).resident += 1;
            let ready = self.schedule_fill(s, p, cycle, false);
            ready_max = ready_max.max(ready);
            self.maybe_prefetch(s, p, cycle);
        }
        self.inflight.retain(|&(_, _, ready)| ready > cycle);
        // Extend pins to cover the whole wait.
        let until = ready_max.max(cycle + 1);
        for &(s, p) in needed {
            let page = &mut self.table(s).pages[p as usize];
            page.pin_until = page.pin_until.max(until);
        }
        Some(until)
    }
}

impl SpmPool {
    /// Enables tiered memory over this pool: scratchpads that fit the SPM
    /// quota (greedily, in creation order) stay pinned; the rest are paged
    /// with clock eviction, stride prefetch, and dirty write-back.
    ///
    /// Call after all scratchpads are added and before the run starts.
    /// Returns [`TierOverflow`] when the total working set exceeds the
    /// combined tier capacity (only when `host_bytes` is bounded).
    pub fn set_tiers(&mut self, params: TierParams) -> Result<(), TierOverflow> {
        let page_bytes = params.page_bytes.max(64);
        if params.host_bytes > 0 {
            let capacity = params.spm_bytes + params.dram_bytes + params.host_bytes;
            let mut need = 0u64;
            for spm in self.iter() {
                need += spm.byte_size() as u64;
                if need > capacity {
                    return Err(TierOverflow {
                        spm: spm.name().to_owned(),
                        spm_bytes: spm.byte_size() as u64,
                        need_bytes: self.total_bytes() as u64,
                        capacity_bytes: capacity,
                    });
                }
            }
        }
        // Greedy pinning pass, then split the leftover quota across the
        // paged scratchpads (at least one resident page each).
        let mut remaining = params.spm_bytes;
        let mut paged: Vec<usize> = Vec::new();
        for (i, spm) in self.iter().enumerate() {
            let bytes = spm.byte_size() as u64;
            if bytes <= remaining {
                remaining -= bytes;
            } else {
                paged.push(i);
            }
        }
        let mut tables: Vec<Option<PageTable>> = (0..self.len()).map(|_| None).collect();
        if !paged.is_empty() {
            let per_budget = ((remaining / page_bytes) as usize / paged.len()).max(1);
            for &i in &paged {
                let spm = self.iter().nth(i).expect("indexed scratchpad");
                let elems_per_page = ((page_bytes * 8) / spm.bits() as u64).max(1);
                let npages = (spm.len() as u64).div_ceil(elems_per_page).max(1) as usize;
                tables[i] = Some(PageTable {
                    pages: vec![
                        Page {
                            loc: PageLoc::Host,
                            dirty: false,
                            referenced: false,
                            prefetched: false,
                            pin_until: 0,
                        };
                        npages
                    ],
                    elems_per_page,
                    budget: per_budget.min(npages).max(1),
                    resident: 0,
                    hand: 0,
                    last_miss: None,
                    last_stride: 0,
                });
            }
        }
        self.tiers = Some(Box::new(TierState {
            params: TierParams { page_bytes, ..params },
            tables,
            pcie_free_at: 0,
            dram_free_at: 0,
            dram_used: 0,
            dram_fifo: VecDeque::new(),
            inflight: Vec::new(),
            stats: TierStats::default(),
            ops: 0,
        }));
        Ok(())
    }

    /// Tier gate for an access to element `idx` of each scratchpad in
    /// `ids`: `None` means proceed this cycle, `Some(ready_at)` means park
    /// on [`crate::modules::Watch::Spill`] until then. Free when tiering
    /// is disabled or every touched scratchpad is pinned.
    #[inline]
    pub fn tier_wait(&mut self, ids: &[SpmId], idx: u64, write: bool, cycle: u64) -> Option<u64> {
        let tiers = self.tiers.as_deref_mut()?;
        tiers.access(ids, idx, write, cycle)
    }

    /// Tier activity counters, when tiering is enabled.
    #[must_use]
    pub fn tier_stats(&self) -> Option<TierStats> {
        self.tiers.as_deref().map(|t| t.stats)
    }

    /// Monotonic page-movement count (progress-signature term; 0 when
    /// tiering is disabled).
    #[must_use]
    pub(crate) fn tier_ops(&self) -> u64 {
        self.tiers.as_deref().map_or(0, |t| t.ops)
    }

    /// Worst-case single-module tier wait (deadlock-window term).
    #[must_use]
    pub(crate) fn tier_worst_wait(&self) -> u64 {
        self.tiers.as_deref().map_or(0, |t| t.params.worst_case_wait_cycles())
    }

    /// Per-scratchpad flag: true when the scratchpad is paged (shares the
    /// tier links, so its users must co-partition).
    #[must_use]
    pub(crate) fn tiered_flags(&self) -> Vec<bool> {
        match self.tiers.as_deref() {
            Some(t) => t.tables.iter().map(Option::is_some).collect(),
            None => vec![false; self.len()],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paged_pool(len: usize, elem_bytes: usize, params: TierParams) -> (SpmPool, SpmId) {
        let mut pool = SpmPool::new();
        let id = pool.add("big", len, elem_bytes);
        pool.set_tiers(params).expect("fits");
        (pool, id)
    }

    fn tiny_params() -> TierParams {
        TierParams {
            page_bytes: 64,
            spm_bytes: 128, // two pages resident
            dram_bytes: 1 << 20,
            host_bytes: 0,
            pcie_lat_cycles: 10,
            pcie_bytes_per_cycle: 8,
            dram_lat_cycles: 4,
            dram_bytes_per_cycle: 16,
            max_inflight: 4,
        }
    }

    #[test]
    fn pinned_spm_never_waits() {
        let mut pool = SpmPool::new();
        let id = pool.add("small", 8, 8); // 64 B fits the quota
        pool.set_tiers(tiny_params()).unwrap();
        assert_eq!(pool.tier_wait(&[id], 0, false, 0), None);
        assert_eq!(pool.tier_stats().unwrap(), TierStats::default());
    }

    #[test]
    fn cold_page_waits_then_settles() {
        let (mut pool, id) = paged_pool(64, 8, tiny_params()); // 512 B, paged
        let wait = pool.tier_wait(&[id], 0, false, 0).expect("cold page must wait");
        // PCIe fill: latency 10 + 64/8 transfer = 18.
        assert_eq!(wait, 18);
        // Re-queries during the wait are pure and stable.
        let stats_before = pool.tier_stats().unwrap();
        assert_eq!(pool.tier_wait(&[id], 0, false, 5), Some(18));
        assert_eq!(pool.tier_stats().unwrap(), stats_before);
        // At the ready cycle the access proceeds.
        assert_eq!(pool.tier_wait(&[id], 0, false, 18), None);
        assert_eq!(pool.tier_stats().unwrap().pages_filled, 1);
        assert_eq!(pool.tier_stats().unwrap().pcie_bytes, 64);
    }

    #[test]
    fn eviction_spills_and_dram_refill_is_cheaper() {
        let params = tiny_params();
        let (mut pool, id) = paged_pool(64, 8, params); // 8 pages, budget 2
        let mut cycle = 0;
        // Touch pages 0,1,2 with strides that do not trigger prefetch.
        for page in [0u64, 1, 2] {
            let idx = page * 8;
            if let Some(at) = pool.tier_wait(&[id], idx, true, cycle) {
                cycle = at;
                assert_eq!(pool.tier_wait(&[id], idx, true, cycle), None);
            }
            cycle += 1;
        }
        let stats = pool.tier_stats().unwrap();
        assert_eq!(stats.pages_filled, 3);
        assert_eq!(stats.pages_spilled, 1, "third fill evicts one of two slots");
        // Dirty write-back went over the DRAM port.
        assert!(stats.dram_bytes >= 64);
        // Touch the evicted page again: it refills from DRAM (dirty
        // write-back 4 + latency 4 + 64/16 transfer = 12 cycles), not
        // from host over PCIe (latency 10 + 64/8 = 18).
        let pcie_before = pool.tier_stats().unwrap().pcie_bytes;
        let evicted_idx = 0u64; // page 0 was the clock's first victim
        let wait = pool.tier_wait(&[id], evicted_idx, false, cycle).expect("refill");
        assert!(wait - cycle <= 12, "DRAM refill should be cheap, got {}", wait - cycle);
        assert_eq!(pool.tier_stats().unwrap().pcie_bytes, pcie_before);
    }

    #[test]
    fn sequential_scan_prefetches() {
        let mut params = tiny_params();
        params.spm_bytes = 64 * 4; // four resident pages: room to prefetch
        let (mut pool, id) = paged_pool(128, 8, params); // 16 pages
        let mut cycle = 0;
        for idx in 0..128u64 {
            while let Some(at) = pool.tier_wait(&[id], idx, false, cycle) {
                cycle = at;
            }
            cycle += 1;
        }
        let stats = pool.tier_stats().unwrap();
        assert!(stats.prefetch_issued > 0, "sequential scan must prefetch: {stats:?}");
        assert!(stats.prefetch_hits > 0, "prefetched pages must be hit: {stats:?}");
    }

    #[test]
    fn multi_spm_access_waits_for_all() {
        let params = tiny_params();
        let mut pool = SpmPool::new();
        let a = pool.add("a", 64, 8);
        let b = pool.add("b", 64, 8);
        pool.set_tiers(params).unwrap();
        let wait = pool.tier_wait(&[a, b], 0, false, 0).expect("both cold");
        // Two serialized PCIe fills: second starts when the link frees.
        assert!(wait > 18, "serialized link: {wait}");
        assert_eq!(pool.tier_wait(&[a, b], 0, false, wait), None);
        assert_eq!(pool.tier_stats().unwrap().pages_filled, 2);
    }

    #[test]
    fn overflow_names_the_spm() {
        let mut params = tiny_params();
        params.dram_bytes = 64;
        params.host_bytes = 64;
        let mut pool = SpmPool::new();
        pool.add("fits", 8, 8);
        pool.add("huge", 1024, 8);
        let err = pool.set_tiers(params).unwrap_err();
        assert_eq!(err.spm, "huge");
        assert_eq!(err.spm_bytes, 8192);
        assert_eq!(err.capacity_bytes, 128 + 64 + 64);
        assert!(err.to_string().contains("huge"));
    }

    #[test]
    fn worst_case_wait_is_finite_and_generous() {
        let p = TierParams::default();
        assert!(p.worst_case_wait_cycles() > p.pcie_lat_cycles);
    }
}
