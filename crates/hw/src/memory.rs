//! Channelized device-memory model with the arbiter tree of Figure 8.
//!
//! Memory readers/writers access device memory at a 64 B line granularity.
//! Requests pass a *local arbiter* (one per pipeline) and a *global
//! arbiter* per memory channel (paper Figure 8); each enforces a per-cycle
//! request limit, so over-replicated pipeline configurations saturate —
//! the effect behind the paper's "performance limit where an accelerator
//! can no longer get more speedup from parallelism" (§V-A).

use std::collections::VecDeque;

/// Memory line size in bytes (the paper's access granularity example).
pub const LINE_BYTES: usize = 64;

/// A 64-byte memory line.
pub type Line = [u8; LINE_BYTES];

/// SplitMix64 finalizer: a stateless 64-bit mixer. Fault decisions hash
/// deterministic indices (request ordinal, batch index, attempt) through
/// this, so injected faults replay exactly under a fixed seed regardless
/// of host thread scheduling.
#[must_use]
pub fn mix64(z: u64) -> u64 {
    let z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    let z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic read-latency fault injection: a seeded fraction of
/// accepted line reads takes `extra_cycles` longer than the configured
/// latency, modeling refresh collisions or row-buffer thrash. The decision
/// for the *n*-th accepted read is a pure function of `(seed, n)`, so the
/// same schedule replays under both simulation engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyFaults {
    /// Probability, in parts per million, that an accepted read spikes.
    pub spike_ppm: u32,
    /// Extra cycles a spiked read takes on top of `latency_cycles`.
    pub extra_cycles: u64,
    /// Seed of the per-request fault stream.
    pub seed: u64,
}

impl LatencyFaults {
    fn spikes(&self, ordinal: u64) -> bool {
        mix64(self.seed ^ ordinal.wrapping_mul(0x9E37_79B9_7F4A_7C15)) % 1_000_000
            < u64::from(self.spike_ppm)
    }
}

/// Configuration of the device memory system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryConfig {
    /// Number of memory channels (AWS F1: 4 DDR4 channels).
    pub num_channels: usize,
    /// Read/write latency in cycles.
    pub latency_cycles: u64,
    /// Line requests each channel can accept per cycle.
    pub channel_requests_per_cycle: u32,
    /// Line requests each local (per-pipeline) arbiter forwards per cycle.
    pub local_requests_per_cycle: u32,
    /// Maximum outstanding requests per port (the reader prefetch depth).
    pub max_inflight_per_port: usize,
    /// Optional injected latency-spike model (`None` = no faults).
    pub faults: Option<LatencyFaults>,
}

impl Default for MemoryConfig {
    /// AWS F1-like defaults: 4 channels, 100-cycle latency, one line per
    /// channel per cycle (≈64 GB/s aggregate at 250 MHz), 2 requests per
    /// local arbiter per cycle, 8 outstanding lines per port.
    fn default() -> MemoryConfig {
        MemoryConfig {
            num_channels: 4,
            latency_cycles: 100,
            channel_requests_per_cycle: 1,
            local_requests_per_cycle: 2,
            max_inflight_per_port: 8,
            faults: None,
        }
    }
}

impl MemoryConfig {
    /// The worst-case latency a single read can observe under the active
    /// fault model. Deadlock detection windows scale with this rather than
    /// the nominal latency, so injected spikes are not misread as hangs.
    #[must_use]
    pub fn worst_case_latency_cycles(&self) -> u64 {
        self.latency_cycles
            + self.faults.filter(|f| f.spike_ppm > 0).map_or(0, |f| f.extra_cycles)
    }
}

/// Identifier of a memory port (one per memory reader/writer module).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PortId(u32);

/// Aggregate memory traffic statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Lines read by the device.
    pub read_lines: u64,
    /// Lines written by the device.
    pub write_lines: u64,
    /// Requests refused by channel arbitration.
    pub channel_stalls: u64,
    /// Requests refused by local arbitration.
    pub local_stalls: u64,
    /// Reads that suffered an injected latency spike.
    pub latency_spikes: u64,
}

impl MemStats {
    /// Bytes read by the device.
    #[must_use]
    pub fn read_bytes(&self) -> u64 {
        self.read_lines * LINE_BYTES as u64
    }

    /// Bytes written by the device.
    #[must_use]
    pub fn write_bytes(&self) -> u64 {
        self.write_lines * LINE_BYTES as u64
    }
}

#[derive(Debug)]
struct Port {
    group: u32,
    inflight: usize,
    responses: VecDeque<(u64, u64)>, // (ready_cycle, line_addr)
}

/// The device memory: backing store, channels, arbiters, and statistics.
#[derive(Debug)]
pub struct MemorySystem {
    cfg: MemoryConfig,
    data: Vec<u8>,
    cycle: u64,
    ports: Vec<Port>,
    channel_used: Vec<u32>,
    group_used: Vec<u32>,
    stats: MemStats,
    /// Ordinal of the next accepted read, the index into the deterministic
    /// fault stream. Reads are accepted in the same order under both
    /// engines, so spike placement is engine-independent.
    issued_reads: u64,
}

impl MemorySystem {
    /// Creates a memory system.
    #[must_use]
    pub fn new(cfg: MemoryConfig) -> MemorySystem {
        let channels = cfg.num_channels;
        MemorySystem {
            cfg,
            data: Vec::new(),
            cycle: 0,
            ports: Vec::new(),
            channel_used: vec![0; channels],
            group_used: Vec::new(),
            stats: MemStats::default(),
            issued_reads: 0,
        }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &MemoryConfig {
        &self.cfg
    }

    /// Allocates `len` bytes of zeroed device memory, 64 B aligned.
    /// Returns the base address.
    pub fn alloc(&mut self, len: usize) -> u64 {
        let addr = self.data.len() as u64;
        let padded = len.div_ceil(LINE_BYTES) * LINE_BYTES;
        self.data.resize(self.data.len() + padded, 0);
        addr
    }

    /// Host-side fill (models the DMA copy in `configure_mem`; traffic is
    /// accounted by the host DMA model, not here).
    ///
    /// # Panics
    ///
    /// Panics when the range is unallocated.
    pub fn host_write(&mut self, addr: u64, bytes: &[u8]) {
        let start = addr as usize;
        self.data[start..start + bytes.len()].copy_from_slice(bytes);
    }

    /// Host-side readback (models `genesis_flush`).
    ///
    /// # Panics
    ///
    /// Panics when the range is unallocated.
    #[must_use]
    pub fn host_read(&self, addr: u64, len: usize) -> Vec<u8> {
        let start = addr as usize;
        self.data[start..start + len].to_vec()
    }

    /// Registers a port belonging to local-arbiter group `group`
    /// (one group per pipeline in Figure 8).
    pub fn register_port(&mut self, group: u32) -> PortId {
        if group as usize >= self.group_used.len() {
            self.group_used.resize(group as usize + 1, 0);
        }
        self.ports.push(Port { group, inflight: 0, responses: VecDeque::new() });
        PortId(self.ports.len() as u32 - 1)
    }

    /// Starts a new cycle: resets per-cycle arbitration counters.
    pub fn begin_cycle(&mut self, cycle: u64) {
        self.cycle = cycle;
        self.channel_used.fill(0);
        self.group_used.fill(0);
    }

    fn channel_of(&self, line_addr: u64) -> usize {
        ((line_addr / LINE_BYTES as u64) % self.cfg.num_channels as u64) as usize
    }

    fn arbitrate(&mut self, port: PortId) -> bool {
        let group = self.ports[port.0 as usize].group as usize;
        if self.group_used[group] >= self.cfg.local_requests_per_cycle {
            self.stats.local_stalls += 1;
            return false;
        }
        true
    }

    /// Attempts to issue a line read. Returns `false` (and counts a stall)
    /// when arbitration or the port's in-flight limit refuses the request.
    pub fn try_read(&mut self, port: PortId, line_addr: u64) -> bool {
        debug_assert_eq!(line_addr % LINE_BYTES as u64, 0, "unaligned line read");
        if self.ports[port.0 as usize].inflight >= self.cfg.max_inflight_per_port {
            return false;
        }
        if !self.arbitrate(port) {
            return false;
        }
        let chan = self.channel_of(line_addr);
        if self.channel_used[chan] >= self.cfg.channel_requests_per_cycle {
            self.stats.channel_stalls += 1;
            return false;
        }
        let group = self.ports[port.0 as usize].group as usize;
        self.group_used[group] += 1;
        self.channel_used[chan] += 1;
        self.stats.read_lines += 1;
        let mut latency = self.cfg.latency_cycles;
        if let Some(faults) = self.cfg.faults {
            if faults.spike_ppm > 0 && faults.spikes(self.issued_reads) {
                latency += faults.extra_cycles;
                self.stats.latency_spikes += 1;
            }
        }
        self.issued_reads += 1;
        let ready = self.cycle + latency;
        let p = &mut self.ports[port.0 as usize];
        p.inflight += 1;
        p.responses.push_back((ready, line_addr));
        true
    }

    /// True when `port` is at its outstanding-request limit, so the next
    /// [`MemorySystem::try_read`] would be refused *without* counting an
    /// arbitration stall. The event-driven engine uses this to tell silent
    /// refusals apart from stall-counting ones.
    #[must_use]
    pub fn inflight_full(&self, port: PortId) -> bool {
        self.ports[port.0 as usize].inflight >= self.cfg.max_inflight_per_port
    }

    /// Cycle at which the oldest outstanding response for `port` becomes
    /// deliverable, when one exists (the event-driven engine's timed
    /// wake-up for a reader blocked on memory latency).
    #[must_use]
    pub fn next_response_ready(&self, port: PortId) -> Option<u64> {
        self.ports[port.0 as usize].responses.front().map(|&(ready, _)| ready)
    }

    /// Delivers the oldest completed read response for `port`, copying the
    /// line out of the backing store.
    pub fn poll_response(&mut self, port: PortId) -> Option<(u64, Line)> {
        let p = &mut self.ports[port.0 as usize];
        match p.responses.front() {
            Some(&(ready, addr)) if ready <= self.cycle => {
                p.responses.pop_front();
                p.inflight -= 1;
                let start = addr as usize;
                let mut line = [0u8; LINE_BYTES];
                line.copy_from_slice(&self.data[start..start + LINE_BYTES]);
                Some((addr, line))
            }
            _ => None,
        }
    }

    /// Attempts to write `bytes` at `addr` (must fit within one line).
    /// Data is applied immediately; bandwidth and arbitration are modeled
    /// like reads.
    ///
    /// # Panics
    ///
    /// Panics when the write crosses a line boundary or is unallocated.
    pub fn try_write(&mut self, port: PortId, addr: u64, bytes: &[u8]) -> bool {
        assert!(
            (addr % LINE_BYTES as u64) as usize + bytes.len() <= LINE_BYTES,
            "write crosses line boundary"
        );
        if !self.arbitrate(port) {
            return false;
        }
        let chan = self.channel_of(addr - addr % LINE_BYTES as u64);
        if self.channel_used[chan] >= self.cfg.channel_requests_per_cycle {
            self.stats.channel_stalls += 1;
            return false;
        }
        let group = self.ports[port.0 as usize].group as usize;
        self.group_used[group] += 1;
        self.channel_used[chan] += 1;
        self.stats.write_lines += 1;
        let start = addr as usize;
        self.data[start..start + bytes.len()].copy_from_slice(bytes);
        true
    }

    /// Traffic statistics so far.
    #[must_use]
    pub fn stats(&self) -> MemStats {
        self.stats
    }

    /// Total allocated device memory in bytes.
    #[must_use]
    pub fn allocated_bytes(&self) -> usize {
        self.data.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> MemorySystem {
        MemorySystem::new(MemoryConfig { latency_cycles: 3, ..MemoryConfig::default() })
    }

    #[test]
    fn alloc_is_line_aligned() {
        let mut m = mem();
        let a = m.alloc(10);
        let b = m.alloc(100);
        assert_eq!(a % 64, 0);
        assert_eq!(b % 64, 0);
        assert_eq!(b, 64);
    }

    #[test]
    fn read_after_latency() {
        let mut m = mem();
        let a = m.alloc(64);
        m.host_write(a, &[7u8; 64]);
        let p = m.register_port(0);
        m.begin_cycle(0);
        assert!(m.try_read(p, a));
        assert!(m.poll_response(p).is_none());
        m.begin_cycle(3);
        let (addr, line) = m.poll_response(p).unwrap();
        assert_eq!(addr, a);
        assert_eq!(line[0], 7);
    }

    #[test]
    fn channel_arbitration_limits_per_cycle() {
        let mut m = mem();
        let a = m.alloc(64 * 16);
        let p0 = m.register_port(0);
        let p1 = m.register_port(1);
        m.begin_cycle(0);
        // Same channel (addresses 0 and 4*64 both map to channel 0).
        assert!(m.try_read(p0, a));
        assert!(!m.try_read(p1, a + 4 * 64));
        // Different channel is still free.
        assert!(m.try_read(p1, a + 64));
        assert!(m.stats().channel_stalls >= 1);
    }

    #[test]
    fn local_arbitration_limits_group() {
        let mut m = mem();
        let a = m.alloc(64 * 16);
        let p0 = m.register_port(0);
        let p1 = m.register_port(0);
        let p2 = m.register_port(0);
        m.begin_cycle(0);
        assert!(m.try_read(p0, a));
        assert!(m.try_read(p1, a + 64));
        // Third request from the same local arbiter group this cycle.
        assert!(!m.try_read(p2, a + 2 * 64));
        assert_eq!(m.stats().local_stalls, 1);
    }

    #[test]
    fn inflight_limit() {
        let mut m = MemorySystem::new(MemoryConfig {
            max_inflight_per_port: 2,
            latency_cycles: 100,
            local_requests_per_cycle: 8,
            ..MemoryConfig::default()
        });
        let a = m.alloc(64 * 8);
        let p = m.register_port(0);
        m.begin_cycle(0);
        assert!(m.try_read(p, a));
        m.begin_cycle(1);
        assert!(m.try_read(p, a + 64));
        m.begin_cycle(2);
        assert!(!m.try_read(p, a + 128));
    }

    #[test]
    fn write_applies_and_counts() {
        let mut m = mem();
        let a = m.alloc(64);
        let p = m.register_port(0);
        m.begin_cycle(0);
        assert!(m.try_write(p, a + 8, &[1, 2, 3]));
        assert_eq!(m.host_read(a + 8, 3), vec![1, 2, 3]);
        assert_eq!(m.stats().write_lines, 1);
        assert_eq!(m.stats().write_bytes(), 64);
    }

    #[test]
    fn latency_spikes_are_deterministic_and_counted() {
        let cfg = MemoryConfig {
            latency_cycles: 3,
            max_inflight_per_port: 64,
            local_requests_per_cycle: 8,
            faults: Some(LatencyFaults { spike_ppm: 500_000, extra_cycles: 40, seed: 9 }),
            ..MemoryConfig::default()
        };
        assert_eq!(cfg.worst_case_latency_cycles(), 43);
        let run = |cfg: &MemoryConfig| {
            let mut m = MemorySystem::new(cfg.clone());
            let a = m.alloc(64 * 64);
            let p = m.register_port(0);
            for i in 0..32u64 {
                m.begin_cycle(i);
                assert!(m.try_read(p, a + i * 64));
            }
            m.stats().latency_spikes
        };
        let spikes = run(&cfg);
        assert!(spikes > 0 && spikes < 32, "~half should spike, got {spikes}");
        assert_eq!(spikes, run(&cfg), "same seed must replay the same schedule");
        let quiet = MemoryConfig { faults: None, ..cfg };
        assert_eq!(run(&quiet), 0);
        assert_eq!(quiet.worst_case_latency_cycles(), 3);
    }

    #[test]
    fn responses_are_fifo_per_port() {
        let mut m = mem();
        let a = m.alloc(64 * 4);
        m.host_write(a, &[1u8; 64]);
        m.host_write(a + 64, &[2u8; 64]);
        let p = m.register_port(0);
        m.begin_cycle(0);
        assert!(m.try_read(p, a));
        m.begin_cycle(1);
        assert!(m.try_read(p, a + 64));
        m.begin_cycle(10);
        assert_eq!(m.poll_response(p).unwrap().0, a);
        assert_eq!(m.poll_response(p).unwrap().0, a + 64);
        assert!(m.poll_response(p).is_none());
    }
}
