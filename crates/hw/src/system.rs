//! Pipeline wiring and the per-cycle simulation engine.

use crate::engine::{partition_modules, run_parallel, EngineCore, EngineParts, ModuleSlot};
use crate::memory::{MemStats, MemoryConfig, MemorySystem, PortId};
use crate::modules::{Ctx, Module, ModuleKind};
use crate::queue::{QueueId, QueuePool};
use crate::resource::{
    module_cost, pipeline_overhead, queue_bram, ResourceReport, ResourceUsage,
};
use crate::spm::{SpmId, SpmPool};
use crate::word::HwWord;
use genesis_obs::{
    ModuleStall, StallCounters, StallReport, TraceBuffer, TraceConfig,
};
use std::fmt;

/// Which simulation engine [`System::run`] uses.
///
/// All three engines produce bit-identical results — cycle counts, stall
/// counters, memory traffic, scratchpad contents, and module outputs all
/// match. The block engine is the default; the others exist as semantic
/// baselines for differential testing and debugging.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineMode {
    /// Compiled block-step engine: the event engine's parking plus enum
    /// (devirtualized) module dispatch, batched *windows* executed over
    /// contiguous queue storage, and optional graph-partitioned
    /// multi-threading (see [`System::set_sim_threads`]).
    #[default]
    Block,
    /// Quiescence-aware engine: modules whose [`crate::modules::Tick`]
    /// reports that no progress is possible are parked and re-ticked only
    /// when a watched queue changes or a timed wake (memory latency)
    /// arrives. Cycles on which every live module is parked are skipped
    /// in closed form.
    EventDriven,
    /// The naive engine: every unfinished module ticks every cycle.
    Reference,
}

/// Handle for a module registered in a [`System`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ModuleId(usize);

/// Simulation error.
#[derive(Debug, Clone)]
pub enum SimError {
    /// No forward progress for an implausibly long window: a wiring bug
    /// (e.g. a queue nobody drains) rather than a performance artifact.
    Deadlock {
        /// Cycle at which the deadlock was declared.
        cycle: u64,
        /// Labels of modules that had not finished.
        stuck: Vec<String>,
        /// Per-module stall attribution at the point of the deadlock, for
        /// diagnosing *why* the stuck modules stopped (input starvation vs
        /// backpressure vs memory wait). Diagnostic only — excluded from
        /// equality so the two engines' error outcomes still compare equal
        /// (the reference engine attributes all cycles as active).
        report: Box<StallReport>,
    },
    /// The cycle budget was exhausted before the pipeline drained.
    CycleLimit {
        /// The exhausted budget.
        limit: u64,
    },
}

impl PartialEq for SimError {
    fn eq(&self, other: &SimError) -> bool {
        match (self, other) {
            (
                SimError::Deadlock { cycle: a, stuck: b, report: _ },
                SimError::Deadlock { cycle: c, stuck: d, report: _ },
            ) => a == c && b == d,
            (SimError::CycleLimit { limit: a }, SimError::CycleLimit { limit: b }) => a == b,
            _ => false,
        }
    }
}

impl Eq for SimError {}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock { cycle, stuck, report } => {
                write!(f, "simulation deadlocked at cycle {cycle}; stuck modules: {stuck:?}")?;
                // Name the module that spent the most cycles not making
                // progress — usually the head of the blocked chain.
                let worst = report
                    .modules
                    .iter()
                    .max_by_key(|m| m.counters.total().saturating_sub(m.counters.active));
                if let Some(m) = worst.filter(|m| m.counters.total() > m.counters.active) {
                    let c = m.counters;
                    write!(
                        f,
                        "; most stalled: {} (starved {}, backpressured {}, memory {}, spill {})",
                        m.label, c.input_starved, c.backpressured, c.memory_wait, c.spill_wait
                    )?;
                }
                Ok(())
            }
            SimError::CycleLimit { limit } => {
                write!(f, "cycle limit {limit} exhausted before pipeline drained")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Results of a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimStats {
    /// Cycles until every module finished.
    pub cycles: u64,
    /// Device memory traffic.
    pub mem: MemStats,
    /// Total flits moved through all queues.
    pub total_flits: u64,
    /// Total refused pushes (backpressure events).
    pub backpressure_stalls: u64,
}

/// A complete simulated accelerator: queues, scratchpads, device memory,
/// and modules, stepped one clock cycle at a time.
///
/// Modules tick in registration order each cycle; register pipelines
/// front-to-back so data can flow through multiple modules per cycle
/// without inflating cycle counts.
#[derive(Debug)]
pub struct System {
    queues: QueuePool,
    spms: SpmPool,
    mem: MemorySystem,
    modules: Vec<Box<dyn Module>>,
    cycle: u64,
    /// Module-id ranges per pipeline (for resource accounting).
    pipeline_count: u32,
    engine: EngineMode,
    /// Per-module cumulative stall attribution (always on; updated only at
    /// park/unpark events, so it costs nothing per cycle).
    stall: Vec<StallCounters>,
    /// Opt-in span/counter tracing (None = disabled, the default).
    trace: Option<TraceState>,
    /// Worker threads for the block engine (1 = single-threaded).
    sim_threads: usize,
}

/// Tracing state while enabled: the recording buffer plus the sampling
/// cursor for queue-depth counter tracks.
#[derive(Debug)]
pub(crate) struct TraceState {
    pub(crate) buf: TraceBuffer,
    /// Last sampled depth per queue (`u64::MAX` = never sampled), so only
    /// changes are recorded.
    pub(crate) last_depth: Vec<u64>,
    /// Next cycle at which queue depths are due for a sample.
    pub(crate) next_sample: u64,
    /// Sampling stride in cycles (cached from the config).
    pub(crate) stride: u64,
}

impl Default for System {
    fn default() -> System {
        System::new()
    }
}

impl System {
    /// Creates a system with default (F1-like) memory configuration.
    #[must_use]
    pub fn new() -> System {
        System::with_memory(MemoryConfig::default())
    }

    /// Creates a system with an explicit memory configuration.
    ///
    /// The engine defaults to [`EngineMode::Block`]; the environment
    /// variable `GENESIS_ENGINE` (`block`, `event`/`event-driven`, or
    /// `reference`) selects another engine without code changes (handy
    /// for differential debugging). `GENESIS_SIM_THREADS` sets the block
    /// engine's worker-thread count (default 1).
    #[must_use]
    pub fn with_memory(cfg: MemoryConfig) -> System {
        let engine = match std::env::var("GENESIS_ENGINE") {
            Ok(v) if v.eq_ignore_ascii_case("reference") => EngineMode::Reference,
            Ok(v) if v.eq_ignore_ascii_case("event") || v.eq_ignore_ascii_case("event-driven") => {
                EngineMode::EventDriven
            }
            _ => EngineMode::Block,
        };
        let sim_threads = std::env::var("GENESIS_SIM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&t| t >= 1)
            .unwrap_or(1);
        System {
            queues: QueuePool::new(),
            spms: SpmPool::new(),
            mem: MemorySystem::new(cfg),
            modules: Vec::new(),
            cycle: 0,
            pipeline_count: 1,
            engine,
            stall: Vec::new(),
            trace: None,
            sim_threads,
        }
    }

    /// Enables (or disables, with a config whose `enabled` is false) span
    /// and queue-depth tracing for subsequent [`System::run`] calls.
    /// Replaces any previously recorded trace.
    pub fn set_trace(&mut self, cfg: TraceConfig) {
        self.trace = cfg.enabled.then(|| TraceState {
            stride: cfg.sample_stride.max(1),
            buf: TraceBuffer::new(cfg),
            last_depth: Vec::new(),
            next_sample: 0,
        });
    }

    /// The recorded trace, when tracing is enabled.
    #[must_use]
    pub fn trace(&self) -> Option<&TraceBuffer> {
        self.trace.as_ref().map(|t| &t.buf)
    }

    /// Takes the recorded trace out of the system (disabling further
    /// recording).
    pub fn take_trace(&mut self) -> Option<TraceBuffer> {
        self.trace.take().map(|t| t.buf)
    }

    /// Per-module stall attribution accumulated by [`System::run`]: each
    /// module's simulated cycles split into active / input-starved /
    /// output-backpressured / memory-wait / spill-wait, where the parked
    /// classes come from the [`crate::modules::Watch`] each park declared.
    /// The five buckets sum to [`StallReport::total_cycles`] for every
    /// module (`active` includes the tail where a finished module sits
    /// retired while the rest of the pipeline drains).
    ///
    /// Attribution is event-based (updated at park/unpark, not per cycle),
    /// so it is always on. Under [`EngineMode::Reference`] modules never
    /// park and every cycle is accounted as active.
    #[must_use]
    pub fn stall_report(&self) -> StallReport {
        StallReport {
            total_cycles: self.cycle,
            modules: self
                .modules
                .iter()
                .enumerate()
                .map(|(i, m)| ModuleStall {
                    label: m.label().to_owned(),
                    counters: self.stall.get(i).copied().unwrap_or_default(),
                })
                .collect(),
        }
    }

    /// Selects the simulation engine for subsequent [`System::run`] calls.
    pub fn set_engine(&mut self, engine: EngineMode) {
        self.engine = engine;
    }

    /// The currently selected simulation engine.
    #[must_use]
    pub fn engine(&self) -> EngineMode {
        self.engine
    }

    /// Sets the block engine's worker-thread count (clamped to at least
    /// 1). The module graph is partitioned at queue, scratchpad, and
    /// memory-channel seams into independent components; with more than
    /// one thread (and more than one component) the components run on
    /// scoped worker threads in lockstep 512-cycle segments, preserving
    /// bit-identity with the single-threaded engines. Ignored by the
    /// reference and event engines, and while tracing is enabled.
    pub fn set_sim_threads(&mut self, threads: usize) {
        self.sim_threads = threads.max(1);
    }

    /// The block engine's configured worker-thread count.
    #[must_use]
    pub fn sim_threads(&self) -> usize {
        self.sim_threads
    }

    /// Adds a queue.
    pub fn add_queue(&mut self, name: &str) -> QueueId {
        self.queues.add(name)
    }

    /// Adds a queue with explicit capacity.
    pub fn add_queue_with_capacity(&mut self, name: &str, capacity: usize) -> QueueId {
        self.queues.add_with_capacity(name, capacity)
    }

    /// Adds a scratchpad.
    pub fn add_spm(&mut self, name: &str, len: usize, elem_bytes: usize) -> SpmId {
        self.spms.add(name, len, elem_bytes)
    }

    /// Enables tiered memory over the scratchpad pool (see
    /// [`SpmPool::set_tiers`]): scratchpads that fit the SPM quota stay
    /// pinned; the rest are paged against device DRAM and host DRAM, and
    /// accesses to non-resident pages become timed `stall:spill` waits.
    /// Call after all scratchpads are added, before [`System::run`].
    ///
    /// # Errors
    ///
    /// Returns [`crate::tier::TierOverflow`] when the combined scratchpad
    /// working set exceeds the total capacity of all three tiers.
    pub fn set_tiers(
        &mut self,
        params: crate::tier::TierParams,
    ) -> Result<(), crate::tier::TierOverflow> {
        self.spms.set_tiers(params)
    }

    /// Tier activity counters (pages spilled/filled, prefetch hits, PCIe
    /// bytes), when tiering is enabled.
    #[must_use]
    pub fn tier_stats(&self) -> Option<crate::tier::TierStats> {
        self.spms.tier_stats()
    }

    /// Registers a memory port in local-arbiter group `group`.
    pub fn register_mem_port(&mut self, group: u32) -> PortId {
        self.pipeline_count = self.pipeline_count.max(group + 1);
        self.mem.register_port(group)
    }

    /// Allocates device memory.
    pub fn alloc_mem(&mut self, len: usize) -> u64 {
        self.mem.alloc(len)
    }

    /// Host-side device-memory fill (the DMA copy of `configure_mem`).
    pub fn host_write(&mut self, addr: u64, bytes: &[u8]) {
        self.mem.host_write(addr, bytes);
    }

    /// Host-side device-memory readback (`genesis_flush`).
    #[must_use]
    pub fn host_read(&self, addr: u64, len: usize) -> Vec<u8> {
        self.mem.host_read(addr, len)
    }

    /// Registers a module; tick order follows registration order.
    pub fn add_module(&mut self, module: Box<dyn Module>) -> ModuleId {
        self.modules.push(module);
        ModuleId(self.modules.len() - 1)
    }

    /// Borrows a registered module.
    #[must_use]
    pub fn module(&self, id: ModuleId) -> &dyn Module {
        self.modules[id.0].as_ref()
    }

    /// Downcasts a registered module to a concrete type.
    #[must_use]
    pub fn module_as<T: 'static>(&self, id: ModuleId) -> Option<&T> {
        self.modules[id.0].as_any().downcast_ref::<T>()
    }

    /// Convenience: the collected field-0 values of a
    /// [`crate::modules::sink::StreamSink`].
    ///
    /// # Panics
    ///
    /// Panics when `id` is not a `StreamSink`.
    #[must_use]
    pub fn sink_values(&self, id: ModuleId) -> Vec<HwWord> {
        self.module_as::<crate::modules::sink::StreamSink>(id)
            .expect("module is a StreamSink")
            .values()
    }

    /// Borrows the scratchpad pool (for result extraction).
    #[must_use]
    pub fn spms(&self) -> &SpmPool {
        &self.spms
    }

    /// Mutably borrows the scratchpad pool (host-side initialization in
    /// tests).
    #[must_use]
    pub fn spms_mut(&mut self) -> &mut SpmPool {
        &mut self.spms
    }

    /// Borrows the queue pool.
    #[must_use]
    pub fn queues(&self) -> &QueuePool {
        &self.queues
    }

    /// Advances one clock cycle.
    pub fn step(&mut self) {
        self.mem.begin_cycle(self.cycle);
        let mut ctx = Ctx {
            queues: &mut self.queues,
            spms: &mut self.spms,
            mem: &mut self.mem,
            cycle: self.cycle,
        };
        for m in &mut self.modules {
            if !m.is_done() {
                let _ = m.tick(&mut ctx);
            }
        }
        self.cycle += 1;
    }

    /// True when every registered module has finished.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.modules.iter().all(|m| m.is_done())
    }

    /// Runs until every module finishes or `max_cycles` elapse, using the
    /// engine selected by [`System::set_engine`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Deadlock`] when no observable progress happens
    /// for a long window, or [`SimError::CycleLimit`] at the budget.
    pub fn run(&mut self, max_cycles: u64) -> Result<SimStats, SimError> {
        let n = self.modules.len();
        if self.stall.len() < n {
            self.stall.resize(n, StallCounters::default());
        }
        self.init_trace_run();
        let result = match self.engine {
            EngineMode::Reference => self.run_boxed(max_cycles, false),
            EngineMode::EventDriven => self.run_boxed(max_cycles, true),
            EngineMode::Block => self.run_block(max_cycles),
        };
        // Engines construct `Deadlock` with an empty report (stall
        // accounting is only complete once the run finalizes); attach the
        // real attribution here.
        match result {
            Err(SimError::Deadlock { cycle, stuck, .. }) => Err(SimError::Deadlock {
                cycle,
                stuck,
                report: Box::new(self.stall_report()),
            }),
            other => other,
        }
    }

    /// Lends the simulation state to an [`EngineCore`] for one run.
    fn take_parts(&mut self) -> EngineParts {
        EngineParts {
            queues: std::mem::take(&mut self.queues),
            spms: std::mem::take(&mut self.spms),
            mem: std::mem::replace(&mut self.mem, MemorySystem::new(MemoryConfig::default())),
            stall: std::mem::take(&mut self.stall),
            trace: self.trace.take(),
            cycle: self.cycle,
        }
    }

    fn put_parts(&mut self, parts: EngineParts) {
        self.queues = parts.queues;
        self.spms = parts.spms;
        self.mem = parts.mem;
        self.stall = parts.stall;
        self.trace = parts.trace;
        self.cycle = parts.cycle;
    }

    /// The reference and event engines: vtable dispatch over the boxed
    /// module registry, with parking enabled only for the event engine.
    fn run_boxed(&mut self, max_cycles: u64, park: bool) -> Result<SimStats, SimError> {
        let modules = std::mem::take(&mut self.modules);
        let orig_idx = (0..modules.len()).collect();
        let parts = self.take_parts();
        let mut core = EngineCore::new(modules, orig_idx, parts, park, false);
        let result = core.drive(max_cycles);
        core.finalize_obs();
        let (modules, parts) = core.into_parts();
        self.modules = modules;
        self.put_parts(parts);
        result.map(|()| self.stats())
    }

    /// The block engine: devirtualizes modules into [`ModuleSlot`]s and,
    /// when more than one worker thread is configured and the graph
    /// splits, runs the components in parallel.
    fn run_block(&mut self, max_cycles: u64) -> Result<SimStats, SimError> {
        // Tracing records into one buffer; keep it single-threaded.
        let threads = if self.trace.is_some() { 1 } else { self.sim_threads };
        if threads > 1 && self.modules.len() > 1 {
            let comps = partition_modules(
                &self.modules,
                self.queues.len(),
                self.spms.len(),
                &self.spms.tiered_flags(),
            );
            if comps.len() > 1 {
                return self.run_block_parallel(max_cycles, threads, &comps);
            }
        }
        let boxed = std::mem::take(&mut self.modules);
        let slots: Vec<ModuleSlot> = boxed.into_iter().map(ModuleSlot::from_module).collect();
        let orig_idx = (0..slots.len()).collect();
        let parts = self.take_parts();
        let mut core = EngineCore::new(slots, orig_idx, parts, true, true);
        let result = core.drive(max_cycles);
        core.finalize_obs();
        let (slots, parts) = core.into_parts();
        self.modules = slots.into_iter().map(ModuleSlot::into_module).collect();
        self.put_parts(parts);
        result.map(|()| self.stats())
    }

    /// Runs one [`EngineCore`] per graph component on scoped worker
    /// threads (lockstep segments; see [`run_parallel`]). Each core gets
    /// the sub-pools of queues/scratchpads its component owns; the real
    /// memory system goes to the component with the memory modules (the
    /// rest get inert clones of its configuration), which preserves the
    /// global memory-request order and thus fault-injection determinism.
    fn run_block_parallel(
        &mut self,
        max_cycles: u64,
        threads: usize,
        comps: &[Vec<usize>],
    ) -> Result<SimStats, SimError> {
        let n = self.modules.len();
        let nq = self.queues.len();
        let ns = self.spms.len();
        let start = self.cycle;
        let mut q_own: Vec<Vec<bool>> = comps.iter().map(|_| vec![false; nq]).collect();
        let mut s_own: Vec<Vec<bool>> = comps.iter().map(|_| vec![false; ns]).collect();
        let mut mem_comp = 0usize;
        for (ci, comp) in comps.iter().enumerate() {
            for &mi in comp {
                let m = &self.modules[mi];
                for q in m.input_queues().into_iter().chain(m.output_queues()) {
                    q_own[ci][q.index()] = true;
                }
                for s in m.spm_ids() {
                    s_own[ci][s.index()] = true;
                }
                if matches!(m.kind(), ModuleKind::MemoryReader | ModuleKind::MemoryWriter) {
                    mem_comp = ci;
                }
            }
        }
        let boxed = std::mem::take(&mut self.modules);
        let mut slots: Vec<Option<ModuleSlot>> =
            boxed.into_iter().map(|m| Some(ModuleSlot::from_module(m))).collect();
        let mem_cfg = self.mem.config().clone();
        let mut real_mem =
            Some(std::mem::replace(&mut self.mem, MemorySystem::new(mem_cfg.clone())));
        let mut cores: Vec<EngineCore<ModuleSlot>> = Vec::with_capacity(comps.len());
        for (ci, comp) in comps.iter().enumerate() {
            let mods: Vec<ModuleSlot> =
                comp.iter().map(|&mi| slots[mi].take().expect("each module in one component")).collect();
            let parts = EngineParts {
                queues: self.queues.split(&q_own[ci]),
                spms: self.spms.split(&s_own[ci]),
                mem: if ci == mem_comp {
                    real_mem.take().expect("real memory assigned once")
                } else {
                    MemorySystem::new(mem_cfg.clone())
                },
                stall: vec![StallCounters::default(); comp.len()],
                trace: None,
                cycle: start,
            };
            cores.push(EngineCore::new(mods, comp.clone(), parts, true, true));
        }
        let result = run_parallel(&mut cores, threads, max_cycles);
        // Reassemble: every core lands on the global final cycle so stall
        // finalization matches the single-threaded engines exactly.
        let final_cycle = cores.iter().map(|c| c.cycle).max().unwrap_or(start);
        let mut restored: Vec<Option<Box<dyn Module>>> = (0..n).map(|_| None).collect();
        for (ci, core) in cores.into_iter().enumerate() {
            let mut core = core;
            core.cycle = final_cycle;
            core.finalize_obs();
            let (mods, parts) = core.into_parts();
            for (li, &orig) in comps[ci].iter().enumerate() {
                let src = &parts.stall[li];
                let dst = &mut self.stall[orig];
                dst.active += src.active;
                dst.input_starved += src.input_starved;
                dst.backpressured += src.backpressured;
                dst.memory_wait += src.memory_wait;
                dst.spill_wait += src.spill_wait;
            }
            self.queues.absorb(parts.queues, &q_own[ci]);
            self.spms.absorb(parts.spms, &s_own[ci]);
            if ci == mem_comp {
                self.mem = parts.mem;
            }
            for (slot, &orig) in mods.into_iter().zip(&comps[ci]) {
                restored[orig] = Some(slot.into_module());
            }
        }
        self.modules =
            restored.into_iter().map(|m| m.expect("every module restored")).collect();
        self.cycle = final_cycle;
        result.map(|()| self.stats())
    }

    /// Prepares the trace buffer for a run: installs the module/queue name
    /// tables and resets the sampling cursor.
    fn init_trace_run(&mut self) {
        let Some(ts) = &mut self.trace else { return };
        if ts.buf.tracks().len() != self.modules.len() {
            ts.buf.set_tracks(self.modules.iter().map(|m| m.label().to_owned()).collect());
        }
        if ts.buf.counters().len() != self.queues.len() {
            ts.buf.set_counters(self.queues.iter().map(|q| q.name().to_owned()).collect());
        }
        ts.last_depth.resize(self.queues.len(), u64::MAX);
        ts.next_sample = self.cycle;
    }

    /// Statistics for the run so far.
    #[must_use]
    pub fn stats(&self) -> SimStats {
        SimStats {
            cycles: self.cycle,
            mem: self.mem.stats(),
            total_flits: self.queues.iter().map(|q| q.total_pushed()).sum(),
            backpressure_stalls: self.queues.iter().map(|q| q.total_full_stalls()).sum(),
        }
    }

    /// Analytical FPGA resource usage of this design (paper Table IV):
    /// module logic + queue BRAM + scratchpad BRAM + per-pipeline and
    /// shell overheads.
    #[must_use]
    pub fn resource_report(&self) -> ResourceReport {
        let mut fabric = ResourceUsage::default();
        for m in &self.modules {
            fabric = fabric + module_cost(m.kind());
        }
        let queue_bytes: u64 = self.queues.iter().map(|q| queue_bram(q.capacity())).sum();
        fabric.bram_bytes += queue_bytes + self.spms.total_bytes() as u64;
        fabric = fabric + pipeline_overhead().times(u64::from(self.pipeline_count));
        ResourceReport {
            backpressure_stalls: self.queues.iter().map(|q| q.total_full_stalls()).sum(),
            total_flits: self.queues.iter().map(|q| q.total_pushed()).sum(),
            ..ResourceReport::from_fabric(fabric)
        }
    }

    /// Current cycle number.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Renders the module/queue graph in Graphviz dot format — the
    /// pipeline diagrams of paper Figures 7, 10, 11 and 12, generated
    /// from the actual wiring.
    #[must_use]
    pub fn to_dot(&self, title: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{title}\" {{");
        let _ = writeln!(out, "  rankdir=LR;");
        let _ = writeln!(out, "  node [shape=box, fontname=\"monospace\"];");
        let _ = writeln!(out, "  label=\"{title}\";");
        for (i, m) in self.modules.iter().enumerate() {
            let shape = match m.kind() {
                ModuleKind::MemoryReader | ModuleKind::MemoryWriter => "cylinder",
                ModuleKind::SpmReader | ModuleKind::SpmUpdater => "box3d",
                ModuleKind::Source | ModuleKind::Sink => "ellipse",
                _ => "box",
            };
            let _ = writeln!(
                out,
                "  m{i} [label=\"{}\\n({:?})\", shape={shape}];",
                m.label(),
                m.kind()
            );
        }
        // Queue edges: producer module -> consumer module, labeled by the
        // queue name. The queue -> consumers index is built once up front
        // instead of rescanning every module per producer queue.
        let mut consumers: Vec<Vec<usize>> = vec![Vec::new(); self.queues.len()];
        for (ci, m) in self.modules.iter().enumerate() {
            let mut qs = m.input_queues();
            qs.sort_unstable_by_key(|q| q.index());
            qs.dedup();
            for q in qs {
                consumers[q.index()].push(ci);
            }
        }
        for (pi, producer) in self.modules.iter().enumerate() {
            for q in producer.output_queues() {
                let name = self.queues.get(q).name();
                for &ci in &consumers[q.index()] {
                    let _ = writeln!(out, "  m{pi} -> m{ci} [label=\"{name}\"];");
                }
            }
        }
        out.push_str("}\n");
        out
    }

    /// Number of module kinds registered, per kind (diagnostics).
    #[must_use]
    pub fn module_census(&self) -> Vec<(ModuleKind, usize)> {
        let mut counts: Vec<(ModuleKind, usize)> = Vec::new();
        for m in &self.modules {
            if let Some(entry) = counts.iter_mut().find(|(k, _)| *k == m.kind()) {
                entry.1 += 1;
            } else {
                counts.push((m.kind(), 1));
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modules::sink::StreamSink;
    use crate::modules::source::StreamSource;

    #[test]
    fn source_to_sink_roundtrip() {
        let mut sys = System::new();
        let q = sys.add_queue("q");
        sys.add_module(Box::new(StreamSource::from_items("src", q, &[vec![1, 2], vec![3]])));
        let sink = sys.add_module(Box::new(StreamSink::new("sink", q)));
        let stats = sys.run(1000).unwrap();
        assert_eq!(
            sys.sink_values(sink),
            vec![HwWord::Val(1), HwWord::Val(2), HwWord::Val(3)]
        );
        let items = sys.module_as::<StreamSink>(sink).unwrap().items();
        assert_eq!(items.len(), 2);
        assert!(stats.cycles >= 5);
    }

    #[test]
    fn cycle_limit_detected() {
        let mut sys = System::new();
        let q = sys.add_queue("q");
        // A sink on a queue nobody ever closes never finishes.
        let _ = sys.add_module(Box::new(StreamSink::new("sink", q)));
        let err = sys.run(100).unwrap_err();
        assert_eq!(err, SimError::CycleLimit { limit: 100 });
    }

    #[test]
    fn deadlock_detected() {
        let mut sys = System::new();
        let q = sys.add_queue("q");
        let _ = sys.add_module(Box::new(StreamSink::new("sink", q)));
        let err = sys.run(u64::MAX >> 2).unwrap_err();
        assert!(matches!(err, SimError::Deadlock { .. }));
    }

    #[test]
    fn resource_report_counts_modules() {
        let mut sys = System::new();
        let q = sys.add_queue("q");
        sys.add_spm("ref", 1000, 1);
        sys.add_module(Box::new(StreamSource::from_items("src", q, &[vec![1]])));
        sys.add_module(Box::new(StreamSink::new("sink", q)));
        let report = sys.resource_report();
        // Sources/sinks are free; shell + pipeline overhead + queue + spm.
        assert!(report.total.luts >= 95_000);
        assert!(report.total.bram_bytes >= 250_000 + 1000);
        assert!(report.fits());
    }
}
