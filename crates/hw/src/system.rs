//! Pipeline wiring and the per-cycle simulation engine.

use crate::memory::{MemStats, MemoryConfig, MemorySystem, PortId};
use crate::modules::{Ctx, Module, ModuleKind};
use crate::queue::{QueueId, QueuePool};
use crate::resource::{
    module_cost, pipeline_overhead, queue_bram, ResourceReport, ResourceUsage,
};
use crate::spm::{SpmId, SpmPool};
use crate::word::HwWord;
use std::fmt;

/// Handle for a module registered in a [`System`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ModuleId(usize);

/// Simulation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// No forward progress for an implausibly long window: a wiring bug
    /// (e.g. a queue nobody drains) rather than a performance artifact.
    Deadlock {
        /// Cycle at which the deadlock was declared.
        cycle: u64,
        /// Labels of modules that had not finished.
        stuck: Vec<String>,
    },
    /// The cycle budget was exhausted before the pipeline drained.
    CycleLimit {
        /// The exhausted budget.
        limit: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock { cycle, stuck } => {
                write!(f, "simulation deadlocked at cycle {cycle}; stuck modules: {stuck:?}")
            }
            SimError::CycleLimit { limit } => {
                write!(f, "cycle limit {limit} exhausted before pipeline drained")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Results of a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimStats {
    /// Cycles until every module finished.
    pub cycles: u64,
    /// Device memory traffic.
    pub mem: MemStats,
    /// Total flits moved through all queues.
    pub total_flits: u64,
    /// Total refused pushes (backpressure events).
    pub backpressure_stalls: u64,
}

/// A complete simulated accelerator: queues, scratchpads, device memory,
/// and modules, stepped one clock cycle at a time.
///
/// Modules tick in registration order each cycle; register pipelines
/// front-to-back so data can flow through multiple modules per cycle
/// without inflating cycle counts.
#[derive(Debug)]
pub struct System {
    queues: QueuePool,
    spms: SpmPool,
    mem: MemorySystem,
    modules: Vec<Box<dyn Module>>,
    cycle: u64,
    /// Module-id ranges per pipeline (for resource accounting).
    pipeline_count: u32,
}

impl Default for System {
    fn default() -> System {
        System::new()
    }
}

impl System {
    /// Creates a system with default (F1-like) memory configuration.
    #[must_use]
    pub fn new() -> System {
        System::with_memory(MemoryConfig::default())
    }

    /// Creates a system with an explicit memory configuration.
    #[must_use]
    pub fn with_memory(cfg: MemoryConfig) -> System {
        System {
            queues: QueuePool::new(),
            spms: SpmPool::new(),
            mem: MemorySystem::new(cfg),
            modules: Vec::new(),
            cycle: 0,
            pipeline_count: 1,
        }
    }

    /// Adds a queue.
    pub fn add_queue(&mut self, name: &str) -> QueueId {
        self.queues.add(name)
    }

    /// Adds a queue with explicit capacity.
    pub fn add_queue_with_capacity(&mut self, name: &str, capacity: usize) -> QueueId {
        self.queues.add_with_capacity(name, capacity)
    }

    /// Adds a scratchpad.
    pub fn add_spm(&mut self, name: &str, len: usize, elem_bytes: usize) -> SpmId {
        self.spms.add(name, len, elem_bytes)
    }

    /// Registers a memory port in local-arbiter group `group`.
    pub fn register_mem_port(&mut self, group: u32) -> PortId {
        self.pipeline_count = self.pipeline_count.max(group + 1);
        self.mem.register_port(group)
    }

    /// Allocates device memory.
    pub fn alloc_mem(&mut self, len: usize) -> u64 {
        self.mem.alloc(len)
    }

    /// Host-side device-memory fill (the DMA copy of `configure_mem`).
    pub fn host_write(&mut self, addr: u64, bytes: &[u8]) {
        self.mem.host_write(addr, bytes);
    }

    /// Host-side device-memory readback (`genesis_flush`).
    #[must_use]
    pub fn host_read(&self, addr: u64, len: usize) -> Vec<u8> {
        self.mem.host_read(addr, len)
    }

    /// Registers a module; tick order follows registration order.
    pub fn add_module(&mut self, module: Box<dyn Module>) -> ModuleId {
        self.modules.push(module);
        ModuleId(self.modules.len() - 1)
    }

    /// Borrows a registered module.
    #[must_use]
    pub fn module(&self, id: ModuleId) -> &dyn Module {
        self.modules[id.0].as_ref()
    }

    /// Downcasts a registered module to a concrete type.
    #[must_use]
    pub fn module_as<T: 'static>(&self, id: ModuleId) -> Option<&T> {
        self.modules[id.0].as_any().downcast_ref::<T>()
    }

    /// Convenience: the collected field-0 values of a
    /// [`crate::modules::sink::StreamSink`].
    ///
    /// # Panics
    ///
    /// Panics when `id` is not a `StreamSink`.
    #[must_use]
    pub fn sink_values(&self, id: ModuleId) -> Vec<HwWord> {
        self.module_as::<crate::modules::sink::StreamSink>(id)
            .expect("module is a StreamSink")
            .values()
    }

    /// Borrows the scratchpad pool (for result extraction).
    #[must_use]
    pub fn spms(&self) -> &SpmPool {
        &self.spms
    }

    /// Mutably borrows the scratchpad pool (host-side initialization in
    /// tests).
    #[must_use]
    pub fn spms_mut(&mut self) -> &mut SpmPool {
        &mut self.spms
    }

    /// Borrows the queue pool.
    #[must_use]
    pub fn queues(&self) -> &QueuePool {
        &self.queues
    }

    /// Advances one clock cycle.
    pub fn step(&mut self) {
        self.mem.begin_cycle(self.cycle);
        let mut ctx = Ctx {
            queues: &mut self.queues,
            spms: &mut self.spms,
            mem: &mut self.mem,
            cycle: self.cycle,
        };
        for m in &mut self.modules {
            if !m.is_done() {
                m.tick(&mut ctx);
            }
        }
        self.cycle += 1;
    }

    /// True when every registered module has finished.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.modules.iter().all(|m| m.is_done())
    }

    /// Runs until every module finishes or `max_cycles` elapse.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Deadlock`] when no observable progress happens
    /// for a long window, or [`SimError::CycleLimit`] at the budget.
    pub fn run(&mut self, max_cycles: u64) -> Result<SimStats, SimError> {
        let deadlock_window = 4 * self.mem.config().latency_cycles + 10_000;
        let mut last_progress_cycle = self.cycle;
        let mut last_signature = self.progress_signature();
        while !self.is_done() {
            if self.cycle >= max_cycles {
                return Err(SimError::CycleLimit { limit: max_cycles });
            }
            self.step();
            // Progress checks are amortized.
            if self.cycle.is_multiple_of(512) {
                let sig = self.progress_signature();
                if sig != last_signature {
                    last_signature = sig;
                    last_progress_cycle = self.cycle;
                } else if self.cycle - last_progress_cycle > deadlock_window {
                    let stuck = self
                        .modules
                        .iter()
                        .filter(|m| !m.is_done())
                        .map(|m| m.label().to_owned())
                        .collect();
                    return Err(SimError::Deadlock { cycle: self.cycle, stuck });
                }
            }
        }
        Ok(self.stats())
    }

    fn progress_signature(&self) -> (u64, u64, usize) {
        let pushed: u64 = self.queues.iter().map(|q| q.total_pushed()).sum();
        let mem = self.mem.stats();
        let done = self.modules.iter().filter(|m| m.is_done()).count();
        (pushed, mem.read_lines + mem.write_lines, done)
    }

    /// Statistics for the run so far.
    #[must_use]
    pub fn stats(&self) -> SimStats {
        SimStats {
            cycles: self.cycle,
            mem: self.mem.stats(),
            total_flits: self.queues.iter().map(|q| q.total_pushed()).sum(),
            backpressure_stalls: self.queues.iter().map(|q| q.total_full_stalls()).sum(),
        }
    }

    /// Analytical FPGA resource usage of this design (paper Table IV):
    /// module logic + queue BRAM + scratchpad BRAM + per-pipeline and
    /// shell overheads.
    #[must_use]
    pub fn resource_report(&self) -> ResourceReport {
        let mut fabric = ResourceUsage::default();
        for m in &self.modules {
            fabric = fabric + module_cost(m.kind());
        }
        let queue_bytes: u64 = self.queues.iter().map(|_| queue_bram(16)).sum();
        fabric.bram_bytes += queue_bytes + self.spms.total_bytes() as u64;
        fabric = fabric + pipeline_overhead().times(u64::from(self.pipeline_count));
        ResourceReport::from_fabric(fabric)
    }

    /// Current cycle number.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Renders the module/queue graph in Graphviz dot format — the
    /// pipeline diagrams of paper Figures 7, 10, 11 and 12, generated
    /// from the actual wiring.
    #[must_use]
    pub fn to_dot(&self, title: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{title}\" {{");
        let _ = writeln!(out, "  rankdir=LR;");
        let _ = writeln!(out, "  node [shape=box, fontname=\"monospace\"];");
        let _ = writeln!(out, "  label=\"{title}\";");
        for (i, m) in self.modules.iter().enumerate() {
            let shape = match m.kind() {
                ModuleKind::MemoryReader | ModuleKind::MemoryWriter => "cylinder",
                ModuleKind::SpmReader | ModuleKind::SpmUpdater => "box3d",
                ModuleKind::Source | ModuleKind::Sink => "ellipse",
                _ => "box",
            };
            let _ = writeln!(
                out,
                "  m{i} [label=\"{}\\n({:?})\", shape={shape}];",
                m.label(),
                m.kind()
            );
        }
        // Queue edges: producer module -> consumer module, labeled by the
        // queue name.
        for (pi, producer) in self.modules.iter().enumerate() {
            for q in producer.output_queues() {
                let name = self.queues.get(q).name();
                for (ci, consumer) in self.modules.iter().enumerate() {
                    if consumer.input_queues().contains(&q) {
                        let _ = writeln!(out, "  m{pi} -> m{ci} [label=\"{name}\"];");
                    }
                }
            }
        }
        out.push_str("}\n");
        out
    }

    /// Number of module kinds registered, per kind (diagnostics).
    #[must_use]
    pub fn module_census(&self) -> Vec<(ModuleKind, usize)> {
        let mut counts: Vec<(ModuleKind, usize)> = Vec::new();
        for m in &self.modules {
            if let Some(entry) = counts.iter_mut().find(|(k, _)| *k == m.kind()) {
                entry.1 += 1;
            } else {
                counts.push((m.kind(), 1));
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modules::sink::StreamSink;
    use crate::modules::source::StreamSource;

    #[test]
    fn source_to_sink_roundtrip() {
        let mut sys = System::new();
        let q = sys.add_queue("q");
        sys.add_module(Box::new(StreamSource::from_items("src", q, &[vec![1, 2], vec![3]])));
        let sink = sys.add_module(Box::new(StreamSink::new("sink", q)));
        let stats = sys.run(1000).unwrap();
        assert_eq!(
            sys.sink_values(sink),
            vec![HwWord::Val(1), HwWord::Val(2), HwWord::Val(3)]
        );
        let items = sys.module_as::<StreamSink>(sink).unwrap().items();
        assert_eq!(items.len(), 2);
        assert!(stats.cycles >= 5);
    }

    #[test]
    fn cycle_limit_detected() {
        let mut sys = System::new();
        let q = sys.add_queue("q");
        // A sink on a queue nobody ever closes never finishes.
        let _ = sys.add_module(Box::new(StreamSink::new("sink", q)));
        let err = sys.run(100).unwrap_err();
        assert_eq!(err, SimError::CycleLimit { limit: 100 });
    }

    #[test]
    fn deadlock_detected() {
        let mut sys = System::new();
        let q = sys.add_queue("q");
        let _ = sys.add_module(Box::new(StreamSink::new("sink", q)));
        let err = sys.run(u64::MAX >> 2).unwrap_err();
        assert!(matches!(err, SimError::Deadlock { .. }));
    }

    #[test]
    fn resource_report_counts_modules() {
        let mut sys = System::new();
        let q = sys.add_queue("q");
        sys.add_spm("ref", 1000, 1);
        sys.add_module(Box::new(StreamSource::from_items("src", q, &[vec![1]])));
        sys.add_module(Box::new(StreamSink::new("sink", q)));
        let report = sys.resource_report();
        // Sources/sinks are free; shell + pipeline overhead + queue + spm.
        assert!(report.total.luts >= 95_000);
        assert!(report.total.bram_bytes >= 250_000 + 1000);
        assert!(report.fits());
    }
}
