//! Pipeline wiring and the per-cycle simulation engine.

use crate::memory::{MemStats, MemoryConfig, MemorySystem, PortId};
use crate::modules::{Ctx, Module, ModuleKind, Tick, Watch};
use crate::queue::{QueueId, QueuePool};
use crate::resource::{
    module_cost, pipeline_overhead, queue_bram, ResourceReport, ResourceUsage,
};
use crate::spm::{SpmId, SpmPool};
use crate::word::HwWord;
use genesis_obs::{
    ModuleStall, SpanKind, StallClass, StallCounters, StallReport, TraceBuffer, TraceConfig,
};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

/// Which simulation engine [`System::run`] uses.
///
/// Both engines produce bit-identical results — cycle counts, stall
/// counters, memory traffic, and module outputs all match. The
/// event-driven engine is the default; the reference engine exists as the
/// semantic baseline for differential testing and debugging.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineMode {
    /// Quiescence-aware engine: modules whose [`Tick`] reports that no
    /// progress is possible are parked and re-ticked only when a watched
    /// queue changes or a timed wake (memory latency) arrives. Cycles on
    /// which every live module is parked are skipped in closed form.
    #[default]
    EventDriven,
    /// The naive engine: every unfinished module ticks every cycle.
    Reference,
}

/// Handle for a module registered in a [`System`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ModuleId(usize);

/// Simulation error.
#[derive(Debug, Clone)]
pub enum SimError {
    /// No forward progress for an implausibly long window: a wiring bug
    /// (e.g. a queue nobody drains) rather than a performance artifact.
    Deadlock {
        /// Cycle at which the deadlock was declared.
        cycle: u64,
        /// Labels of modules that had not finished.
        stuck: Vec<String>,
        /// Per-module stall attribution at the point of the deadlock, for
        /// diagnosing *why* the stuck modules stopped (input starvation vs
        /// backpressure vs memory wait). Diagnostic only — excluded from
        /// equality so the two engines' error outcomes still compare equal
        /// (the reference engine attributes all cycles as active).
        report: Box<StallReport>,
    },
    /// The cycle budget was exhausted before the pipeline drained.
    CycleLimit {
        /// The exhausted budget.
        limit: u64,
    },
}

impl PartialEq for SimError {
    fn eq(&self, other: &SimError) -> bool {
        match (self, other) {
            (
                SimError::Deadlock { cycle: a, stuck: b, report: _ },
                SimError::Deadlock { cycle: c, stuck: d, report: _ },
            ) => a == c && b == d,
            (SimError::CycleLimit { limit: a }, SimError::CycleLimit { limit: b }) => a == b,
            _ => false,
        }
    }
}

impl Eq for SimError {}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock { cycle, stuck, report } => {
                write!(f, "simulation deadlocked at cycle {cycle}; stuck modules: {stuck:?}")?;
                // Name the module that spent the most cycles not making
                // progress — usually the head of the blocked chain.
                let worst = report
                    .modules
                    .iter()
                    .max_by_key(|m| m.counters.total().saturating_sub(m.counters.active));
                if let Some(m) = worst.filter(|m| m.counters.total() > m.counters.active) {
                    let c = m.counters;
                    write!(
                        f,
                        "; most stalled: {} (starved {}, backpressured {}, memory {})",
                        m.label, c.input_starved, c.backpressured, c.memory_wait
                    )?;
                }
                Ok(())
            }
            SimError::CycleLimit { limit } => {
                write!(f, "cycle limit {limit} exhausted before pipeline drained")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Results of a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimStats {
    /// Cycles until every module finished.
    pub cycles: u64,
    /// Device memory traffic.
    pub mem: MemStats,
    /// Total flits moved through all queues.
    pub total_flits: u64,
    /// Total refused pushes (backpressure events).
    pub backpressure_stalls: u64,
}

/// A complete simulated accelerator: queues, scratchpads, device memory,
/// and modules, stepped one clock cycle at a time.
///
/// Modules tick in registration order each cycle; register pipelines
/// front-to-back so data can flow through multiple modules per cycle
/// without inflating cycle counts.
#[derive(Debug)]
pub struct System {
    queues: QueuePool,
    spms: SpmPool,
    mem: MemorySystem,
    modules: Vec<Box<dyn Module>>,
    cycle: u64,
    /// Module-id ranges per pipeline (for resource accounting).
    pipeline_count: u32,
    engine: EngineMode,
    /// Per-module cumulative stall attribution (always on; updated only at
    /// park/unpark events, so it costs nothing per cycle).
    stall: Vec<StallCounters>,
    /// Opt-in span/counter tracing (None = disabled, the default).
    trace: Option<TraceState>,
}

/// Tracing state while enabled: the recording buffer plus the sampling
/// cursor for queue-depth counter tracks.
#[derive(Debug)]
struct TraceState {
    buf: TraceBuffer,
    /// Last sampled depth per queue (`u64::MAX` = never sampled), so only
    /// changes are recorded.
    last_depth: Vec<u64>,
    /// Next cycle at which queue depths are due for a sample.
    next_sample: u64,
    /// Sampling stride in cycles (cached from the config).
    stride: u64,
}

/// Per-run span/stall bookkeeping for one `System::run` invocation. Kept
/// outside the engine loop so every exit path (drain, deadlock, cycle
/// limit) finalizes identically.
struct RunObs {
    /// Cycle at which this run started.
    base: u64,
    /// Whether each module is currently parked.
    parked: Vec<bool>,
    /// Cycle at which the current park began.
    park_at: Vec<u64>,
    /// Classification of the current park.
    park_class: Vec<StallClass>,
    /// Start cycle of the current active span (tracing only).
    span_start: Vec<u64>,
    /// Stalled cycles accumulated by each module during this run.
    stalled: Vec<u64>,
}

impl RunObs {
    fn new(n: usize, base: u64) -> RunObs {
        RunObs {
            base,
            parked: vec![false; n],
            park_at: vec![0; n],
            park_class: vec![StallClass::InputStarved; n],
            span_start: vec![base; n],
            stalled: vec![0; n],
        }
    }
}

impl Default for System {
    fn default() -> System {
        System::new()
    }
}

impl System {
    /// Creates a system with default (F1-like) memory configuration.
    #[must_use]
    pub fn new() -> System {
        System::with_memory(MemoryConfig::default())
    }

    /// Creates a system with an explicit memory configuration.
    ///
    /// The engine defaults to [`EngineMode::EventDriven`]; setting the
    /// environment variable `GENESIS_ENGINE=reference` selects the naive
    /// reference engine instead (handy for differential debugging without
    /// code changes).
    #[must_use]
    pub fn with_memory(cfg: MemoryConfig) -> System {
        let engine = match std::env::var("GENESIS_ENGINE") {
            Ok(v) if v.eq_ignore_ascii_case("reference") => EngineMode::Reference,
            _ => EngineMode::EventDriven,
        };
        System {
            queues: QueuePool::new(),
            spms: SpmPool::new(),
            mem: MemorySystem::new(cfg),
            modules: Vec::new(),
            cycle: 0,
            pipeline_count: 1,
            engine,
            stall: Vec::new(),
            trace: None,
        }
    }

    /// Enables (or disables, with a config whose `enabled` is false) span
    /// and queue-depth tracing for subsequent [`System::run`] calls.
    /// Replaces any previously recorded trace.
    pub fn set_trace(&mut self, cfg: TraceConfig) {
        self.trace = cfg.enabled.then(|| TraceState {
            stride: cfg.sample_stride.max(1),
            buf: TraceBuffer::new(cfg),
            last_depth: Vec::new(),
            next_sample: 0,
        });
    }

    /// The recorded trace, when tracing is enabled.
    #[must_use]
    pub fn trace(&self) -> Option<&TraceBuffer> {
        self.trace.as_ref().map(|t| &t.buf)
    }

    /// Takes the recorded trace out of the system (disabling further
    /// recording).
    pub fn take_trace(&mut self) -> Option<TraceBuffer> {
        self.trace.take().map(|t| t.buf)
    }

    /// Per-module stall attribution accumulated by [`System::run`]: each
    /// module's simulated cycles split into active / input-starved /
    /// output-backpressured / memory-wait, where the parked classes come
    /// from the [`Watch`] each park declared. The four buckets sum to
    /// [`StallReport::total_cycles`] for every module (`active` includes
    /// the tail where a finished module sits retired while the rest of the
    /// pipeline drains).
    ///
    /// Attribution is event-based (updated at park/unpark, not per cycle),
    /// so it is always on. Under [`EngineMode::Reference`] modules never
    /// park and every cycle is accounted as active.
    #[must_use]
    pub fn stall_report(&self) -> StallReport {
        StallReport {
            total_cycles: self.cycle,
            modules: self
                .modules
                .iter()
                .enumerate()
                .map(|(i, m)| ModuleStall {
                    label: m.label().to_owned(),
                    counters: self.stall.get(i).copied().unwrap_or_default(),
                })
                .collect(),
        }
    }

    /// Selects the simulation engine for subsequent [`System::run`] calls.
    pub fn set_engine(&mut self, engine: EngineMode) {
        self.engine = engine;
    }

    /// The currently selected simulation engine.
    #[must_use]
    pub fn engine(&self) -> EngineMode {
        self.engine
    }

    /// Adds a queue.
    pub fn add_queue(&mut self, name: &str) -> QueueId {
        self.queues.add(name)
    }

    /// Adds a queue with explicit capacity.
    pub fn add_queue_with_capacity(&mut self, name: &str, capacity: usize) -> QueueId {
        self.queues.add_with_capacity(name, capacity)
    }

    /// Adds a scratchpad.
    pub fn add_spm(&mut self, name: &str, len: usize, elem_bytes: usize) -> SpmId {
        self.spms.add(name, len, elem_bytes)
    }

    /// Registers a memory port in local-arbiter group `group`.
    pub fn register_mem_port(&mut self, group: u32) -> PortId {
        self.pipeline_count = self.pipeline_count.max(group + 1);
        self.mem.register_port(group)
    }

    /// Allocates device memory.
    pub fn alloc_mem(&mut self, len: usize) -> u64 {
        self.mem.alloc(len)
    }

    /// Host-side device-memory fill (the DMA copy of `configure_mem`).
    pub fn host_write(&mut self, addr: u64, bytes: &[u8]) {
        self.mem.host_write(addr, bytes);
    }

    /// Host-side device-memory readback (`genesis_flush`).
    #[must_use]
    pub fn host_read(&self, addr: u64, len: usize) -> Vec<u8> {
        self.mem.host_read(addr, len)
    }

    /// Registers a module; tick order follows registration order.
    pub fn add_module(&mut self, module: Box<dyn Module>) -> ModuleId {
        self.modules.push(module);
        ModuleId(self.modules.len() - 1)
    }

    /// Borrows a registered module.
    #[must_use]
    pub fn module(&self, id: ModuleId) -> &dyn Module {
        self.modules[id.0].as_ref()
    }

    /// Downcasts a registered module to a concrete type.
    #[must_use]
    pub fn module_as<T: 'static>(&self, id: ModuleId) -> Option<&T> {
        self.modules[id.0].as_any().downcast_ref::<T>()
    }

    /// Convenience: the collected field-0 values of a
    /// [`crate::modules::sink::StreamSink`].
    ///
    /// # Panics
    ///
    /// Panics when `id` is not a `StreamSink`.
    #[must_use]
    pub fn sink_values(&self, id: ModuleId) -> Vec<HwWord> {
        self.module_as::<crate::modules::sink::StreamSink>(id)
            .expect("module is a StreamSink")
            .values()
    }

    /// Borrows the scratchpad pool (for result extraction).
    #[must_use]
    pub fn spms(&self) -> &SpmPool {
        &self.spms
    }

    /// Mutably borrows the scratchpad pool (host-side initialization in
    /// tests).
    #[must_use]
    pub fn spms_mut(&mut self) -> &mut SpmPool {
        &mut self.spms
    }

    /// Borrows the queue pool.
    #[must_use]
    pub fn queues(&self) -> &QueuePool {
        &self.queues
    }

    /// Advances one clock cycle.
    pub fn step(&mut self) {
        self.mem.begin_cycle(self.cycle);
        let mut ctx = Ctx {
            queues: &mut self.queues,
            spms: &mut self.spms,
            mem: &mut self.mem,
            cycle: self.cycle,
        };
        for m in &mut self.modules {
            if !m.is_done() {
                let _ = m.tick(&mut ctx);
            }
        }
        self.cycle += 1;
    }

    /// True when every registered module has finished.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.modules.iter().all(|m| m.is_done())
    }

    /// Runs until every module finishes or `max_cycles` elapse, using the
    /// engine selected by [`System::set_engine`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Deadlock`] when no observable progress happens
    /// for a long window, or [`SimError::CycleLimit`] at the budget.
    pub fn run(&mut self, max_cycles: u64) -> Result<SimStats, SimError> {
        let n = self.modules.len();
        if self.stall.len() < n {
            self.stall.resize(n, StallCounters::default());
        }
        self.init_trace_run();
        let mut obs = RunObs::new(n, self.cycle);
        let result = match self.engine {
            EngineMode::Reference => self.run_reference(max_cycles),
            EngineMode::EventDriven => self.run_event(max_cycles, &mut obs),
        };
        self.finalize_obs(&obs);
        // Engines construct `Deadlock` with an empty report (stall
        // accounting is only complete after `finalize_obs`); attach the
        // real attribution here.
        match result {
            Err(SimError::Deadlock { cycle, stuck, .. }) => Err(SimError::Deadlock {
                cycle,
                stuck,
                report: Box::new(self.stall_report()),
            }),
            other => other,
        }
    }

    /// Prepares the trace buffer for a run: installs the module/queue name
    /// tables and resets the sampling cursor.
    fn init_trace_run(&mut self) {
        let Some(ts) = &mut self.trace else { return };
        if ts.buf.tracks().len() != self.modules.len() {
            ts.buf.set_tracks(self.modules.iter().map(|m| m.label().to_owned()).collect());
        }
        if ts.buf.counters().len() != self.queues.len() {
            ts.buf.set_counters(self.queues.iter().map(|q| q.name().to_owned()).collect());
        }
        ts.last_depth.resize(self.queues.len(), u64::MAX);
        ts.next_sample = self.cycle;
    }

    /// Samples every queue's depth when the sampling stride is due,
    /// recording only depths that changed since their last sample. Inlined
    /// so the tracing-disabled early-return folds into one predictable
    /// branch in the engines' per-cycle loops.
    #[inline]
    fn sample_queues_if_due(&mut self) {
        let Some(ts) = &mut self.trace else { return };
        if self.cycle < ts.next_sample {
            return;
        }
        for (qi, q) in self.queues.iter().enumerate() {
            let d = q.len() as u64;
            if ts.last_depth[qi] != d {
                ts.last_depth[qi] = d;
                ts.buf.record_sample(qi as u32, self.cycle, d);
            }
        }
        ts.next_sample = self.cycle + ts.stride;
    }

    /// Classifies a park by the `Watch` it declared: what the module said
    /// it was waiting on is what the stall is attributed to.
    fn classify_stall(watch: Watch, ins: &[QueueId], outs: &[QueueId]) -> StallClass {
        match watch {
            Watch::Timer => StallClass::MemoryWait,
            Watch::Inputs => StallClass::InputStarved,
            Watch::Outputs => StallClass::Backpressured,
            Watch::Queue(q) => {
                if outs.contains(&q) && !ins.contains(&q) {
                    StallClass::Backpressured
                } else {
                    StallClass::InputStarved
                }
            }
        }
    }

    /// Closes module `i`'s current park interval at cycle `now`: charges
    /// the parked cycles to the park's stall class and, when tracing,
    /// records the stall span and re-opens the active span.
    fn note_unpark(
        stall: &mut [StallCounters],
        trace: &mut Option<TraceState>,
        obs: &mut RunObs,
        i: usize,
        now: u64,
    ) {
        let cycles = now - obs.park_at[i];
        let class = obs.park_class[i];
        stall[i].add(class, cycles);
        obs.stalled[i] += cycles;
        if let Some(ts) = trace {
            ts.buf.record_span(i as u32, SpanKind::Stall(class), obs.park_at[i], now);
        }
        obs.span_start[i] = now;
    }

    /// Closes all open span/stall intervals at the end of a run (any exit
    /// path) and credits each module's non-parked remainder as active.
    fn finalize_obs(&mut self, obs: &RunObs) {
        let now = self.cycle;
        let elapsed = now - obs.base;
        for i in 0..obs.parked.len() {
            if obs.parked[i] {
                let cycles = now - obs.park_at[i];
                self.stall[i].add(obs.park_class[i], cycles);
                self.stall[i].active += elapsed - (obs.stalled[i] + cycles);
                if let Some(ts) = &mut self.trace {
                    ts.buf.record_span(
                        i as u32,
                        SpanKind::Stall(obs.park_class[i]),
                        obs.park_at[i],
                        now,
                    );
                }
            } else {
                self.stall[i].active += elapsed - obs.stalled[i];
                if let Some(ts) = &mut self.trace {
                    ts.buf.record_span(i as u32, SpanKind::Active, obs.span_start[i], now);
                }
            }
        }
    }

    /// The naive engine: tick every unfinished module every cycle. This is
    /// the semantic baseline the event-driven engine must match bit for
    /// bit; keep its behavior frozen. Modules never park here, so stall
    /// attribution reports every cycle as active.
    fn run_reference(&mut self, max_cycles: u64) -> Result<SimStats, SimError> {
        let deadlock_window = self.deadlock_window();
        let mut last_progress_cycle = self.cycle;
        let mut last_signature = self.progress_signature();
        while !self.is_done() {
            if self.cycle >= max_cycles {
                return Err(SimError::CycleLimit { limit: max_cycles });
            }
            self.sample_queues_if_due();
            self.step();
            // Progress checks are amortized.
            if self.cycle.is_multiple_of(512) {
                let sig = self.progress_signature();
                if sig != last_signature {
                    last_signature = sig;
                    last_progress_cycle = self.cycle;
                } else if self.cycle - last_progress_cycle > deadlock_window {
                    return Err(SimError::Deadlock {
                        cycle: self.cycle,
                        stuck: self.stuck_labels(),
                        report: Box::default(),
                    });
                }
            }
        }
        Ok(self.stats())
    }

    /// The quiescence-aware engine.
    ///
    /// Modules whose tick returns [`Tick::Park`] are skipped until the
    /// state they declared themselves blocked on changes: a mutation (any
    /// `get_mut` counts — a push, pop, close, or refused push) of a queue
    /// selected by their [`Watch`], or their requested wake cycle
    /// arriving. Because the park contract requires a parked module's
    /// ticks to be pure no-ops, skipping them is unobservable: cycle
    /// counts, stall counters, memory traffic and outputs match the
    /// reference engine exactly.
    ///
    /// Queue touch tracking is enabled only while at least one module is
    /// parked — with nothing parked there is nobody to wake, so the
    /// all-active steady state pays no tracking overhead at all.
    ///
    /// Wake ordering preserves reference-tick order: touches are drained
    /// and watchers unparked *after each module's tick*, before the tick's
    /// own park result is applied. A module later in registration order
    /// woken mid-scan is therefore ticked in the same cycle (as the
    /// reference engine would), an earlier one on the next cycle — also
    /// matching, since its no-op tick this cycle preceded the wake-causing
    /// mutation.
    ///
    /// When every live module is parked, the engine advances the clock in
    /// closed form to the next timed wake, replaying the reference
    /// engine's 512-cycle deadlock sampling arithmetic so `Deadlock` and
    /// `CycleLimit` errors fire at identical cycles.
    #[allow(clippy::too_many_lines)]
    fn run_event(&mut self, max_cycles: u64, obs: &mut RunObs) -> Result<SimStats, SimError> {
        /// Watcher-role bits: how a module relates to a watched queue.
        const ROLE_INPUT: u8 = 1;
        const ROLE_OUTPUT: u8 = 2;
        fn watch_matches(watch: Watch, role: u8, qi: u32) -> bool {
            match watch {
                Watch::Inputs => role & ROLE_INPUT != 0,
                Watch::Outputs => role & ROLE_OUTPUT != 0,
                Watch::Queue(id) => id.index() == qi as usize,
                Watch::Timer => false,
            }
        }
        /// Registers (or unregisters) the concrete queues a module's park
        /// watches, so `get_mut` records touches only for queues some
        /// parked module actually waits on.
        fn adjust_watches(
            queues: &mut QueuePool,
            ins: &[QueueId],
            outs: &[QueueId],
            watch: Watch,
            add: bool,
        ) {
            let qs: &[QueueId] = match watch {
                Watch::Inputs => ins,
                Watch::Outputs => outs,
                Watch::Queue(q) => {
                    if add {
                        queues.add_watch(q);
                    } else {
                        queues.remove_watch(q);
                    }
                    return;
                }
                Watch::Timer => return,
            };
            for &q in qs {
                if add {
                    queues.add_watch(q);
                } else {
                    queues.remove_watch(q);
                }
            }
        }
        let n = self.modules.len();
        let deadlock_window = self.deadlock_window();
        // Queue index -> modules watching it, tagged with their role so a
        // parked module's `Watch` can filter wake-ups; plus each module's
        // own queue lists for park-time watch registration.
        let mut watchers: Vec<Vec<(usize, u8)>> = vec![Vec::new(); self.queues.len()];
        let mut in_qs: Vec<Vec<QueueId>> = Vec::with_capacity(n);
        let mut out_qs: Vec<Vec<QueueId>> = Vec::with_capacity(n);
        for (i, m) in self.modules.iter().enumerate() {
            let ins = m.input_queues();
            let outs = m.output_queues();
            for &q in &ins {
                match watchers[q.index()].iter_mut().find(|(w, _)| *w == i) {
                    Some(entry) => entry.1 |= ROLE_INPUT,
                    None => watchers[q.index()].push((i, ROLE_INPUT)),
                }
            }
            for &q in &outs {
                match watchers[q.index()].iter_mut().find(|(w, _)| *w == i) {
                    Some(entry) => entry.1 |= ROLE_OUTPUT,
                    None => watchers[q.index()].push((i, ROLE_OUTPUT)),
                }
            }
            in_qs.push(ins);
            out_qs.push(outs);
        }
        let mut done: Vec<bool> = self.modules.iter().map(|m| m.is_done()).collect();
        let mut done_count = done.iter().filter(|&&d| d).count();
        let mut parked_watch = vec![Watch::Inputs; n];
        let mut parked_count = 0usize;
        // Bumped on every unpark so stale timed-heap entries are ignored.
        let mut gen = vec![0u32; n];
        let mut timed: BinaryHeap<Reverse<(u64, usize, u32)>> = BinaryHeap::new();
        let mut touched: Vec<u32> = Vec::new();
        // Local mirror of the pool's tracking flag. Tracking turns on when
        // the first module parks and off once nothing is parked at a cycle
        // boundary, so the all-active steady state runs with zero
        // bookkeeping on `get_mut`.
        let mut tracking = false;
        self.queues.set_touch_tracking(false);
        self.queues.clear_watches();
        let mut last_progress_cycle = self.cycle;
        let mut last_signature = self.progress_signature();
        while done_count < n {
            if self.cycle >= max_cycles {
                self.queues.set_touch_tracking(false);
                return Err(SimError::CycleLimit { limit: max_cycles });
            }
            self.sample_queues_if_due();
            // Timed wakes due this cycle.
            while let Some(&Reverse((at, i, g))) = timed.peek() {
                if at > self.cycle {
                    break;
                }
                timed.pop();
                if g == gen[i] && obs.parked[i] && !done[i] {
                    obs.parked[i] = false;
                    parked_count -= 1;
                    gen[i] = gen[i].wrapping_add(1);
                    adjust_watches(&mut self.queues, &in_qs[i], &out_qs[i], parked_watch[i], false);
                    Self::note_unpark(&mut self.stall, &mut self.trace, obs, i, self.cycle);
                }
            }
            if tracking && parked_count == 0 {
                tracking = false;
                self.queues.set_touch_tracking(false);
            }
            if parked_count + done_count == n {
                // Every live module is parked: all cycles until the next
                // timed wake are no-ops. Replay the reference engine's
                // bookkeeping in closed form.
                let sig_now = self.progress_signature();
                // The sample at which the reference loop would record any
                // progress made since the last 512-cycle sample.
                let next_sample = (self.cycle / 512 + 1) * 512;
                let lp = if sig_now == last_signature { last_progress_cycle } else { next_sample };
                // First sample where `cycle - lp > deadlock_window` holds.
                let c_dl = ((lp + deadlock_window) / 512 + 1) * 512;
                // Earliest still-valid timed wake.
                let wake = loop {
                    match timed.peek() {
                        Some(&Reverse((at, i, g))) => {
                            if g == gen[i] && obs.parked[i] && !done[i] {
                                break at;
                            }
                            timed.pop();
                        }
                        None => break u64::MAX,
                    }
                };
                if c_dl <= wake && c_dl <= max_cycles {
                    self.cycle = c_dl;
                    self.queues.set_touch_tracking(false);
                    return Err(SimError::Deadlock {
                        cycle: c_dl,
                        stuck: self.stuck_labels(),
                        report: Box::default(),
                    });
                }
                if wake < max_cycles {
                    if sig_now != last_signature && next_sample <= wake {
                        last_signature = sig_now;
                        last_progress_cycle = next_sample;
                    }
                    self.cycle = wake;
                    continue;
                }
                // The reference engine ticks all the way to the budget
                // before giving up; land the cycle counter on the same
                // value so post-error `cycle()`/`stats()` agree.
                self.cycle = max_cycles;
                self.queues.set_touch_tracking(false);
                return Err(SimError::CycleLimit { limit: max_cycles });
            }
            self.mem.begin_cycle(self.cycle);
            for i in 0..n {
                if done[i] || obs.parked[i] {
                    continue;
                }
                let mut ctx = Ctx {
                    queues: &mut self.queues,
                    spms: &mut self.spms,
                    mem: &mut self.mem,
                    cycle: self.cycle,
                };
                let t = self.modules[i].tick(&mut ctx);
                // Unpark watchers of queues this tick mutated, *before*
                // applying the tick's own result — a module that parks
                // after touching its queues (a refused push marks a touch)
                // must not immediately wake itself. A parked module is
                // woken only when the touch matches its declared `Watch`.
                if tracking && self.queues.has_touched() {
                    self.queues.take_touched(&mut touched);
                    for &qi in &touched {
                        // A touch is also a depth-change signal: sample the
                        // touched queue (deduplicated) when tracing.
                        if let Some(ts) = &mut self.trace {
                            let d = self.queues.get(QueueId(qi)).len() as u64;
                            if ts.last_depth[qi as usize] != d {
                                ts.last_depth[qi as usize] = d;
                                ts.buf.record_sample(qi, self.cycle, d);
                            }
                        }
                        for &(w, role) in &watchers[qi as usize] {
                            if obs.parked[w]
                                && !done[w]
                                && watch_matches(parked_watch[w], role, qi)
                            {
                                obs.parked[w] = false;
                                parked_count -= 1;
                                gen[w] = gen[w].wrapping_add(1);
                                adjust_watches(
                                    &mut self.queues,
                                    &in_qs[w],
                                    &out_qs[w],
                                    parked_watch[w],
                                    false,
                                );
                                Self::note_unpark(
                                    &mut self.stall,
                                    &mut self.trace,
                                    obs,
                                    w,
                                    self.cycle,
                                );
                            }
                        }
                    }
                    touched.clear();
                }
                match t {
                    Tick::Active => {
                        if self.modules[i].is_done() {
                            done[i] = true;
                            done_count += 1;
                        }
                    }
                    Tick::Park { wake_at, watch } => {
                        obs.parked[i] = true;
                        parked_watch[i] = watch;
                        parked_count += 1;
                        obs.park_at[i] = self.cycle;
                        obs.park_class[i] = Self::classify_stall(watch, &in_qs[i], &out_qs[i]);
                        if let Some(ts) = &mut self.trace {
                            // The park tick itself was a no-op, so the
                            // active span ends where the stall begins.
                            ts.buf.record_span(
                                i as u32,
                                SpanKind::Active,
                                obs.span_start[i],
                                self.cycle,
                            );
                        }
                        adjust_watches(&mut self.queues, &in_qs[i], &out_qs[i], watch, true);
                        if let Some(at) = wake_at {
                            timed.push(Reverse((at, i, gen[i])));
                        }
                        if !tracking {
                            // First park: start recording touches. Enabled
                            // after this tick's (untracked) mutations, which
                            // is safe — state the parking module saw already
                            // reflects everything earlier this cycle.
                            tracking = true;
                            self.queues.set_touch_tracking(true);
                        }
                    }
                }
            }
            self.cycle += 1;
            if self.cycle.is_multiple_of(512) {
                let sig = self.progress_signature();
                if sig != last_signature {
                    last_signature = sig;
                    last_progress_cycle = self.cycle;
                } else if self.cycle - last_progress_cycle > deadlock_window {
                    self.queues.set_touch_tracking(false);
                    return Err(SimError::Deadlock {
                        cycle: self.cycle,
                        stuck: self.stuck_labels(),
                        report: Box::default(),
                    });
                }
            }
        }
        self.queues.set_touch_tracking(false);
        Ok(self.stats())
    }

    /// Cycles without observable progress before a run is declared
    /// deadlocked. Scales with the *worst-case* memory latency (including
    /// injected spikes) so fault injection is never misread as a hang.
    fn deadlock_window(&self) -> u64 {
        4 * self.mem.config().worst_case_latency_cycles() + 10_000
    }

    fn stuck_labels(&self) -> Vec<String> {
        self.modules
            .iter()
            .filter(|m| !m.is_done())
            .map(|m| m.label().to_owned())
            .collect()
    }

    fn progress_signature(&self) -> (u64, u64, usize) {
        let pushed: u64 = self.queues.iter().map(|q| q.total_pushed()).sum();
        let mem = self.mem.stats();
        let done = self.modules.iter().filter(|m| m.is_done()).count();
        (pushed, mem.read_lines + mem.write_lines, done)
    }

    /// Statistics for the run so far.
    #[must_use]
    pub fn stats(&self) -> SimStats {
        SimStats {
            cycles: self.cycle,
            mem: self.mem.stats(),
            total_flits: self.queues.iter().map(|q| q.total_pushed()).sum(),
            backpressure_stalls: self.queues.iter().map(|q| q.total_full_stalls()).sum(),
        }
    }

    /// Analytical FPGA resource usage of this design (paper Table IV):
    /// module logic + queue BRAM + scratchpad BRAM + per-pipeline and
    /// shell overheads.
    #[must_use]
    pub fn resource_report(&self) -> ResourceReport {
        let mut fabric = ResourceUsage::default();
        for m in &self.modules {
            fabric = fabric + module_cost(m.kind());
        }
        let queue_bytes: u64 = self.queues.iter().map(|q| queue_bram(q.capacity())).sum();
        fabric.bram_bytes += queue_bytes + self.spms.total_bytes() as u64;
        fabric = fabric + pipeline_overhead().times(u64::from(self.pipeline_count));
        ResourceReport {
            backpressure_stalls: self.queues.iter().map(|q| q.total_full_stalls()).sum(),
            total_flits: self.queues.iter().map(|q| q.total_pushed()).sum(),
            ..ResourceReport::from_fabric(fabric)
        }
    }

    /// Current cycle number.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Renders the module/queue graph in Graphviz dot format — the
    /// pipeline diagrams of paper Figures 7, 10, 11 and 12, generated
    /// from the actual wiring.
    #[must_use]
    pub fn to_dot(&self, title: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{title}\" {{");
        let _ = writeln!(out, "  rankdir=LR;");
        let _ = writeln!(out, "  node [shape=box, fontname=\"monospace\"];");
        let _ = writeln!(out, "  label=\"{title}\";");
        for (i, m) in self.modules.iter().enumerate() {
            let shape = match m.kind() {
                ModuleKind::MemoryReader | ModuleKind::MemoryWriter => "cylinder",
                ModuleKind::SpmReader | ModuleKind::SpmUpdater => "box3d",
                ModuleKind::Source | ModuleKind::Sink => "ellipse",
                _ => "box",
            };
            let _ = writeln!(
                out,
                "  m{i} [label=\"{}\\n({:?})\", shape={shape}];",
                m.label(),
                m.kind()
            );
        }
        // Queue edges: producer module -> consumer module, labeled by the
        // queue name. The queue -> consumers index is built once up front
        // instead of rescanning every module per producer queue.
        let mut consumers: Vec<Vec<usize>> = vec![Vec::new(); self.queues.len()];
        for (ci, m) in self.modules.iter().enumerate() {
            let mut qs = m.input_queues();
            qs.sort_unstable_by_key(|q| q.index());
            qs.dedup();
            for q in qs {
                consumers[q.index()].push(ci);
            }
        }
        for (pi, producer) in self.modules.iter().enumerate() {
            for q in producer.output_queues() {
                let name = self.queues.get(q).name();
                for &ci in &consumers[q.index()] {
                    let _ = writeln!(out, "  m{pi} -> m{ci} [label=\"{name}\"];");
                }
            }
        }
        out.push_str("}\n");
        out
    }

    /// Number of module kinds registered, per kind (diagnostics).
    #[must_use]
    pub fn module_census(&self) -> Vec<(ModuleKind, usize)> {
        let mut counts: Vec<(ModuleKind, usize)> = Vec::new();
        for m in &self.modules {
            if let Some(entry) = counts.iter_mut().find(|(k, _)| *k == m.kind()) {
                entry.1 += 1;
            } else {
                counts.push((m.kind(), 1));
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modules::sink::StreamSink;
    use crate::modules::source::StreamSource;

    #[test]
    fn source_to_sink_roundtrip() {
        let mut sys = System::new();
        let q = sys.add_queue("q");
        sys.add_module(Box::new(StreamSource::from_items("src", q, &[vec![1, 2], vec![3]])));
        let sink = sys.add_module(Box::new(StreamSink::new("sink", q)));
        let stats = sys.run(1000).unwrap();
        assert_eq!(
            sys.sink_values(sink),
            vec![HwWord::Val(1), HwWord::Val(2), HwWord::Val(3)]
        );
        let items = sys.module_as::<StreamSink>(sink).unwrap().items();
        assert_eq!(items.len(), 2);
        assert!(stats.cycles >= 5);
    }

    #[test]
    fn cycle_limit_detected() {
        let mut sys = System::new();
        let q = sys.add_queue("q");
        // A sink on a queue nobody ever closes never finishes.
        let _ = sys.add_module(Box::new(StreamSink::new("sink", q)));
        let err = sys.run(100).unwrap_err();
        assert_eq!(err, SimError::CycleLimit { limit: 100 });
    }

    #[test]
    fn deadlock_detected() {
        let mut sys = System::new();
        let q = sys.add_queue("q");
        let _ = sys.add_module(Box::new(StreamSink::new("sink", q)));
        let err = sys.run(u64::MAX >> 2).unwrap_err();
        assert!(matches!(err, SimError::Deadlock { .. }));
    }

    #[test]
    fn resource_report_counts_modules() {
        let mut sys = System::new();
        let q = sys.add_queue("q");
        sys.add_spm("ref", 1000, 1);
        sys.add_module(Box::new(StreamSource::from_items("src", q, &[vec![1]])));
        sys.add_module(Box::new(StreamSink::new("sink", q)));
        let report = sys.resource_report();
        // Sources/sinks are free; shell + pipeline overhead + queue + spm.
        assert!(report.total.luts >= 95_000);
        assert!(report.total.bram_bytes >= 250_000 + 1000);
        assert!(report.fits());
    }
}
