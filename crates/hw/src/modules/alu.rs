//! Stream ALU: element-wise unary/binary operations (paper §III-C).

use super::{try_push, Ctx, Module, ModuleKind, Tick};
use crate::queue::QueueId;
use crate::word::{Flit, HwWord, MAX_FIELDS};
use std::any::Any;

/// Binary ALU operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Bitwise NOT of the left operand (unary; right operand ignored).
    Not,
    /// Equality comparison producing 1/0.
    CmpEq,
    /// Less-than comparison producing 1/0.
    CmpLt,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

/// The second operand source.
#[derive(Debug, Clone, Copy)]
pub enum AluRhs {
    /// A second input queue (element-wise across matching fields).
    Queue(QueueId),
    /// An immediate constant applied to every field.
    Const(u64),
}

/// Applies `op` element-wise over flit fields, one flit per cycle.
/// Sentinel operands propagate (`op(Ins, x) = Ins`), and end-of-item
/// delimiters from two-queue configurations must align.
#[derive(Debug)]
pub struct StreamAlu {
    label: String,
    op: AluOp,
    lhs: QueueId,
    rhs: AluRhs,
    out: QueueId,
    done: bool,
}

impl StreamAlu {
    /// Creates a stream ALU.
    #[must_use]
    pub fn new(label: &str, op: AluOp, lhs: QueueId, rhs: AluRhs, out: QueueId) -> StreamAlu {
        StreamAlu { label: label.to_owned(), op, lhs, rhs, out, done: false }
    }

    fn apply(op: AluOp, a: HwWord, b: HwWord) -> HwWord {
        if a.is_marker() {
            return a;
        }
        if b.is_marker() && op != AluOp::Not {
            return b;
        }
        let (x, y) = (a.val_or_zero(), b.val_or_zero());
        let v = match op {
            AluOp::Add => x.wrapping_add(y),
            AluOp::Sub => x.wrapping_sub(y),
            AluOp::And => x & y,
            AluOp::Or => x | y,
            AluOp::Xor => x ^ y,
            AluOp::Not => !x,
            AluOp::CmpEq => u64::from(x == y),
            AluOp::CmpLt => u64::from(x < y),
            AluOp::Min => x.min(y),
            AluOp::Max => x.max(y),
        };
        HwWord::Val(v)
    }
}

impl Module for StreamAlu {
    fn label(&self) -> &str {
        &self.label
    }

    fn kind(&self) -> ModuleKind {
        ModuleKind::Alu
    }

    fn tick(&mut self, ctx: &mut Ctx<'_>) -> Tick {
        if self.done {
            return Tick::Active;
        }
        match self.rhs {
            AluRhs::Const(c) => {
                let Some(&flit) = ctx.queues.get(self.lhs).peek() else {
                    if ctx.queues.get(self.lhs).is_finished() {
                        ctx.queues.get_mut(self.out).close();
                        self.done = true;
                        return Tick::Active;
                    }
                    return Tick::PARK;
                };
                let out = if flit.is_end_item() {
                    flit
                } else {
                    let words: Vec<HwWord> = (0..flit.len())
                        .map(|i| Self::apply(self.op, flit.field(i), HwWord::Val(c)))
                        .collect();
                    Flit::data(&words)
                };
                if try_push(ctx.queues, self.out, out) {
                    ctx.queues.get_mut(self.lhs).pop();
                }
                Tick::Active
            }
            AluRhs::Queue(rq) => {
                let lfin = ctx.queues.get(self.lhs).is_finished();
                let rfin = ctx.queues.get(rq).is_finished();
                if lfin && rfin {
                    ctx.queues.get_mut(self.out).close();
                    self.done = true;
                    return Tick::Active;
                }
                let (Some(&l), Some(&r)) =
                    (ctx.queues.get(self.lhs).peek(), ctx.queues.get(rq).peek())
                else {
                    // At least one input is empty but not both finished.
                    return Tick::PARK;
                };
                let out = match (l.is_end_item(), r.is_end_item()) {
                    (true, true) => Flit::end_item(),
                    (false, false) => {
                        let n = l.len().max(r.len()).min(MAX_FIELDS);
                        let words: Vec<HwWord> =
                            (0..n).map(|i| Self::apply(self.op, l.field(i), r.field(i))).collect();
                        Flit::data(&words)
                    }
                    // Misaligned items: resynchronize by consuming the
                    // delimiter side alone.
                    (true, false) => {
                        ctx.queues.get_mut(rq).pop();
                        return Tick::Active;
                    }
                    (false, true) => {
                        ctx.queues.get_mut(self.lhs).pop();
                        return Tick::Active;
                    }
                };
                if try_push(ctx.queues, self.out, out) {
                    ctx.queues.get_mut(self.lhs).pop();
                    ctx.queues.get_mut(rq).pop();
                }
                Tick::Active
            }
        }
    }

    fn is_done(&self) -> bool {
        self.done
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn input_queues(&self) -> Vec<QueueId> {
        match self.rhs {
            AluRhs::Queue(q) => vec![self.lhs, q],
            AluRhs::Const(_) => vec![self.lhs],
        }
    }

    fn output_queues(&self) -> Vec<QueueId> {
        vec![self.out]
    }
}
