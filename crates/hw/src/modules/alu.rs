//! Stream ALU: element-wise unary/binary operations (paper §III-C).

use super::{try_push, Ctx, Module, ModuleKind, Tick};
use crate::queue::{QueueId, QueuePool};
use crate::word::{Flit, HwWord, MAX_FIELDS};
use std::any::Any;

/// Binary ALU operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Bitwise NOT of the left operand (unary; right operand ignored).
    Not,
    /// Equality comparison producing 1/0.
    CmpEq,
    /// Less-than comparison producing 1/0.
    CmpLt,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

/// The second operand source.
#[derive(Debug, Clone, Copy)]
pub enum AluRhs {
    /// A second input queue (element-wise across matching fields).
    Queue(QueueId),
    /// An immediate constant applied to every field.
    Const(u64),
}

/// Applies `op` element-wise over flit fields, one flit per cycle.
/// Sentinel operands propagate (`op(Ins, x) = Ins`), and end-of-item
/// delimiters from two-queue configurations must align.
#[derive(Debug)]
pub struct StreamAlu {
    label: String,
    op: AluOp,
    lhs: QueueId,
    rhs: AluRhs,
    out: QueueId,
    done: bool,
}

impl StreamAlu {
    /// Creates a stream ALU.
    #[must_use]
    pub fn new(label: &str, op: AluOp, lhs: QueueId, rhs: AluRhs, out: QueueId) -> StreamAlu {
        StreamAlu { label: label.to_owned(), op, lhs, rhs, out, done: false }
    }

    /// True in constant-operand mode: exactly one pop and one push per
    /// tick, with no delimiter resynchronization. Queue mode advances its
    /// sides at data-dependent rates and does not qualify.
    pub(crate) fn is_const(&self) -> bool {
        matches!(self.rhs, AluRhs::Const(_))
    }

    fn apply(op: AluOp, a: HwWord, b: HwWord) -> HwWord {
        if a.is_marker() {
            return a;
        }
        if b.is_marker() && op != AluOp::Not {
            return b;
        }
        let (x, y) = (a.val_or_zero(), b.val_or_zero());
        let v = match op {
            AluOp::Add => x.wrapping_add(y),
            AluOp::Sub => x.wrapping_sub(y),
            AluOp::And => x & y,
            AluOp::Or => x | y,
            AluOp::Xor => x ^ y,
            AluOp::Not => !x,
            AluOp::CmpEq => u64::from(x == y),
            AluOp::CmpLt => u64::from(x < y),
            AluOp::Min => x.min(y),
            AluOp::Max => x.max(y),
        };
        HwWord::Val(v)
    }

    /// Processes `k` ticks' worth of input in one call — the block engine's
    /// run fast path (see `Filter::tick_run` for the exactness contract:
    /// every input holds at least `k` flits, the output has at least `k`
    /// free slots). Queue-mode delimiter resynchronization advances the
    /// sides unevenly, so each input keeps an independent cursor.
    pub(crate) fn tick_run(&mut self, queues: &mut QueuePool, k: usize, scratch: &mut Vec<Flit>) {
        scratch.clear();
        match self.rhs {
            AluRhs::Const(c) => {
                let mut left = k;
                while left > 0 {
                    let run = queues.get(self.lhs).head_run();
                    let m = left.min(run.len());
                    for f in &run[..m] {
                        scratch.push(if f.is_end_item() {
                            *f
                        } else {
                            let mut words = [HwWord::Empty; MAX_FIELDS];
                            for (i, w) in words.iter_mut().enumerate().take(f.len()) {
                                *w = Self::apply(self.op, f.field(i), HwWord::Val(c));
                            }
                            Flit::data(&words[..f.len()])
                        });
                    }
                    queues.get_mut(self.lhs).pop_run(m);
                    left -= m;
                }
            }
            AluRhs::Queue(rq) => {
                let (mut loff, mut roff) = (0usize, 0usize);
                for _ in 0..k {
                    let l = *queues.get(self.lhs).flit_at(loff).expect("run length guaranteed");
                    let r = *queues.get(rq).flit_at(roff).expect("run length guaranteed");
                    match (l.is_end_item(), r.is_end_item()) {
                        (true, true) => {
                            scratch.push(Flit::end_item());
                            loff += 1;
                            roff += 1;
                        }
                        (false, false) => {
                            let n = l.len().max(r.len()).min(MAX_FIELDS);
                            let mut words = [HwWord::Empty; MAX_FIELDS];
                            for (i, w) in words.iter_mut().enumerate().take(n) {
                                *w = Self::apply(self.op, l.field(i), r.field(i));
                            }
                            scratch.push(Flit::data(&words[..n]));
                            loff += 1;
                            roff += 1;
                        }
                        // Misaligned items: mirror `tick` exactly — it
                        // drains the side that has NOT reached its
                        // delimiter yet until the delimiters align.
                        (true, false) => roff += 1,
                        (false, true) => loff += 1,
                    }
                }
                queues.get_mut(self.lhs).pop_run(loff);
                queues.get_mut(rq).pop_run(roff);
            }
        }
        queues.get_mut(self.out).push_run(scratch);
    }
}

impl Module for StreamAlu {
    fn label(&self) -> &str {
        &self.label
    }

    fn kind(&self) -> ModuleKind {
        ModuleKind::Alu
    }

    fn tick(&mut self, ctx: &mut Ctx<'_>) -> Tick {
        if self.done {
            return Tick::Active;
        }
        match self.rhs {
            AluRhs::Const(c) => {
                let Some(&flit) = ctx.queues.get(self.lhs).peek() else {
                    if ctx.queues.get(self.lhs).is_finished() {
                        ctx.queues.get_mut(self.out).close();
                        self.done = true;
                        return Tick::Active;
                    }
                    return Tick::PARK;
                };
                let out = if flit.is_end_item() {
                    flit
                } else {
                    let mut words = [HwWord::Empty; MAX_FIELDS];
                    for (i, w) in words.iter_mut().enumerate().take(flit.len()) {
                        *w = Self::apply(self.op, flit.field(i), HwWord::Val(c));
                    }
                    Flit::data(&words[..flit.len()])
                };
                if try_push(ctx.queues, self.out, out) {
                    ctx.queues.get_mut(self.lhs).pop();
                }
                Tick::Active
            }
            AluRhs::Queue(rq) => {
                let lfin = ctx.queues.get(self.lhs).is_finished();
                let rfin = ctx.queues.get(rq).is_finished();
                if lfin && rfin {
                    ctx.queues.get_mut(self.out).close();
                    self.done = true;
                    return Tick::Active;
                }
                let (Some(&l), Some(&r)) =
                    (ctx.queues.get(self.lhs).peek(), ctx.queues.get(rq).peek())
                else {
                    // At least one input is empty but not both finished.
                    return Tick::PARK;
                };
                let out = match (l.is_end_item(), r.is_end_item()) {
                    (true, true) => Flit::end_item(),
                    (false, false) => {
                        let n = l.len().max(r.len()).min(MAX_FIELDS);
                        let mut words = [HwWord::Empty; MAX_FIELDS];
                        for (i, w) in words.iter_mut().enumerate().take(n) {
                            *w = Self::apply(self.op, l.field(i), r.field(i));
                        }
                        Flit::data(&words[..n])
                    }
                    // Misaligned items: resynchronize by consuming the
                    // delimiter side alone.
                    (true, false) => {
                        ctx.queues.get_mut(rq).pop();
                        return Tick::Active;
                    }
                    (false, true) => {
                        ctx.queues.get_mut(self.lhs).pop();
                        return Tick::Active;
                    }
                };
                if try_push(ctx.queues, self.out, out) {
                    ctx.queues.get_mut(self.lhs).pop();
                    ctx.queues.get_mut(rq).pop();
                }
                Tick::Active
            }
        }
    }

    fn is_done(&self) -> bool {
        self.done
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }

    fn input_queues(&self) -> Vec<QueueId> {
        match self.rhs {
            AluRhs::Queue(q) => vec![self.lhs, q],
            AluRhs::Const(_) => vec![self.lhs],
        }
    }

    fn output_queues(&self) -> Vec<QueueId> {
        vec![self.out]
    }
}
