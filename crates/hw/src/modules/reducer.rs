//! Reducer: reduction-tree aggregation (paper §III-C, Figure 6).

use super::{try_push, Ctx, Module, ModuleKind, Tick};
use crate::queue::QueueId;
use crate::word::{Flit, HwWord};
use std::any::Any;

/// Supported reduction operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Sum of values (sentinels skipped).
    Sum,
    /// Count of data flits (sentinels included — a filtered mismatch is a
    /// mismatch even when the offending base is an insertion or deletion).
    Count,
    /// Minimum value.
    Min,
    /// Maximum value.
    Max,
}

/// Aggregates the chosen field across each item; at every end-of-item
/// delimiter it emits the aggregate followed by a delimiter, then resets.
///
/// Supports masked reduction (paper §III-C): with a mask field configured,
/// only flits whose mask field is non-zero are accumulated.
#[derive(Debug)]
pub struct Reducer {
    label: String,
    op: ReduceOp,
    value_field: usize,
    mask_field: Option<usize>,
    input: QueueId,
    out: QueueId,
    acc: u64,
    saw_data: bool,
    /// Pending outputs: Some(aggregate) means "emit value, then delimiter".
    pending_value: Option<u64>,
    pending_end: bool,
    done: bool,
}

impl Reducer {
    /// Creates a reducer over `value_field`.
    #[must_use]
    pub fn new(label: &str, op: ReduceOp, value_field: usize, input: QueueId, out: QueueId) -> Reducer {
        Reducer {
            label: label.to_owned(),
            op,
            value_field,
            mask_field: None,
            input,
            out,
            acc: Reducer::init(op),
            saw_data: false,
            pending_value: None,
            pending_end: false,
            done: false,
        }
    }

    /// Adds a mask field: only flits with a non-zero mask accumulate.
    #[must_use]
    pub fn with_mask(mut self, mask_field: usize) -> Reducer {
        self.mask_field = Some(mask_field);
        self
    }

    fn init(op: ReduceOp) -> u64 {
        match op {
            ReduceOp::Sum | ReduceOp::Count | ReduceOp::Max => 0,
            ReduceOp::Min => u64::MAX,
        }
    }

    fn accumulate(&mut self, w: HwWord) {
        match self.op {
            ReduceOp::Count => self.acc += 1,
            ReduceOp::Sum => {
                if let HwWord::Val(v) = w {
                    self.acc += v;
                }
            }
            ReduceOp::Min => {
                if let HwWord::Val(v) = w {
                    self.acc = self.acc.min(v);
                }
            }
            ReduceOp::Max => {
                if let HwWord::Val(v) = w {
                    self.acc = self.acc.max(v);
                }
            }
        }
    }
}

impl Module for Reducer {
    fn label(&self) -> &str {
        &self.label
    }

    fn kind(&self) -> ModuleKind {
        ModuleKind::Reducer
    }

    fn tick(&mut self, ctx: &mut Ctx<'_>) -> Tick {
        if self.done {
            return Tick::Active;
        }
        // Drain pending outputs first (aggregate, then delimiter).
        if let Some(v) = self.pending_value {
            if try_push(ctx.queues, self.out, Flit::val(v)) {
                self.pending_value = None;
                self.pending_end = true;
            }
            return Tick::Active;
        }
        if self.pending_end {
            if try_push(ctx.queues, self.out, Flit::end_item()) {
                self.pending_end = false;
            }
            return Tick::Active;
        }
        let q = ctx.queues.get_mut(self.input);
        if let Some(flit) = q.pop() {
            if flit.is_end_item() {
                self.pending_value = Some(self.acc);
                self.acc = Reducer::init(self.op);
                self.saw_data = false;
            } else {
                let masked_out = self
                    .mask_field
                    .is_some_and(|m| flit.field(m).val_or_zero() == 0);
                if !masked_out {
                    self.accumulate(flit.field(self.value_field));
                }
                self.saw_data = true;
            }
        } else if q.is_finished() {
            if self.saw_data {
                // Robustness: an unterminated trailing item still reduces.
                self.pending_value = Some(self.acc);
                self.acc = Reducer::init(self.op);
                self.saw_data = false;
            } else {
                ctx.queues.get_mut(self.out).close();
                self.done = true;
            }
        } else {
            // Input empty and still open.
            return Tick::PARK;
        }
        Tick::Active
    }

    fn is_done(&self) -> bool {
        self.done
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }

    fn input_queues(&self) -> Vec<QueueId> {
        vec![self.input]
    }

    fn output_queues(&self) -> Vec<QueueId> {
        vec![self.out]
    }
}
