//! BinIDGen: the custom module computing BQSR bin IDs (paper §IV-D).
//!
//! For each base with quality score `q`, emits
//! `b1 = q * num_cycle_values + cycle_covariate` and
//! `b2 = q * 16 + context_id`, where the cycle covariate spans separate
//! ranges for forward and reverse reads (footnote 3) and the context ID is
//! the dinucleotide code of footnote: `AA = 0, AC = 1, ..., TT = 15`.

use super::{try_push, Ctx, Module, ModuleKind, Tick};
use crate::queue::QueueId;
use crate::word::{Flit, HwWord};
use genesis_types::base::context_id;
use genesis_types::read::cycle_covariate;
use genesis_types::Base;
use std::any::Any;

/// BinIDGen configuration.
#[derive(Debug, Clone, Copy)]
pub struct BinIdGenConfig {
    /// Read length (constant per data set; 151 in the paper's evaluation).
    pub read_len: u32,
    /// Number of cycle-covariate values (`2 * read_len`; 302 in the paper).
    pub num_cycle_values: u32,
}

impl BinIdGenConfig {
    /// Standard configuration for a read length.
    #[must_use]
    pub fn for_read_len(read_len: u32) -> BinIdGenConfig {
        BinIdGenConfig { read_len, num_cycle_values: 2 * read_len }
    }
}

/// Input: per-base flits `[pos|Ins, base, qual, seq_idx]` from ReadToBases,
/// plus a per-read flags stream (field 0: 1 for reverse-strand reads).
/// Output: `[pos, base, qual, b1, b2]`.
///
/// Bases at deleted positions (read base `Del`) and inserted bases
/// (`Ins` position) carry no recalibratable quality and are dropped,
/// matching the software BQSR's covariate semantics. The first base of a
/// read (and the base following a deletion-interrupting gap in the
/// sequence, which does not occur for adjacent read bases) has no previous
/// base: its `b2` is emitted as `Del` and skipped by the count updaters.
#[derive(Debug)]
pub struct BinIdGen {
    label: String,
    cfg: BinIdGenConfig,
    input: QueueId,
    flags: QueueId,
    out: QueueId,
    reverse: Option<bool>,
    prev_base: Option<Base>,
    done: bool,
}

impl BinIdGen {
    /// Creates the module.
    #[must_use]
    pub fn new(
        label: &str,
        cfg: BinIdGenConfig,
        input: QueueId,
        flags: QueueId,
        out: QueueId,
    ) -> BinIdGen {
        BinIdGen {
            label: label.to_owned(),
            cfg,
            input,
            flags,
            out,
            reverse: None,
            prev_base: None,
            done: false,
        }
    }
}

impl Module for BinIdGen {
    fn label(&self) -> &str {
        &self.label
    }

    fn kind(&self) -> ModuleKind {
        ModuleKind::BinIdGen
    }

    fn tick(&mut self, ctx: &mut Ctx<'_>) -> Tick {
        if self.done {
            return Tick::Active;
        }
        // Acquire the current read's flags first.
        if self.reverse.is_none() {
            match ctx.queues.get(self.flags).peek() {
                Some(f) if f.is_end_item() => {
                    ctx.queues.get_mut(self.flags).pop();
                    return Tick::Active;
                }
                Some(f) => {
                    self.reverse = Some(f.field(0).val_or_zero() != 0);
                    ctx.queues.get_mut(self.flags).pop();
                }
                None => {
                    if ctx.queues.get(self.flags).is_finished()
                        && ctx.queues.get(self.input).is_finished()
                    {
                        ctx.queues.get_mut(self.out).close();
                        self.done = true;
                        return Tick::Active;
                    }
                    // Waiting for flags (or, with flags finished, for the
                    // base stream to finish too); both queues are watched.
                    return Tick::PARK;
                }
            }
        }
        let Some(&flit) = ctx.queues.get(self.input).peek() else {
            if ctx.queues.get(self.input).is_finished() {
                ctx.queues.get_mut(self.out).close();
                self.done = true;
                return Tick::Active;
            }
            return Tick::PARK;
        };
        if flit.is_end_item() {
            if try_push(ctx.queues, self.out, flit) {
                ctx.queues.get_mut(self.input).pop();
                self.reverse = None;
                self.prev_base = None;
            }
            return Tick::Active;
        }
        let pos = flit.field(0);
        let base = flit.field(1);
        let qual = flit.field(2);
        let idx = flit.field(3);
        // Deleted positions and inserted bases are not recalibratable.
        if base.is_marker() || pos.is_marker() {
            ctx.queues.get_mut(self.input).pop();
            if !base.is_marker() {
                // An inserted base still advances the context chain.
                self.prev_base = Some(Base::from_code(base.val_or_zero() as u8));
            } else {
                self.prev_base = None;
            }
            return Tick::Active;
        }
        let q = qual.val_or_zero();
        let cur = Base::from_code(base.val_or_zero() as u8);
        let cov = cycle_covariate(
            idx.val_or_zero() as u32,
            self.cfg.read_len,
            self.reverse.expect("flags acquired"),
        );
        let b1 = q * u64::from(self.cfg.num_cycle_values) + u64::from(cov);
        let b2 = match self.prev_base.and_then(|p| context_id(p, cur)) {
            Some(ctx_id) => HwWord::Val(q * 16 + u64::from(ctx_id)),
            None => HwWord::Del,
        };
        let out = Flit::data(&[pos, base, qual, HwWord::Val(b1), b2]);
        if try_push(ctx.queues, self.out, out) {
            ctx.queues.get_mut(self.input).pop();
            self.prev_base = Some(cur);
        }
        Tick::Active
    }

    fn is_done(&self) -> bool {
        self.done
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }

    fn input_queues(&self) -> Vec<QueueId> {
        vec![self.input, self.flags]
    }

    fn output_queues(&self) -> Vec<QueueId> {
        vec![self.out]
    }
}
