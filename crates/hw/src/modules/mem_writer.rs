//! Memory Writer: stores a stream into device memory (paper §III-C).

use super::{Ctx, Module, ModuleKind, Tick};
use crate::memory::{PortId, LINE_BYTES};
use crate::queue::QueueId;
use crate::word::HwWord;
use std::any::Any;

/// Memory Writer configuration.
#[derive(Debug, Clone)]
pub struct MemWriterConfig {
    /// Line-aligned base address to write to.
    pub base_addr: u64,
    /// Element width in bytes (1, 2, 4 or 8).
    pub elem_bytes: usize,
}

/// Consumes one flit per cycle, packing field 0 of each data flit into an
/// internal line buffer; a full (or final partial) line is written to
/// memory when arbitration permits.
///
/// The writer also records per-item element counts (`row_lens`) so the host
/// can parse variable-length outputs such as MD strings — in hardware this
/// bookkeeping would occupy a second output column.
#[derive(Debug)]
pub struct MemWriter {
    label: String,
    cfg: MemWriterConfig,
    port: PortId,
    input: QueueId,
    field: usize,
    line: Vec<u8>,
    write_addr: u64,
    elems_written: u64,
    row_lens: Vec<u32>,
    cur_row: u32,
    flushing: bool,
    done: bool,
}

impl MemWriter {
    /// Creates a writer.
    ///
    /// # Panics
    ///
    /// Panics on unaligned `base_addr` or unsupported `elem_bytes`.
    #[must_use]
    pub fn new(label: &str, cfg: MemWriterConfig, port: PortId, input: QueueId) -> MemWriter {
        assert_eq!(cfg.base_addr % LINE_BYTES as u64, 0, "base address must be line-aligned");
        assert!(matches!(cfg.elem_bytes, 1 | 2 | 4 | 8), "element width must be 1/2/4/8");
        MemWriter {
            label: label.to_owned(),
            write_addr: cfg.base_addr,
            cfg,
            port,
            input,
            field: 0,
            line: Vec::with_capacity(LINE_BYTES),
            elems_written: 0,
            row_lens: Vec::new(),
            cur_row: 0,
            flushing: false,
            done: false,
        }
    }

    /// Writes flit field `i` instead of field 0 (e.g. the value field of
    /// a drained `[index, value]` stream).
    #[must_use]
    pub fn with_field(mut self, i: usize) -> MemWriter {
        self.field = i;
        self
    }

    /// Total elements written so far.
    #[must_use]
    pub fn elems_written(&self) -> u64 {
        self.elems_written
    }

    /// Per-item element counts observed on the stream.
    #[must_use]
    pub fn row_lens(&self) -> &[u32] {
        &self.row_lens
    }

    /// Encodes a word into the element byte width. Sentinels use the
    /// all-ones pattern (`Ins`) and all-ones-minus-one (`Del`).
    fn encode(&self, w: HwWord) -> u64 {
        let mask = if self.cfg.elem_bytes == 8 {
            u64::MAX
        } else {
            (1u64 << (8 * self.cfg.elem_bytes)) - 1
        };
        match w {
            HwWord::Val(v) => v & mask,
            HwWord::Ins => mask,
            HwWord::Del => mask - 1,
            HwWord::Empty => 0,
        }
    }

    fn try_flush(&mut self, ctx: &mut Ctx<'_>) -> bool {
        if self.line.is_empty() {
            return true;
        }
        if ctx.mem.try_write(self.port, self.write_addr, &self.line) {
            self.write_addr += self.line.len() as u64;
            self.line.clear();
            true
        } else {
            false
        }
    }
}

impl Module for MemWriter {
    fn label(&self) -> &str {
        &self.label
    }

    fn kind(&self) -> ModuleKind {
        ModuleKind::MemoryWriter
    }

    fn tick(&mut self, ctx: &mut Ctx<'_>) -> Tick {
        if self.done {
            return Tick::Active;
        }
        if self.flushing {
            if self.try_flush(ctx) {
                self.flushing = false;
                self.done = true;
            }
            // A refused write counted an arbitration stall.
            return Tick::Active;
        }
        // A full line must drain before more elements are accepted.
        if self.line.len() >= LINE_BYTES && !self.try_flush(ctx) {
            return Tick::Active;
        }
        let q = ctx.queues.get_mut(self.input);
        if let Some(flit) = q.pop() {
            if flit.is_end_item() {
                self.row_lens.push(self.cur_row);
                self.cur_row = 0;
            } else {
                let v = self.encode(flit.field(self.field));
                let bytes = v.to_le_bytes();
                self.line.extend_from_slice(&bytes[..self.cfg.elem_bytes]);
                self.elems_written += 1;
                self.cur_row += 1;
            }
        } else if q.is_finished() {
            if self.try_flush(ctx) {
                self.done = true;
            } else {
                self.flushing = true;
            }
        } else {
            // Input empty and still open.
            return Tick::PARK;
        }
        Tick::Active
    }

    fn is_done(&self) -> bool {
        self.done
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }

    fn input_queues(&self) -> Vec<QueueId> {
        vec![self.input]
    }

    fn output_queues(&self) -> Vec<QueueId> {
        Vec::new()
    }
}
