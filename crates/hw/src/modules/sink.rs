//! Host-side stream collector (testing and host-interface helper).

use super::{Ctx, Module, ModuleKind, Tick};
use crate::queue::{QueueId, QueuePool};
use crate::word::{Flit, HwWord};
use std::any::Any;

/// Collects every flit arriving on a queue (one per cycle) until the
/// stream closes.
#[derive(Debug)]
pub struct StreamSink {
    label: String,
    input: QueueId,
    collected: Vec<Flit>,
    done: bool,
}

impl StreamSink {
    /// Creates a sink on `input`.
    #[must_use]
    pub fn new(label: &str, input: QueueId) -> StreamSink {
        StreamSink { label: label.to_owned(), input, collected: Vec::new(), done: false }
    }

    /// All collected flits, including end-of-item delimiters.
    #[must_use]
    pub fn flits(&self) -> &[Flit] {
        &self.collected
    }

    /// First field of every data flit, in order (delimiters skipped).
    #[must_use]
    pub fn values(&self) -> Vec<HwWord> {
        self.collected.iter().filter(|f| !f.is_end_item()).map(|f| f.field(0)).collect()
    }

    /// Data flits grouped into items by the end-of-item delimiters.
    #[must_use]
    pub fn items(&self) -> Vec<Vec<Flit>> {
        let mut items = Vec::new();
        let mut cur = Vec::new();
        for f in &self.collected {
            if f.is_end_item() {
                items.push(std::mem::take(&mut cur));
            } else {
                cur.push(*f);
            }
        }
        if !cur.is_empty() {
            items.push(cur);
        }
        items
    }

    /// Collects `k` buffered input flits in one call — the block engine's
    /// run fast path (the caller guarantees at least `k` are buffered).
    pub(crate) fn tick_run(&mut self, queues: &mut QueuePool, k: usize) {
        let mut left = k;
        while left > 0 {
            let run = queues.get(self.input).head_run();
            let m = left.min(run.len());
            self.collected.extend_from_slice(&run[..m]);
            queues.get_mut(self.input).pop_run(m);
            left -= m;
        }
    }
}

impl Module for StreamSink {
    fn label(&self) -> &str {
        &self.label
    }

    fn kind(&self) -> ModuleKind {
        ModuleKind::Sink
    }

    fn tick(&mut self, ctx: &mut Ctx<'_>) -> Tick {
        if self.done {
            return Tick::Active;
        }
        let q = ctx.queues.get_mut(self.input);
        if let Some(flit) = q.pop() {
            self.collected.push(flit);
        } else if q.is_finished() {
            self.done = true;
        } else {
            // Empty and still open: nothing to do until the producer
            // pushes or closes.
            return Tick::PARK;
        }
        Tick::Active
    }

    fn is_done(&self) -> bool {
        self.done
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }

    fn input_queues(&self) -> Vec<QueueId> {
        vec![self.input]
    }

    fn output_queues(&self) -> Vec<QueueId> {
        Vec::new()
    }
}
