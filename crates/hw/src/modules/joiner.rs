//! Joiner: key-merge of two sorted streams (paper §III-C, Figure 6).

use super::{try_push, Ctx, Module, ModuleKind, Tick};
use crate::queue::QueueId;
use crate::word::{Flit, HwWord, MAX_FIELDS};
use std::any::Any;

/// Join semantics (paper §III-C): inner discards unmatched flits, left
/// keeps unmatched flits from the first queue, outer never discards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// Discard flits without a matching key.
    Inner,
    /// Keep unmatched flits from the first (left) queue.
    Left,
    /// Never discard flits.
    Outer,
}

/// Merges two item-aligned streams whose flits carry an ascending key in
/// field 0. Matching keys concatenate data fields; unmatched flits are
/// emitted with `Del` padding or discarded per [`JoinKind`].
///
/// Genomics extension: a left flit whose key is the `Ins` sentinel (an
/// inserted base from ReadToBases) never matches — it is emitted padded for
/// left/outer joins and discarded for inner joins, without consuming the
/// right stream.
#[derive(Debug)]
pub struct Joiner {
    label: String,
    kind: JoinKind,
    left: QueueId,
    right: QueueId,
    out: QueueId,
    /// Data fields after the key on the left stream (for padding).
    left_data_fields: usize,
    /// Data fields after the key on the right stream (for padding).
    right_data_fields: usize,
    done: bool,
}

enum Head {
    Data(Flit),
    End,
    /// Stream closed and drained: behaves like a permanent delimiter.
    Finished,
    /// Nothing available this cycle.
    Stall,
}

impl Joiner {
    /// Creates a joiner. `left_data_fields`/`right_data_fields` describe
    /// how many data fields follow the key on each input, for padding
    /// unmatched outputs.
    #[must_use]
    pub fn new(
        label: &str,
        kind: JoinKind,
        left: QueueId,
        right: QueueId,
        out: QueueId,
        left_data_fields: usize,
        right_data_fields: usize,
    ) -> Joiner {
        Joiner {
            label: label.to_owned(),
            kind,
            left,
            right,
            out,
            left_data_fields,
            right_data_fields,
            done: false,
        }
    }

    fn head(ctx: &Ctx<'_>, q: QueueId) -> Head {
        let queue = ctx.queues.get(q);
        match queue.peek() {
            Some(f) if f.is_end_item() => Head::End,
            Some(f) => Head::Data(*f),
            None if queue.is_closed() => Head::Finished,
            None => Head::Stall,
        }
    }

    /// Output for an unmatched left flit: key + left data + right padding.
    fn left_padded(&self, f: &Flit) -> Flit {
        let mut fields = [HwWord::Del; MAX_FIELDS];
        fields[..f.len()].copy_from_slice(f.fields());
        Flit::data(&fields[..f.len() + self.right_data_fields])
    }

    /// Output for an unmatched right flit: key + left padding + right data.
    fn right_padded(&self, f: &Flit) -> Flit {
        let mut fields = [HwWord::Del; MAX_FIELDS];
        fields[0] = f.field(0);
        let mut n = 1 + self.left_data_fields;
        for &w in f.fields().iter().skip(1) {
            fields[n] = w;
            n += 1;
        }
        Flit::data(&fields[..n])
    }

    /// Merged output for matching keys: key + left data + right data.
    fn merged(l: &Flit, r: &Flit) -> Flit {
        let mut fields = [HwWord::Empty; MAX_FIELDS];
        fields[..l.len()].copy_from_slice(l.fields());
        let mut n = l.len();
        for &w in r.fields().iter().skip(1) {
            fields[n] = w;
            n += 1;
        }
        Flit::data(&fields[..n])
    }
}

impl Module for Joiner {
    fn label(&self) -> &str {
        &self.label
    }

    fn kind(&self) -> ModuleKind {
        ModuleKind::Joiner
    }

    #[allow(clippy::too_many_lines)]
    fn tick(&mut self, ctx: &mut Ctx<'_>) -> Tick {
        if self.done {
            return Tick::Active;
        }
        let lq = ctx.queues.get(self.left);
        let rq = ctx.queues.get(self.right);
        if lq.is_finished() && rq.is_finished() {
            ctx.queues.get_mut(self.out).close();
            self.done = true;
            return Tick::Active;
        }
        let lh = Self::head(ctx, self.left);
        let rh = Self::head(ctx, self.right);
        match (lh, rh) {
            // An open-but-empty side: wait for data or a close, watching
            // precisely the starved queue (a push to — or close of — it is
            // the only event that changes this head).
            (Head::Stall, _) => return Tick::park_on(self.left),
            (_, Head::Stall) => return Tick::park_on(self.right),
            // Both items complete: forward one delimiter.
            (Head::End | Head::Finished, Head::End | Head::Finished) => {
                if try_push(ctx.queues, self.out, Flit::end_item()) {
                    // Pop real delimiters; Finished sides have nothing to pop.
                    if ctx.queues.get(self.left).peek().is_some_and(Flit::is_end_item) {
                        ctx.queues.get_mut(self.left).pop();
                    }
                    if ctx.queues.get(self.right).peek().is_some_and(Flit::is_end_item) {
                        ctx.queues.get_mut(self.right).pop();
                    }
                }
            }
            // Left item done; drain the right side of this item.
            (Head::End | Head::Finished, Head::Data(r)) => match self.kind {
                JoinKind::Inner | JoinKind::Left => {
                    ctx.queues.get_mut(self.right).pop();
                    let _ = r;
                }
                JoinKind::Outer => {
                    let out = self.right_padded(&r);
                    if try_push(ctx.queues, self.out, out) {
                        ctx.queues.get_mut(self.right).pop();
                    }
                }
            },
            // Right item done; drain the left side of this item.
            (Head::Data(l), Head::End | Head::Finished) => match self.kind {
                JoinKind::Inner => {
                    ctx.queues.get_mut(self.left).pop();
                }
                JoinKind::Left | JoinKind::Outer => {
                    let out = self.left_padded(&l);
                    if try_push(ctx.queues, self.out, out) {
                        ctx.queues.get_mut(self.left).pop();
                    }
                }
            },
            (Head::Data(l), Head::Data(r)) => {
                let lk = l.field(0);
                let rk = r.field(0);
                // Inserted-base flits never match.
                if lk.is_marker() {
                    match self.kind {
                        JoinKind::Inner => {
                            ctx.queues.get_mut(self.left).pop();
                        }
                        JoinKind::Left | JoinKind::Outer => {
                            let out = self.left_padded(&l);
                            if try_push(ctx.queues, self.out, out) {
                                ctx.queues.get_mut(self.left).pop();
                            }
                        }
                    }
                    return Tick::Active;
                }
                if rk.is_marker() {
                    // Malformed right keys are discarded.
                    ctx.queues.get_mut(self.right).pop();
                    return Tick::Active;
                }
                let (lv, rv) = (lk.val_or_zero(), rk.val_or_zero());
                if lv == rv {
                    let out = Self::merged(&l, &r);
                    if try_push(ctx.queues, self.out, out) {
                        ctx.queues.get_mut(self.left).pop();
                        ctx.queues.get_mut(self.right).pop();
                    }
                } else if lv < rv {
                    match self.kind {
                        JoinKind::Inner => {
                            ctx.queues.get_mut(self.left).pop();
                        }
                        JoinKind::Left | JoinKind::Outer => {
                            let out = self.left_padded(&l);
                            if try_push(ctx.queues, self.out, out) {
                                ctx.queues.get_mut(self.left).pop();
                            }
                        }
                    }
                } else {
                    match self.kind {
                        JoinKind::Inner | JoinKind::Left => {
                            ctx.queues.get_mut(self.right).pop();
                        }
                        JoinKind::Outer => {
                            let out = self.right_padded(&r);
                            if try_push(ctx.queues, self.out, out) {
                                ctx.queues.get_mut(self.right).pop();
                            }
                        }
                    }
                }
            }
        }
        // Every non-stall arm pops, pushes, or counts a refused push.
        Tick::Active
    }

    fn is_done(&self) -> bool {
        self.done
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }

    fn input_queues(&self) -> Vec<QueueId> {
        vec![self.left, self.right]
    }

    fn output_queues(&self) -> Vec<QueueId> {
        vec![self.out]
    }
}
