//! Filter: predicate selection on a stream (paper §III-C, Figure 6).

use super::{try_push, Ctx, Module, ModuleKind, Tick};
use crate::queue::{QueueId, QueuePool};
use crate::word::{Flit, HwWord};
use std::any::Any;

/// One comparison operand: a flit field or an immediate constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operand {
    /// Flit field by index.
    Field(usize),
    /// Immediate constant.
    Const(u64),
}

/// Comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater or equal.
    Ge,
    /// True when the left operand is a plain value (not `Ins`/`Del`): the
    /// tag check used to exclude indel flits from quality accumulation.
    IsVal,
}

/// A filter predicate: `lhs op rhs`.
///
/// Sentinel semantics: an `Ins`/`Del` operand compares *unequal* to
/// everything (so `Ne` passes and `Eq` drops), and never satisfies ordered
/// comparisons. This is what makes the metadata pipeline's
/// "read bp ≠ ref bp" filter count insertions and deletions as
/// mismatches, as the paper's NM definition requires (§IV-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Predicate {
    /// Left operand.
    pub lhs: Operand,
    /// Operator.
    pub op: CmpOp,
    /// Right operand.
    pub rhs: Operand,
}

impl Predicate {
    /// `field(i) op field(j)`.
    #[must_use]
    pub fn fields(i: usize, op: CmpOp, j: usize) -> Predicate {
        Predicate { lhs: Operand::Field(i), op, rhs: Operand::Field(j) }
    }

    /// `field(i) op constant`.
    #[must_use]
    pub fn field_const(i: usize, op: CmpOp, c: u64) -> Predicate {
        Predicate { lhs: Operand::Field(i), op, rhs: Operand::Const(c) }
    }

    /// Passes flits whose field `i` carries a plain value (drops the
    /// `Ins`/`Del` sentinels).
    #[must_use]
    pub fn field_is_value(i: usize) -> Predicate {
        Predicate { lhs: Operand::Field(i), op: CmpOp::IsVal, rhs: Operand::Const(0) }
    }

    fn resolve(op: Operand, fields: &dyn Fn(usize) -> HwWord) -> HwWord {
        match op {
            Operand::Field(i) => fields(i),
            Operand::Const(c) => HwWord::Val(c),
        }
    }

    /// Evaluates the predicate against a flit's fields.
    #[must_use]
    pub fn eval(&self, fields: &dyn Fn(usize) -> HwWord) -> bool {
        let l = Self::resolve(self.lhs, fields);
        let r = Self::resolve(self.rhs, fields);
        if self.op == CmpOp::IsVal {
            return matches!(l, HwWord::Val(_));
        }
        match (l, r) {
            (HwWord::Val(a), HwWord::Val(b)) => match self.op {
                CmpOp::Eq => a == b,
                CmpOp::Ne => a != b,
                CmpOp::Lt => a < b,
                CmpOp::Le => a <= b,
                CmpOp::Gt => a > b,
                CmpOp::Ge => a >= b,
                CmpOp::IsVal => unreachable!("handled above"),
            },
            // Any sentinel/empty operand: unequal to everything.
            _ => matches!(self.op, CmpOp::Ne),
        }
    }
}

/// Passes data flits satisfying the predicate, drops the rest; end-of-item
/// delimiters always pass through.
#[derive(Debug)]
pub struct Filter {
    label: String,
    pred: Predicate,
    input: QueueId,
    out: QueueId,
    passed: u64,
    dropped: u64,
    done: bool,
}

impl Filter {
    /// Creates a filter.
    #[must_use]
    pub fn new(label: &str, pred: Predicate, input: QueueId, out: QueueId) -> Filter {
        Filter { label: label.to_owned(), pred, input, out, passed: 0, dropped: 0, done: false }
    }

    /// Number of flits that satisfied the predicate.
    #[must_use]
    pub fn passed(&self) -> u64 {
        self.passed
    }

    /// Number of flits dropped.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Processes `k` buffered input flits in one call — the block engine's
    /// run fast path. Exactness contract (enforced by the caller's window
    /// computation): at least `k` flits are buffered on the input and at
    /// least `k` slots are free on the output, so none of the `k` replaced
    /// per-cycle ticks could have stalled, parked, or closed a queue.
    pub(crate) fn tick_run(&mut self, queues: &mut QueuePool, k: usize, scratch: &mut Vec<Flit>) {
        scratch.clear();
        let mut left = k;
        while left > 0 {
            let run = queues.get(self.input).head_run();
            let m = left.min(run.len());
            for f in &run[..m] {
                if f.is_end_item() {
                    scratch.push(*f);
                } else if self.pred.eval(&|i| f.field(i)) {
                    self.passed += 1;
                    scratch.push(*f);
                } else {
                    self.dropped += 1;
                }
            }
            queues.get_mut(self.input).pop_run(m);
            left -= m;
        }
        queues.get_mut(self.out).push_run(scratch);
    }
}

impl Module for Filter {
    fn label(&self) -> &str {
        &self.label
    }

    fn kind(&self) -> ModuleKind {
        ModuleKind::Filter
    }

    fn tick(&mut self, ctx: &mut Ctx<'_>) -> Tick {
        if self.done {
            return Tick::Active;
        }
        let Some(&flit) = ctx.queues.get(self.input).peek() else {
            if ctx.queues.get(self.input).is_finished() {
                ctx.queues.get_mut(self.out).close();
                self.done = true;
                return Tick::Active;
            }
            return Tick::PARK;
        };
        if flit.is_end_item() {
            if try_push(ctx.queues, self.out, flit) {
                ctx.queues.get_mut(self.input).pop();
            }
            return Tick::Active;
        }
        if self.pred.eval(&|i| flit.field(i)) {
            if try_push(ctx.queues, self.out, flit) {
                ctx.queues.get_mut(self.input).pop();
                self.passed += 1;
            }
        } else {
            ctx.queues.get_mut(self.input).pop();
            self.dropped += 1;
        }
        Tick::Active
    }

    fn is_done(&self) -> bool {
        self.done
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }

    fn input_queues(&self) -> Vec<QueueId> {
        vec![self.input]
    }

    fn output_queues(&self) -> Vec<QueueId> {
        vec![self.out]
    }
}
