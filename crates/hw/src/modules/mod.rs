//! The Genesis hardware module library (paper §III-C, Figure 6).
//!
//! Every module implements [`Module`]: one [`Module::tick`] call per clock
//! cycle, consuming at most one flit per input queue and producing at most
//! one flit per output queue, with explicit backpressure through the
//! bounded queues.

use crate::memory::MemorySystem;
use crate::queue::{QueueId, QueuePool};
use crate::spm::{SpmId, SpmPool};
use crate::word::Flit;
use std::any::Any;
use std::fmt;

pub mod alu;
pub mod binidgen;
pub mod fanout;
pub mod filter;
pub mod joiner;
pub mod mdgen;
pub mod mem_reader;
pub mod mem_writer;
pub mod read_to_bases;
pub mod reducer;
pub mod sink;
pub mod source;
pub mod spm_reader;
pub mod spm_updater;
pub mod zip;

/// Kind tag used by the FPGA resource model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModuleKind {
    /// Streams a column from device memory.
    MemoryReader,
    /// Writes a stream to device memory.
    MemoryWriter,
    /// Key-merge of two sorted streams.
    Joiner,
    /// Predicate filter.
    Filter,
    /// Reduction-tree aggregation.
    Reducer,
    /// Streaming ALU.
    Alu,
    /// Scratchpad reader.
    SpmReader,
    /// Scratchpad updater (with read-modify-write interlock).
    SpmUpdater,
    /// The `ReadExplode` hardware (genomics module).
    ReadToBases,
    /// MD-tag generator (custom genomics module).
    MdGen,
    /// BQSR bin-id generator (custom genomics module).
    BinIdGen,
    /// One-to-many stream replication.
    Fanout,
    /// Many-to-one lock-step field concatenation (row assembly).
    Zip,
    /// Host-side stream injector (testing / host interface).
    Source,
    /// Host-side stream collector (testing / host interface).
    Sink,
}

/// Outcome of one [`Module::tick`], consumed by the event-driven engine
/// (see `System::run`).
///
/// The contract behind [`Tick::Park`] is strict: a module may report it
/// only when the tick that just ran was a **pure no-op** — no flits moved,
/// no queues closed, no memory or scratchpad traffic, no stall counters
/// incremented, no internal state changed — *and* every future tick would
/// also be a no-op until either a watched queue (one listed in
/// [`Module::input_queues`]/[`Module::output_queues`]) is mutated by
/// another module or the `wake_at` cycle arrives. Under that invariant the
/// scheduler can skip the module's ticks without observable effect, which
/// is what keeps the event-driven engine bit-identical to the
/// tick-everything reference engine. Ticks that count a stall (a refused
/// push, an arbitration loss, a RAW hazard) must report [`Tick::Active`]:
/// the naive engine re-counts those stalls every cycle, so the module must
/// keep ticking to match.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tick {
    /// The module did (or may have done) observable work this cycle.
    Active,
    /// The tick was a pure no-op; skip this module until the watched state
    /// changes.
    Park {
        /// Earliest cycle at which a time-based event (a pending memory
        /// response) can unblock the module, when one exists. Watched
        /// queue activity still wakes the module earlier.
        wake_at: Option<u64>,
        /// Which queue events can make a future tick do work again. The
        /// narrower the watch, the fewer spurious wake-ups: a module
        /// starved on one specific input should name it, so unrelated
        /// traffic (e.g. a consumer draining the module's output queue)
        /// does not re-tick it for nothing.
        watch: Watch,
    },
}

/// Wake condition of a parked module (see [`Tick::Park`]).
///
/// A module must choose a watch that covers *every* queue event able to
/// change its next tick from a no-op into work — over-watching merely
/// costs spurious wake-ups, but under-watching stalls the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Watch {
    /// Any mutation of any queue in [`Module::input_queues`] (the common
    /// input-starved park).
    Inputs,
    /// Any mutation of any queue in [`Module::output_queues`] (the
    /// output-full park of modules that do not count a backpressure stall,
    /// e.g. `Fanout`).
    Outputs,
    /// Mutation of exactly this queue (which must be one of the module's
    /// declared input or output queues).
    Queue(QueueId),
    /// No queue event can help; only the timed `wake_at` (a pending memory
    /// response) unblocks the module.
    Timer,
    /// Like [`Watch::Timer`], but the wait is a tiered-memory page
    /// spill/fill (`SpmPool::tier_wait` returned a ready cycle). Stall
    /// attribution lands in the `stall:spill` bucket instead of
    /// `stall:memory`.
    Spill,
}

impl Tick {
    /// Shorthand for an input-starved park with no timed wake-up.
    pub const PARK: Tick = Tick::Park { wake_at: None, watch: Watch::Inputs };

    /// Park until precisely `q` is mutated.
    #[must_use]
    pub fn park_on(q: QueueId) -> Tick {
        Tick::Park { wake_at: None, watch: Watch::Queue(q) }
    }
}

/// Everything a module can touch during a cycle.
#[derive(Debug)]
pub struct Ctx<'a> {
    /// All queues.
    pub queues: &'a mut QueuePool,
    /// All scratchpads.
    pub spms: &'a mut SpmPool,
    /// The device memory system.
    pub mem: &'a mut MemorySystem,
    /// Current cycle number.
    pub cycle: u64,
}

/// One hardware module instance.
///
/// Modules are `Send` so a whole [`crate::System`] can execute on a worker
/// thread behind the non-blocking host API (paper §III-E).
pub trait Module: fmt::Debug + Send {
    /// Instance label for diagnostics.
    fn label(&self) -> &str;

    /// Kind tag for the resource model.
    fn kind(&self) -> ModuleKind;

    /// Advances one clock cycle and reports whether the module is still
    /// doing observable work (see [`Tick`] for the park contract).
    fn tick(&mut self, ctx: &mut Ctx<'_>) -> Tick;

    /// True once the module has finished all work and flushed all outputs.
    fn is_done(&self) -> bool;

    /// Downcasting support (used to read results out of sinks/writers).
    fn as_any(&self) -> &dyn Any;

    /// Consumes the boxed module, yielding it as [`Any`]. The block engine
    /// uses this to rebuild its devirtualized dispatch table from the
    /// concrete module types (`crate::engine::ModuleSlot`).
    fn into_any(self: Box<Self>) -> Box<dyn Any>;

    /// Scratchpads this module accesses (module-graph partitioning for the
    /// parallel block engine). Modules that never touch a scratchpad keep
    /// the empty default.
    fn spm_ids(&self) -> Vec<SpmId> {
        Vec::new()
    }

    /// Queues this module consumes (for pipeline visualization).
    fn input_queues(&self) -> Vec<QueueId> {
        Vec::new()
    }

    /// Queues this module produces into (for pipeline visualization).
    fn output_queues(&self) -> Vec<QueueId> {
        Vec::new()
    }
}

/// Pushes `flit` to queue `q` if space permits; returns whether it was
/// accepted and records a backpressure stall otherwise.
pub(crate) fn try_push(queues: &mut QueuePool, q: QueueId, flit: Flit) -> bool {
    let queue = queues.get_mut(q);
    if queue.can_push() {
        queue.push(flit);
        true
    } else {
        queue.note_full_stall();
        false
    }
}

/// True when every queue in `qs` can accept a flit this cycle.
pub(crate) fn all_can_push(queues: &QueuePool, qs: &[QueueId]) -> bool {
    qs.iter().all(|&q| queues.get(q).can_push())
}
