//! The Genesis hardware module library (paper §III-C, Figure 6).
//!
//! Every module implements [`Module`]: one [`Module::tick`] call per clock
//! cycle, consuming at most one flit per input queue and producing at most
//! one flit per output queue, with explicit backpressure through the
//! bounded queues.

use crate::memory::MemorySystem;
use crate::queue::{QueueId, QueuePool};
use crate::spm::SpmPool;
use crate::word::Flit;
use std::any::Any;
use std::fmt;

pub mod alu;
pub mod binidgen;
pub mod fanout;
pub mod filter;
pub mod joiner;
pub mod mdgen;
pub mod mem_reader;
pub mod mem_writer;
pub mod read_to_bases;
pub mod reducer;
pub mod sink;
pub mod source;
pub mod spm_reader;
pub mod spm_updater;

/// Kind tag used by the FPGA resource model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModuleKind {
    /// Streams a column from device memory.
    MemoryReader,
    /// Writes a stream to device memory.
    MemoryWriter,
    /// Key-merge of two sorted streams.
    Joiner,
    /// Predicate filter.
    Filter,
    /// Reduction-tree aggregation.
    Reducer,
    /// Streaming ALU.
    Alu,
    /// Scratchpad reader.
    SpmReader,
    /// Scratchpad updater (with read-modify-write interlock).
    SpmUpdater,
    /// The `ReadExplode` hardware (genomics module).
    ReadToBases,
    /// MD-tag generator (custom genomics module).
    MdGen,
    /// BQSR bin-id generator (custom genomics module).
    BinIdGen,
    /// One-to-many stream replication.
    Fanout,
    /// Host-side stream injector (testing / host interface).
    Source,
    /// Host-side stream collector (testing / host interface).
    Sink,
}

/// Everything a module can touch during a cycle.
#[derive(Debug)]
pub struct Ctx<'a> {
    /// All queues.
    pub queues: &'a mut QueuePool,
    /// All scratchpads.
    pub spms: &'a mut SpmPool,
    /// The device memory system.
    pub mem: &'a mut MemorySystem,
    /// Current cycle number.
    pub cycle: u64,
}

/// One hardware module instance.
///
/// Modules are `Send` so a whole [`crate::System`] can execute on a worker
/// thread behind the non-blocking host API (paper §III-E).
pub trait Module: fmt::Debug + Send {
    /// Instance label for diagnostics.
    fn label(&self) -> &str;

    /// Kind tag for the resource model.
    fn kind(&self) -> ModuleKind;

    /// Advances one clock cycle.
    fn tick(&mut self, ctx: &mut Ctx<'_>);

    /// True once the module has finished all work and flushed all outputs.
    fn is_done(&self) -> bool;

    /// Downcasting support (used to read results out of sinks/writers).
    fn as_any(&self) -> &dyn Any;

    /// Queues this module consumes (for pipeline visualization).
    fn input_queues(&self) -> Vec<QueueId> {
        Vec::new()
    }

    /// Queues this module produces into (for pipeline visualization).
    fn output_queues(&self) -> Vec<QueueId> {
        Vec::new()
    }
}

/// Pushes `flit` to queue `q` if space permits; returns whether it was
/// accepted and records a backpressure stall otherwise.
pub(crate) fn try_push(queues: &mut QueuePool, q: QueueId, flit: Flit) -> bool {
    let queue = queues.get_mut(q);
    if queue.can_push() {
        queue.push(flit);
        true
    } else {
        queue.note_full_stall();
        false
    }
}

/// True when every queue in `qs` can accept a flit this cycle.
pub(crate) fn all_can_push(queues: &QueuePool, qs: &[QueueId]) -> bool {
    qs.iter().all(|&q| queues.get(q).can_push())
}
