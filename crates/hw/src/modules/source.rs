//! Host-side stream injector (testing and host-interface helper).

use super::{try_push, Ctx, Module, ModuleKind, Tick};
use crate::queue::{QueueId, QueuePool};
use crate::word::{Flit, HwWord};
use std::any::Any;
use std::collections::VecDeque;

/// Feeds a pre-built flit sequence into a queue at one flit per cycle, then
/// closes the queue. Used by unit tests and by host-side injection paths.
#[derive(Debug)]
pub struct StreamSource {
    label: String,
    out: QueueId,
    pending: VecDeque<Flit>,
    done: bool,
}

impl StreamSource {
    /// Creates a source from explicit flits.
    #[must_use]
    pub fn from_flits(label: &str, out: QueueId, flits: Vec<Flit>) -> StreamSource {
        StreamSource { label: label.to_owned(), out, pending: flits.into(), done: false }
    }

    /// Creates a source from items of plain values: each item's values are
    /// emitted one per cycle followed by an end-of-item delimiter.
    #[must_use]
    pub fn from_items(label: &str, out: QueueId, items: &[Vec<u64>]) -> StreamSource {
        let mut flits = Vec::new();
        for item in items {
            for &v in item {
                flits.push(Flit::val(v));
            }
            flits.push(Flit::end_item());
        }
        StreamSource::from_flits(label, out, flits)
    }

    /// Creates a source of multi-field items.
    #[must_use]
    pub fn from_field_items(label: &str, out: QueueId, items: &[Vec<Vec<HwWord>>]) -> StreamSource {
        let mut flits = Vec::new();
        for item in items {
            for row in item {
                flits.push(Flit::data(row));
            }
            flits.push(Flit::end_item());
        }
        StreamSource::from_flits(label, out, flits)
    }

    /// Emits up to `k` pending flits in one call — the block engine's run
    /// fast path (the caller guarantees at least `k` free output slots).
    /// Mirrors `k` per-cycle ticks exactly: pushing the last pending flit
    /// closes the output in the same step, and the remaining no-op ticks of
    /// an exhausted source are elided.
    pub(crate) fn tick_run(&mut self, queues: &mut QueuePool, k: usize) {
        let p = k.min(self.pending.len());
        let (a, b) = self.pending.as_slices();
        let q = queues.get_mut(self.out);
        if p <= a.len() {
            q.push_run(&a[..p]);
        } else {
            q.push_run(a);
            q.push_run(&b[..p - a.len()]);
        }
        self.pending.drain(..p);
        if self.pending.is_empty() {
            queues.get_mut(self.out).close();
            self.done = true;
        }
    }

    /// Flits still waiting to be emitted — the window planner's supply cap
    /// (a window longer than this would run the source past exhaustion).
    pub(crate) fn pending_len(&self) -> usize {
        self.pending.len()
    }
}

impl Module for StreamSource {
    fn label(&self) -> &str {
        &self.label
    }

    fn kind(&self) -> ModuleKind {
        ModuleKind::Source
    }

    fn tick(&mut self, ctx: &mut Ctx<'_>) -> Tick {
        if self.done {
            return Tick::Active;
        }
        if let Some(&flit) = self.pending.front() {
            if try_push(ctx.queues, self.out, flit) {
                self.pending.pop_front();
            }
        }
        if self.pending.is_empty() {
            ctx.queues.get_mut(self.out).close();
            self.done = true;
        }
        // Either a flit moved, a refused push counted a stall, or the
        // queue closed: always observable work.
        Tick::Active
    }

    fn is_done(&self) -> bool {
        self.done
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }

    fn input_queues(&self) -> Vec<QueueId> {
        Vec::new()
    }

    fn output_queues(&self) -> Vec<QueueId> {
        vec![self.out]
    }
}
