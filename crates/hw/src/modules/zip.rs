//! Zip: lock-step field concatenation of item-aligned streams.
//!
//! The query compiler (paper §III-D) maps a plan node to one module and a
//! plan edge to one queue, but the *row* of a relational stream is spread
//! across several physical streams: one Memory Reader per column. Zip is
//! the structural glue that recombines them — it pops one flit from every
//! input in the same cycle and emits a single flit whose fields are the
//! selected fields of each input, in input order. With a single input it
//! doubles as a field projector/reorderer (the pure-column `SELECT` case).

use super::{all_can_push, Ctx, Module, ModuleKind, Tick};
use crate::queue::{QueueId, QueuePool};
use crate::word::{Flit, HwWord, MAX_FIELDS};
use std::any::Any;

/// One Zip input: a queue plus which of its flit fields to keep.
#[derive(Debug, Clone)]
pub struct ZipInput {
    /// The input queue.
    pub queue: QueueId,
    /// Field indices of this input's flits copied to the output, in order.
    pub fields: Vec<usize>,
}

impl ZipInput {
    /// Selects `fields` of `queue`'s flits.
    #[must_use]
    pub fn new(queue: QueueId, fields: Vec<usize>) -> ZipInput {
        ZipInput { queue, fields }
    }
}

/// Zips equal-length streams into one stream of concatenated flits.
///
/// All inputs must carry the same number of data flits (the compiler
/// guarantees this by construction: every column stream of one table scan
/// has the table's row count). End-of-item delimiters are forwarded when
/// every head is a delimiter and consumed alone otherwise (resync), the
/// same convention the two-queue [`crate::modules::alu::StreamAlu`] uses.
/// The output closes as soon as any input finishes.
#[derive(Debug)]
pub struct Zip {
    label: String,
    inputs: Vec<ZipInput>,
    out: QueueId,
    drop_ends: bool,
    done: bool,
}

impl Zip {
    /// Creates a zip.
    ///
    /// # Panics
    ///
    /// Panics when `inputs` is empty or the selected fields exceed
    /// [`MAX_FIELDS`].
    #[must_use]
    pub fn new(label: &str, inputs: Vec<ZipInput>, out: QueueId) -> Zip {
        assert!(!inputs.is_empty(), "zip needs at least one input");
        let width: usize = inputs.iter().map(|i| i.fields.len()).sum();
        assert!(width <= MAX_FIELDS, "zip output of {width} fields exceeds {MAX_FIELDS}");
        Zip { label: label.to_owned(), inputs, out, drop_ends: false, done: false }
    }

    /// Consumes aligned end-of-item delimiters without forwarding them,
    /// turning an item-delimited stream (one item per read, as
    /// [`crate::modules::read_to_bases::ReadToBases`] emits) into a plain
    /// row stream the relational modules downstream expect.
    #[must_use]
    pub fn with_drop_ends(mut self) -> Zip {
        self.drop_ends = true;
        self
    }

    /// Number of input queues (the block engine windows a zip only while
    /// its per-input cursors fit the fixed-size array in `tick_run`).
    pub(crate) fn fan_in(&self) -> usize {
        self.inputs.len()
    }

    /// Processes `k` ticks' worth of input in one call — the block engine's
    /// run fast path (see `Filter::tick_run` for the exactness contract:
    /// every input holds at least `k` flits, the output has at least `k`
    /// free slots). Delimiter resynchronization can advance the inputs
    /// unevenly, so each keeps an independent cursor.
    pub(crate) fn tick_run(&mut self, queues: &mut QueuePool, k: usize, scratch: &mut Vec<Flit>) {
        scratch.clear();
        let n_in = self.inputs.len();
        // The constructor bounds the output width (and thus the input
        // count) at MAX_FIELDS.
        let mut off = [0usize; MAX_FIELDS];
        for _ in 0..k {
            let mut ends = 0usize;
            for (i, inp) in self.inputs.iter().enumerate() {
                let f = queues.get(inp.queue).flit_at(off[i]).expect("run length guaranteed");
                ends += usize::from(f.is_end_item());
            }
            if ends > 0 && ends < n_in {
                // Misaligned items: consume the delimiter sides alone.
                for (i, inp) in self.inputs.iter().enumerate() {
                    let f = queues.get(inp.queue).flit_at(off[i]).expect("checked above");
                    if f.is_end_item() {
                        off[i] += 1;
                    }
                }
                continue;
            }
            if ends == n_in {
                if !self.drop_ends {
                    scratch.push(Flit::end_item());
                }
            } else {
                let mut fields = [HwWord::Empty; MAX_FIELDS];
                let mut n = 0usize;
                for (i, inp) in self.inputs.iter().enumerate() {
                    let head =
                        *queues.get(inp.queue).flit_at(off[i]).expect("checked above");
                    for &fi in &inp.fields {
                        fields[n] = head.field(fi);
                        n += 1;
                    }
                }
                scratch.push(Flit::data(&fields[..n]));
            }
            for o in &mut off[..n_in] {
                *o += 1;
            }
        }
        for (i, inp) in self.inputs.iter().enumerate() {
            queues.get_mut(inp.queue).pop_run(off[i]);
        }
        queues.get_mut(self.out).push_run(scratch);
    }
}

impl Module for Zip {
    fn label(&self) -> &str {
        &self.label
    }

    fn kind(&self) -> ModuleKind {
        ModuleKind::Zip
    }

    fn tick(&mut self, ctx: &mut Ctx<'_>) -> Tick {
        if self.done {
            return Tick::Active;
        }
        if self.inputs.iter().any(|i| ctx.queues.get(i.queue).is_finished()) {
            ctx.queues.get_mut(self.out).close();
            self.done = true;
            return Tick::Active;
        }
        let mut ends = 0usize;
        for i in &self.inputs {
            match ctx.queues.get(i.queue).peek() {
                Some(f) => ends += usize::from(f.is_end_item()),
                // Starved on at least one input; nothing moved.
                None => return Tick::PARK,
            }
        }
        if ends > 0 && ends < self.inputs.len() {
            // Misaligned items: consume the delimiter sides alone.
            for i in &self.inputs {
                if ctx.queues.get(i.queue).peek().is_some_and(Flit::is_end_item) {
                    ctx.queues.get_mut(i.queue).pop();
                }
            }
            return Tick::Active;
        }
        if ends == self.inputs.len() && self.drop_ends {
            // Aligned delimiters are consumed silently in drop-ends mode.
            for i in &self.inputs {
                ctx.queues.get_mut(i.queue).pop();
            }
            return Tick::Active;
        }
        let flit = if ends == self.inputs.len() {
            Flit::end_item()
        } else {
            // Every head was peeked non-empty above; the constructor bounds
            // the total selected width at MAX_FIELDS.
            let mut fields = [HwWord::Empty; MAX_FIELDS];
            let mut n = 0usize;
            for input in &self.inputs {
                let head = *ctx.queues.get(input.queue).peek().expect("peeked above");
                for &i in &input.fields {
                    fields[n] = head.field(i);
                    n += 1;
                }
            }
            Flit::data(&fields[..n])
        };
        if all_can_push(ctx.queues, &[self.out]) {
            ctx.queues.get_mut(self.out).push(flit);
            for i in &self.inputs {
                ctx.queues.get_mut(i.queue).pop();
            }
        } else {
            // A refused push must keep the module ticking (stall counting).
            ctx.queues.get_mut(self.out).note_full_stall();
        }
        Tick::Active
    }

    fn is_done(&self) -> bool {
        self.done
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }

    fn input_queues(&self) -> Vec<QueueId> {
        self.inputs.iter().map(|i| i.queue).collect()
    }

    fn output_queues(&self) -> Vec<QueueId> {
        vec![self.out]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modules::sink::StreamSink;
    use crate::modules::source::StreamSource;
    use crate::System;

    fn run_zip(inputs: Vec<(Vec<Flit>, Vec<usize>)>) -> Vec<Flit> {
        let mut sys = System::new();
        let mut zin = Vec::new();
        for (i, (flits, fields)) in inputs.into_iter().enumerate() {
            let q = sys.add_queue(&format!("in{i}"));
            sys.add_module(Box::new(StreamSource::from_flits(&format!("src{i}"), q, flits)));
            zin.push(ZipInput::new(q, fields));
        }
        let out = sys.add_queue("out");
        sys.add_module(Box::new(Zip::new("z", zin, out)));
        let sink = sys.add_module(Box::new(StreamSink::new("sink", out)));
        sys.run(10_000).unwrap();
        sys.module_as::<StreamSink>(sink).unwrap().flits().to_vec()
    }

    #[test]
    fn zips_two_columns_into_rows() {
        let a = vec![Flit::val(1), Flit::val(2), Flit::val(3)];
        let b = vec![Flit::val(10), Flit::val(20), Flit::val(30)];
        let rows = run_zip(vec![(a, vec![0]), (b, vec![0])]);
        let vals: Vec<Vec<u64>> = rows
            .iter()
            .map(|f| (0..f.len()).map(|i| f.field(i).val_or_zero()).collect())
            .collect();
        assert_eq!(vals, vec![vec![1, 10], vec![2, 20], vec![3, 30]]);
    }

    #[test]
    fn single_input_selects_and_reorders_fields() {
        let row = Flit::data(&[HwWord::Val(7), HwWord::Val(8), HwWord::Val(9)]);
        let rows = run_zip(vec![(vec![row], vec![2, 0])]);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].field(0).val_or_zero(), 9);
        assert_eq!(rows[0].field(1).val_or_zero(), 7);
    }

    #[test]
    fn markers_pass_through_selection() {
        let row = Flit::data(&[HwWord::Del, HwWord::Val(5)]);
        let rows = run_zip(vec![(vec![row], vec![0, 1])]);
        assert!(rows[0].field(0).is_marker());
        assert_eq!(rows[0].field(1).val_or_zero(), 5);
    }

    #[test]
    fn drop_ends_strips_aligned_delimiters() {
        let a = vec![Flit::val(1), Flit::end_item(), Flit::val(2), Flit::end_item()];
        let b = vec![Flit::val(9), Flit::end_item(), Flit::val(8), Flit::end_item()];
        let mut sys = System::new();
        let qa = sys.add_queue("a");
        let qb = sys.add_queue("b");
        sys.add_module(Box::new(StreamSource::from_flits("sa", qa, a)));
        sys.add_module(Box::new(StreamSource::from_flits("sb", qb, b)));
        let out = sys.add_queue("out");
        let zin = vec![ZipInput::new(qa, vec![0]), ZipInput::new(qb, vec![0])];
        sys.add_module(Box::new(Zip::new("z", zin, out).with_drop_ends()));
        let sink = sys.add_module(Box::new(StreamSink::new("sink", out)));
        sys.run(10_000).unwrap();
        let rows = sys.module_as::<StreamSink>(sink).unwrap().flits().to_vec();
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|f| !f.is_end_item()));
        assert_eq!(rows[0].field(0).val_or_zero(), 1);
        assert_eq!(rows[1].field(1).val_or_zero(), 8);
    }

    #[test]
    fn aligned_delimiters_forward_misaligned_resync() {
        let a = vec![Flit::val(1), Flit::end_item(), Flit::val(2)];
        let b = vec![Flit::val(9), Flit::end_item(), Flit::val(8)];
        let rows = run_zip(vec![(a, vec![0]), (b, vec![0])]);
        assert!(rows[1].is_end_item());
        assert_eq!(rows.len(), 3);
    }
}
