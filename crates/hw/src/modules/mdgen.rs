//! MDGen: the custom module generating MD tags (paper §IV-C).
//!
//! Consumes the left-joiner output — per-base flits carrying the read base
//! and the reference base — and emits the MD string one ASCII byte per
//! cycle: match-run lengths as decimal digits, the reference base at each
//! mismatch, and `^` + reference bases at deletions (footnote 2).

use super::{try_push, Ctx, Module, ModuleKind, Tick};
use crate::queue::QueueId;
use crate::word::{Flit, HwWord};
use std::any::Any;
use std::collections::VecDeque;
use genesis_types::Base;

/// Field layout of the input stream.
#[derive(Debug, Clone, Copy)]
pub struct MdGenConfig {
    /// Field index of the read base (may be `Del`).
    pub read_field: usize,
    /// Field index of the reference base (may be `Del` padding for
    /// insertions after the left join).
    pub ref_field: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LastEvent {
    None,
    Mismatch,
    Deletion,
}

/// Generates MD tag bytes, one output byte per cycle.
#[derive(Debug)]
pub struct MdGen {
    label: String,
    cfg: MdGenConfig,
    input: QueueId,
    out: QueueId,
    match_run: u64,
    wrote_any_match: bool,
    last_event: LastEvent,
    outbuf: VecDeque<Flit>,
    done: bool,
}

impl MdGen {
    /// Creates the module.
    #[must_use]
    pub fn new(label: &str, cfg: MdGenConfig, input: QueueId, out: QueueId) -> MdGen {
        MdGen {
            label: label.to_owned(),
            cfg,
            input,
            out,
            match_run: 0,
            wrote_any_match: false,
            last_event: LastEvent::None,
            outbuf: VecDeque::new(),
            done: false,
        }
    }

    fn emit_byte(&mut self, b: u8) {
        self.outbuf.push_back(Flit::val(u64::from(b)));
    }

    fn emit_number(&mut self, mut n: u64) {
        // Stack-format the decimal digits (u64 needs at most 20).
        let mut digits = [0u8; 20];
        let mut i = digits.len();
        loop {
            i -= 1;
            digits[i] = b'0' + (n % 10) as u8;
            n /= 10;
            if n == 0 {
                break;
            }
        }
        for &b in &digits[i..] {
            self.outbuf.push_back(Flit::val(u64::from(b)));
        }
        self.wrote_any_match = true;
    }

    /// Flushes the pending match run before a non-match event, matching
    /// `genesis_types::MdTag`'s formatting: a number separates events, with
    /// an explicit 0 between adjacent events and at the start.
    fn flush_before_event(&mut self) {
        if self.match_run > 0 {
            let n = self.match_run;
            self.match_run = 0;
            self.emit_number(n);
        } else if self.last_event != LastEvent::None || !self.wrote_any_match {
            self.emit_number(0);
        }
    }

    fn end_of_item(&mut self) {
        // Trailing number: the pending run, or 0 when an event just ended
        // or the item was empty.
        if self.match_run > 0 || self.last_event != LastEvent::None || !self.wrote_any_match {
            let n = self.match_run;
            self.match_run = 0;
            self.emit_number(n);
        }
        self.match_run = 0;
        self.wrote_any_match = false;
        self.last_event = LastEvent::None;
    }
}

impl Module for MdGen {
    fn label(&self) -> &str {
        &self.label
    }

    fn kind(&self) -> ModuleKind {
        ModuleKind::MdGen
    }

    fn tick(&mut self, ctx: &mut Ctx<'_>) -> Tick {
        if self.done {
            return Tick::Active;
        }
        // Drain one buffered output flit per cycle.
        if let Some(&f) = self.outbuf.front() {
            if try_push(ctx.queues, self.out, f) {
                self.outbuf.pop_front();
            }
            return Tick::Active;
        }
        let Some(&flit) = ctx.queues.get(self.input).peek() else {
            if ctx.queues.get(self.input).is_finished() {
                ctx.queues.get_mut(self.out).close();
                self.done = true;
                return Tick::Active;
            }
            return Tick::PARK;
        };
        if flit.is_end_item() {
            // The trailing number flushes, then the delimiter follows.
            self.end_of_item();
            self.outbuf.push_back(Flit::end_item());
            ctx.queues.get_mut(self.input).pop();
            return Tick::Active;
        }
        let read_b = flit.field(self.cfg.read_field);
        let ref_b = flit.field(self.cfg.ref_field);
        match (read_b, ref_b) {
            // Insertion: reference side is padding — MD ignores it, but an
            // insertion does interrupt a deletion run (the next deletion
            // starts a fresh `^` event, as in `MdTag`'s event model).
            (_, HwWord::Del | HwWord::Ins | HwWord::Empty)
                if self.last_event == LastEvent::Deletion && self.match_run == 0 =>
            {
                self.last_event = LastEvent::Mismatch;
            }
            (_, HwWord::Del | HwWord::Ins | HwWord::Empty) => {}
            // Deletion: emit `^` + the reference base (or continue a
            // deletion run without repeating `^`).
            (HwWord::Del, HwWord::Val(r)) => {
                if self.last_event == LastEvent::Deletion && self.match_run == 0 {
                    self.emit_byte(Base::from_code(r as u8).to_char() as u8);
                } else {
                    self.flush_before_event();
                    self.emit_byte(b'^');
                    self.emit_byte(Base::from_code(r as u8).to_char() as u8);
                }
                self.last_event = LastEvent::Deletion;
            }
            (HwWord::Val(q), HwWord::Val(r)) => {
                if q == r {
                    self.match_run += 1;
                } else {
                    self.flush_before_event();
                    self.emit_byte(Base::from_code(r as u8).to_char() as u8);
                    self.last_event = LastEvent::Mismatch;
                }
            }
            // Ins/Empty on the read side with a real reference base should
            // not occur; ignore defensively.
            _ => {}
        }
        ctx.queues.get_mut(self.input).pop();
        Tick::Active
    }

    fn is_done(&self) -> bool {
        self.done
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }

    fn input_queues(&self) -> Vec<QueueId> {
        vec![self.input]
    }

    fn output_queues(&self) -> Vec<QueueId> {
        vec![self.out]
    }
}
