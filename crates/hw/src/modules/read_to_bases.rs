//! ReadToBases: the hardware implementation of the `ReadExplode`
//! operation (paper §III-B/III-C, Figure 3).

use super::{try_push, Ctx, Module, ModuleKind, Tick};
use crate::queue::QueueId;
use crate::word::{Flit, HwWord};
use std::any::Any;
use genesis_types::{CigarElem, CigarOp};

/// Input queues of the ReadToBases module: `POS`, `CIGAR`, `SEQ` and
/// optionally `QUAL`, each delimited per read.
#[derive(Debug, Clone, Copy)]
pub struct ReadToBasesInputs {
    /// One flit per read: the leftmost aligned position.
    pub pos: QueueId,
    /// Packed 16-bit CIGAR elements per read.
    pub cigar: QueueId,
    /// Base codes per read.
    pub seq: QueueId,
    /// Quality scores per read (optional).
    pub qual: Option<QueueId>,
}

/// Per-base output flit layout: `[ref_pos|Ins, base|Del, qual|Del,
/// seq_index|Del]`, one flit per cycle, delimited per read (Figure 3).
/// Soft-clipped bases are consumed but produce no output.
///
/// The fourth field (the index of the base within `SEQ`) feeds the BQSR
/// cycle covariate; Figure 12's BinIDGen needs to know the machine cycle
/// of every base.
#[derive(Debug)]
pub struct ReadToBases {
    label: String,
    inputs: ReadToBasesInputs,
    out: QueueId,
    state: State,
    done: bool,
}

#[derive(Debug)]
enum State {
    /// Waiting for the next read's POS flit.
    NeedPos,
    /// Processing the read body.
    Body {
        ref_pos: u64,
        seq_idx: u64,
        /// Remaining run of the current CIGAR element, if any.
        elem: Option<(CigarOp, u32)>,
    },
    /// Consuming the per-read delimiters from all inputs.
    Closing {
        pos_done: bool,
        cigar_done: bool,
        seq_done: bool,
        qual_done: bool,
        out_done: bool,
    },
}

impl ReadToBases {
    /// Creates the module.
    #[must_use]
    pub fn new(label: &str, inputs: ReadToBasesInputs, out: QueueId) -> ReadToBases {
        ReadToBases {
            label: label.to_owned(),
            inputs,
            out,
            state: State::NeedPos,
            done: false,
        }
    }

    /// Pops the head of `q` if it is a data flit; returns it.
    fn pop_data(ctx: &mut Ctx<'_>, q: QueueId) -> Option<Flit> {
        match ctx.queues.get(q).peek() {
            Some(f) if !f.is_end_item() => ctx.queues.get_mut(q).pop(),
            _ => None,
        }
    }

    /// Pops the head of `q` if it is a delimiter.
    fn pop_end(ctx: &mut Ctx<'_>, q: QueueId) -> bool {
        match ctx.queues.get(q).peek() {
            Some(f) if f.is_end_item() => {
                ctx.queues.get_mut(q).pop();
                true
            }
            _ => false,
        }
    }
}

impl Module for ReadToBases {
    fn label(&self) -> &str {
        &self.label
    }

    fn kind(&self) -> ModuleKind {
        ModuleKind::ReadToBases
    }

    #[allow(clippy::too_many_lines)]
    fn tick(&mut self, ctx: &mut Ctx<'_>) -> Tick {
        if self.done {
            return Tick::Active;
        }
        match &mut self.state {
            State::NeedPos => {
                if let Some(flit) = Self::pop_data(ctx, self.inputs.pos) {
                    self.state = State::Body {
                        ref_pos: flit.field(0).val_or_zero(),
                        seq_idx: 0,
                        elem: None,
                    };
                } else if ctx.queues.get(self.inputs.pos).is_finished() {
                    ctx.queues.get_mut(self.out).close();
                    self.done = true;
                } else {
                    // Waiting for the next read's POS flit.
                    return Tick::park_on(self.inputs.pos);
                }
            }
            State::Body { ref_pos, seq_idx, elem } => {
                // Load the next CIGAR element when none is active.
                if elem.is_none() {
                    match ctx.queues.get(self.inputs.cigar).peek() {
                        Some(f) if f.is_end_item() => {
                            // Read complete: move to delimiter consumption.
                            self.state = State::Closing {
                                pos_done: false,
                                cigar_done: false,
                                seq_done: false,
                                qual_done: self.inputs.qual.is_none(),
                                out_done: false,
                            };
                            return Tick::Active;
                        }
                        Some(f) => {
                            let packed = f.field(0).val_or_zero() as u16;
                            match CigarElem::unpack(packed) {
                                Ok(e) if e.len > 0 => {
                                    *elem = Some((e.op, e.len));
                                    ctx.queues.get_mut(self.inputs.cigar).pop();
                                }
                                _ => {
                                    // Malformed or empty element: skip it.
                                    ctx.queues.get_mut(self.inputs.cigar).pop();
                                    return Tick::Active;
                                }
                            }
                        }
                        None => return Tick::park_on(self.inputs.cigar), // stall for CIGAR data
                    }
                }
                let (op, remaining) = elem.expect("element loaded above");
                let needs_seq = op.consumes_read();
                // Peek the sequence/quality heads if this op consumes them.
                let seq_head = if needs_seq {
                    match ctx.queues.get(self.inputs.seq).peek() {
                        Some(f) if !f.is_end_item() => Some(f.field(0)),
                        _ => None,
                    }
                } else {
                    None
                };
                if needs_seq && seq_head.is_none() {
                    return Tick::park_on(self.inputs.seq); // stall for SEQ data
                }
                let qual_head = match self.inputs.qual {
                    Some(q) if needs_seq => match ctx.queues.get(q).peek() {
                        Some(f) if !f.is_end_item() => Some(f.field(0)),
                        _ => return Tick::park_on(q), // stall for QUAL data
                    },
                    _ => None,
                };
                // Determine the output flit for this base.
                let out_flit = match op {
                    CigarOp::Match | CigarOp::SeqMatch | CigarOp::SeqMismatch => Some(Flit::data(&[
                        HwWord::Val(*ref_pos),
                        seq_head.expect("M consumes read"),
                        qual_head.unwrap_or(HwWord::Empty),
                        HwWord::Val(*seq_idx),
                    ])),
                    CigarOp::Ins => Some(Flit::data(&[
                        HwWord::Ins,
                        seq_head.expect("I consumes read"),
                        qual_head.unwrap_or(HwWord::Empty),
                        HwWord::Val(*seq_idx),
                    ])),
                    CigarOp::Del | CigarOp::RefSkip => Some(Flit::data(&[
                        HwWord::Val(*ref_pos),
                        HwWord::Del,
                        HwWord::Del,
                        HwWord::Del,
                    ])),
                    CigarOp::SoftClip | CigarOp::HardClip => None,
                };
                // Backpressure: the output must accept before we consume.
                if let Some(f) = out_flit {
                    if !try_push(ctx.queues, self.out, f) {
                        // The refused push counted a stall.
                        return Tick::Active;
                    }
                }
                // Commit: consume inputs and advance counters.
                if needs_seq {
                    ctx.queues.get_mut(self.inputs.seq).pop();
                    if let Some(q) = self.inputs.qual {
                        ctx.queues.get_mut(q).pop();
                    }
                    *seq_idx += 1;
                }
                if op.consumes_ref() {
                    *ref_pos += 1;
                }
                *elem = if remaining > 1 { Some((op, remaining - 1)) } else { None };
            }
            State::Closing { pos_done, cigar_done, seq_done, qual_done, out_done } => {
                if !*out_done {
                    if try_push(ctx.queues, self.out, Flit::end_item()) {
                        *out_done = true;
                    }
                    return Tick::Active;
                }
                let mut popped = false;
                if !*pos_done && Self::pop_end(ctx, self.inputs.pos) {
                    *pos_done = true;
                    popped = true;
                }
                if !*cigar_done && Self::pop_end(ctx, self.inputs.cigar) {
                    *cigar_done = true;
                    popped = true;
                }
                if !*seq_done && Self::pop_end(ctx, self.inputs.seq) {
                    *seq_done = true;
                    popped = true;
                }
                if !*qual_done {
                    if let Some(q) = self.inputs.qual {
                        if Self::pop_end(ctx, q) {
                            *qual_done = true;
                            popped = true;
                        }
                    }
                }
                if *pos_done && *cigar_done && *seq_done && *qual_done {
                    self.state = State::NeedPos;
                } else if !popped {
                    // Waiting for delimiters still in flight upstream.
                    return Tick::PARK;
                }
            }
        }
        Tick::Active
    }

    fn is_done(&self) -> bool {
        self.done
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }

    fn input_queues(&self) -> Vec<QueueId> {
        {
            let mut qs = vec![self.inputs.pos, self.inputs.cigar, self.inputs.seq];
            qs.extend(self.inputs.qual);
            qs
        }
    }

    fn output_queues(&self) -> Vec<QueueId> {
        vec![self.out]
    }
}
