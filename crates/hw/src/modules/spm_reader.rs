//! SPM Reader: address, range, and drain reads from scratchpads
//! (paper §III-C).

use super::{try_push, Ctx, Module, ModuleKind, Tick, Watch};
use crate::queue::QueueId;
use crate::spm::SpmId;
use crate::word::{Flit, HwWord, MAX_FIELDS};
use std::any::Any;

/// Gates an SPM access on tiered-memory residency: parks on a timed
/// [`Watch::Spill`] wake when the touched page is still spilling/filling.
/// Free (a single branch) when tiering is disabled.
macro_rules! tier_gate {
    ($ctx:expr, $spms:expr, $idx:expr, $write:expr) => {
        if let Some(at) = $ctx.spms.tier_wait($spms, $idx, $write, $ctx.cycle) {
            return Tick::Park { wake_at: Some(at), watch: Watch::Spill };
        }
    };
}
pub(crate) use tier_gate;

/// Operating mode of the streaming [`SpmReader`]. The paper's third mode —
/// one lookup per input address — is provided by [`SpmAddrReader`].
#[derive(Debug, Clone, Copy)]
pub enum SpmReadMode {
    /// Interval reads: a start queue and an end queue supply one
    /// `[start, end)` pair per item; the reader streams
    /// `[pos, spm0[pos-offset], ...]` for the interval, then a delimiter.
    Range {
        /// Queue supplying interval starts.
        start: QueueId,
        /// Queue supplying exclusive interval ends.
        end: QueueId,
    },
    /// Drains `[0, len)` once the trigger queue finishes, emitting
    /// `[idx, spm0[idx], ...]`. Used to dump the BQSR count buffers.
    Drain {
        /// Stream whose completion triggers the drain (flits discarded).
        trigger: QueueId,
        /// Number of elements to drain.
        len: u64,
    },
}

/// Streams scratchpad contents. `spms` may list several scratchpads: the
/// output flit carries one field per scratchpad after the position field
/// (the BQSR pipeline reads `REF.SEQ` and `REF.IS_SNP` together).
#[derive(Debug)]
pub struct SpmReader {
    label: String,
    spms: Vec<SpmId>,
    mode: SpmReadMode,
    /// Value subtracted from input positions to form scratchpad indices
    /// (the partition's base position).
    addr_offset: u64,
    out: QueueId,
    /// Queues that must finish before reading starts (the SPM-load gate:
    /// the updater filling this scratchpad forwards its stream here, so
    /// range reads cannot race ahead of initialization).
    gates: Vec<QueueId>,
    cur: Option<(u64, u64)>,
    pending_end: bool,
    drain_cursor: u64,
    draining: bool,
    done: bool,
}

impl SpmReader {
    /// Creates a reader.
    ///
    /// # Panics
    ///
    /// Panics when `spms` is empty.
    #[must_use]
    pub fn new(
        label: &str,
        spms: Vec<SpmId>,
        mode: SpmReadMode,
        addr_offset: u64,
        out: QueueId,
    ) -> SpmReader {
        assert!(!spms.is_empty(), "SPM reader needs at least one scratchpad");
        SpmReader {
            label: label.to_owned(),
            spms,
            mode,
            addr_offset,
            out,
            gates: Vec::new(),
            cur: None,
            pending_end: false,
            drain_cursor: 0,
            draining: false,
            done: false,
        }
    }

    /// Blocks all reading until every gate queue has finished; gate
    /// traffic is consumed and discarded (one flit per gate per cycle).
    #[must_use]
    pub fn with_gates(mut self, gates: Vec<QueueId>) -> SpmReader {
        self.gates = gates;
        self
    }

    /// Consumes gate traffic. Returns `(open, popped_any)`: `open` once
    /// every gate has finished, `popped_any` when this call consumed gate
    /// flits (observable work, so the caller must not park).
    fn gates_open(&self, ctx: &mut Ctx<'_>) -> (bool, bool) {
        let mut open = true;
        let mut popped_any = false;
        for &g in &self.gates {
            let q = ctx.queues.get_mut(g);
            if q.pop().is_some() {
                popped_any = true;
                open = false;
            } else if !q.is_finished() {
                open = false;
            }
        }
        (open, popped_any)
    }

    fn read_flit(&self, ctx: &mut Ctx<'_>, pos: u64) -> Flit {
        let mut fields = [HwWord::Empty; MAX_FIELDS];
        fields[0] = HwWord::Val(pos);
        let idx = pos.wrapping_sub(self.addr_offset);
        for (slot, &id) in fields[1..].iter_mut().zip(&self.spms) {
            *slot = HwWord::Val(ctx.spms.get_mut(id).read(idx));
        }
        Flit::data(&fields[..1 + self.spms.len()])
    }
}

impl Module for SpmReader {
    fn label(&self) -> &str {
        &self.label
    }

    fn kind(&self) -> ModuleKind {
        ModuleKind::SpmReader
    }

    #[allow(clippy::too_many_lines)]
    fn tick(&mut self, ctx: &mut Ctx<'_>) -> Tick {
        if self.done {
            return Tick::Active;
        }
        let (open, gate_popped) = self.gates_open(ctx);
        if !open {
            // Gate flits consumed: active. Gates drained but not all
            // finished: a pure wait on the gate queues.
            return if gate_popped { Tick::Active } else { Tick::PARK };
        }
        match self.mode {
            SpmReadMode::Range { start, end } => {
                if self.pending_end {
                    if try_push(ctx.queues, self.out, Flit::end_item()) {
                        self.pending_end = false;
                    }
                    return Tick::Active;
                }
                if let Some((pos, stop)) = self.cur {
                    if pos >= stop {
                        self.cur = None;
                        self.pending_end = true;
                        return Tick::Active;
                    }
                    if ctx.queues.get(self.out).can_push() {
                        tier_gate!(ctx, &self.spms, pos.wrapping_sub(self.addr_offset), false);
                        let flit = self.read_flit(ctx, pos);
                        ctx.queues.get_mut(self.out).push(flit);
                        self.cur = Some((pos + 1, stop));
                    } else {
                        ctx.queues.get_mut(self.out).note_full_stall();
                    }
                    return Tick::Active;
                }
                // Acquire the next [start, end) pair, skipping delimiters.
                let mut popped_delim = false;
                loop {
                    let sflit = ctx.queues.get(start).peek().copied();
                    match sflit {
                        Some(f) if f.is_end_item() => {
                            ctx.queues.get_mut(start).pop();
                            popped_delim = true;
                        }
                        _ => break,
                    }
                }
                loop {
                    let eflit = ctx.queues.get(end).peek().copied();
                    match eflit {
                        Some(f) if f.is_end_item() => {
                            ctx.queues.get_mut(end).pop();
                            popped_delim = true;
                        }
                        _ => break,
                    }
                }
                let (s, e) = (ctx.queues.get(start).peek().copied(), ctx.queues.get(end).peek().copied());
                match (s, e) {
                    (Some(sf), Some(ef)) => {
                        ctx.queues.get_mut(start).pop();
                        ctx.queues.get_mut(end).pop();
                        self.cur = Some((sf.field(0).val_or_zero(), ef.field(0).val_or_zero()));
                        Tick::Active
                    }
                    _ => {
                        if ctx.queues.get(start).is_finished() && ctx.queues.get(end).is_finished()
                        {
                            ctx.queues.get_mut(self.out).close();
                            self.done = true;
                            Tick::Active
                        } else if popped_delim {
                            Tick::Active
                        } else {
                            // Waiting for the next interval pair.
                            Tick::PARK
                        }
                    }
                }
            }
            SpmReadMode::Drain { trigger, len } => {
                if !self.draining {
                    // Discard trigger traffic until the stream finishes.
                    if ctx.queues.get_mut(trigger).pop().is_some() {
                        return Tick::Active;
                    }
                    if ctx.queues.get(trigger).is_finished() {
                        self.draining = true;
                        return Tick::Active;
                    }
                    return Tick::PARK;
                }
                if self.drain_cursor >= len {
                    if try_push(ctx.queues, self.out, Flit::end_item()) {
                        ctx.queues.get_mut(self.out).close();
                        self.done = true;
                    }
                    return Tick::Active;
                }
                if ctx.queues.get(self.out).can_push() {
                    tier_gate!(ctx, &self.spms, self.drain_cursor, false);
                    let pos = self.drain_cursor + self.addr_offset;
                    let flit = self.read_flit(ctx, pos);
                    ctx.queues.get_mut(self.out).push(flit);
                    self.drain_cursor += 1;
                } else {
                    ctx.queues.get_mut(self.out).note_full_stall();
                }
                Tick::Active
            }
        }
    }

    fn is_done(&self) -> bool {
        self.done
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }

    fn spm_ids(&self) -> Vec<SpmId> {
        self.spms.clone()
    }

    fn input_queues(&self) -> Vec<QueueId> {
        let mut qs = self.gates.clone();
        match self.mode {
            SpmReadMode::Range { start, end } => qs.extend([start, end]),
            SpmReadMode::Drain { trigger, .. } => qs.push(trigger),
        }
        qs
    }

    fn output_queues(&self) -> Vec<QueueId> {
        vec![self.out]
    }
}

/// Address-mode SPM reader: one lookup per input flit.
#[derive(Debug)]
pub struct SpmAddrReader {
    label: String,
    spms: Vec<SpmId>,
    addr_offset: u64,
    input: QueueId,
    out: QueueId,
    done: bool,
}

impl SpmAddrReader {
    /// Creates an address-mode reader.
    ///
    /// # Panics
    ///
    /// Panics when `spms` is empty.
    #[must_use]
    pub fn new(
        label: &str,
        spms: Vec<SpmId>,
        addr_offset: u64,
        input: QueueId,
        out: QueueId,
    ) -> SpmAddrReader {
        assert!(!spms.is_empty(), "SPM reader needs at least one scratchpad");
        SpmAddrReader { label: label.to_owned(), spms, addr_offset, input, out, done: false }
    }
}

impl Module for SpmAddrReader {
    fn label(&self) -> &str {
        &self.label
    }

    fn kind(&self) -> ModuleKind {
        ModuleKind::SpmReader
    }

    fn tick(&mut self, ctx: &mut Ctx<'_>) -> Tick {
        if self.done {
            return Tick::Active;
        }
        let Some(&flit) = ctx.queues.get(self.input).peek() else {
            if ctx.queues.get(self.input).is_finished() {
                ctx.queues.get_mut(self.out).close();
                self.done = true;
                return Tick::Active;
            }
            return Tick::PARK;
        };
        let out = if flit.is_end_item() {
            flit
        } else {
            let pos = flit.field(0).val_or_zero();
            let mut fields = [HwWord::Empty; MAX_FIELDS];
            fields[0] = HwWord::Val(pos);
            let idx = pos.wrapping_sub(self.addr_offset);
            tier_gate!(ctx, &self.spms, idx, false);
            for (slot, &id) in fields[1..].iter_mut().zip(&self.spms) {
                *slot = HwWord::Val(ctx.spms.get_mut(id).read(idx));
            }
            Flit::data(&fields[..1 + self.spms.len()])
        };
        if try_push(ctx.queues, self.out, out) {
            ctx.queues.get_mut(self.input).pop();
        }
        Tick::Active
    }

    fn is_done(&self) -> bool {
        self.done
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }

    fn spm_ids(&self) -> Vec<SpmId> {
        self.spms.clone()
    }

    fn input_queues(&self) -> Vec<QueueId> {
        vec![self.input]
    }

    fn output_queues(&self) -> Vec<QueueId> {
        vec![self.out]
    }
}
