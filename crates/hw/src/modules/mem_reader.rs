//! Memory Reader: streams a column out of device memory (paper §III-C).

use super::{try_push, Ctx, Module, ModuleKind, Tick, Watch};
use crate::memory::{Line, PortId, LINE_BYTES};
use crate::queue::QueueId;
use crate::word::Flit;
use std::any::Any;
use std::collections::VecDeque;
use std::sync::Arc;

/// Row-boundary specification: where the reader inserts end-of-item
/// delimiters in the element stream.
#[derive(Debug, Clone)]
pub enum RowSpec {
    /// No item structure: one flat stream.
    None,
    /// Every `n` elements form one item.
    Fixed(u64),
    /// Explicit per-row element counts (variable-length rows such as
    /// `READS.SEQ`; the host knows the layout it configured).
    Lens(Arc<Vec<u32>>),
}

/// Memory Reader configuration.
#[derive(Debug, Clone)]
pub struct MemReaderConfig {
    /// Line-aligned base address of the column data.
    pub base_addr: u64,
    /// Element width in bytes (1, 2, 4 or 8).
    pub elem_bytes: usize,
    /// Total number of elements to stream.
    pub total_elems: u64,
    /// Item structure.
    pub rows: RowSpec,
}

/// Streams `total_elems` little-endian elements starting at `base_addr`,
/// one element (flit) per cycle, prefetching 64 B lines into an internal
/// buffer as long as arbitration and the in-flight limit allow.
#[derive(Debug)]
pub struct MemReader {
    label: String,
    cfg: MemReaderConfig,
    port: PortId,
    out: QueueId,
    next_line: u64,
    end_addr: u64,
    /// Whole response lines; elements never cross a line boundary (the
    /// base is line-aligned and 1/2/4/8 all divide [`LINE_BYTES`]).
    buf: VecDeque<Line>,
    /// Consumed bytes of the front line in `buf`.
    head_off: usize,
    emitted: u64,
    row_left: u64,
    row_idx: usize,
    pending_ends: u32,
    done: bool,
}

impl MemReader {
    /// Maximum buffered bytes before the reader stops polling responses.
    const BUF_LIMIT: usize = 4 * LINE_BYTES;

    /// Creates a reader.
    ///
    /// # Panics
    ///
    /// Panics on unaligned `base_addr` or unsupported `elem_bytes`.
    #[must_use]
    pub fn new(label: &str, cfg: MemReaderConfig, port: PortId, out: QueueId) -> MemReader {
        assert_eq!(cfg.base_addr % LINE_BYTES as u64, 0, "base address must be line-aligned");
        assert!(matches!(cfg.elem_bytes, 1 | 2 | 4 | 8), "element width must be 1/2/4/8");
        assert!(!matches!(cfg.rows, RowSpec::Fixed(0)), "fixed row length must be positive");
        let bytes = cfg.total_elems * cfg.elem_bytes as u64;
        let end_addr = cfg.base_addr + bytes.div_ceil(LINE_BYTES as u64) * LINE_BYTES as u64;
        let row_left = match &cfg.rows {
            RowSpec::None => u64::MAX,
            RowSpec::Fixed(n) => *n,
            RowSpec::Lens(lens) => lens.first().copied().map_or(0, u64::from),
        };
        let mut reader = MemReader {
            label: label.to_owned(),
            next_line: cfg.base_addr,
            end_addr,
            cfg,
            port,
            out,
            buf: VecDeque::new(),
            head_off: 0,
            emitted: 0,
            row_left,
            row_idx: 0,
            pending_ends: 0,
            done: false,
        };
        // Zero-length leading rows still emit their delimiters.
        let mut guard = 0;
        while reader.row_left == 0 {
            let before = reader.pending_ends;
            reader.advance_row();
            if reader.pending_ends == before {
                break;
            }
            guard += 1;
            assert!(guard < 1_000_000, "runaway zero-length row spec");
        }
        reader
    }

    /// Buffered, not-yet-emitted bytes.
    fn buffered(&self) -> usize {
        self.buf.len() * LINE_BYTES - self.head_off
    }

    fn advance_row(&mut self) {
        match &self.cfg.rows {
            RowSpec::None => {}
            RowSpec::Fixed(n) => {
                self.row_left = *n;
                self.pending_ends += 1;
            }
            RowSpec::Lens(lens) => {
                self.row_idx += 1;
                self.pending_ends += 1;
                self.row_left = lens.get(self.row_idx).copied().map_or(u64::MAX, u64::from);
            }
        }
    }
}

impl Module for MemReader {
    fn label(&self) -> &str {
        &self.label
    }

    fn kind(&self) -> ModuleKind {
        ModuleKind::MemoryReader
    }

    fn tick(&mut self, ctx: &mut Ctx<'_>) -> Tick {
        if self.done {
            return Tick::Active;
        }
        let mut active = false;
        // Issue the next prefetch request.
        if self.next_line < self.end_addr {
            if ctx.mem.try_read(self.port, self.next_line) {
                self.next_line += LINE_BYTES as u64;
                active = true;
            } else if !ctx.mem.inflight_full(self.port) {
                // Arbitration refusal: a stall was counted, so the naive
                // engine observes this tick. Inflight-limit refusals are
                // silent and may park.
                active = true;
            }
        }
        // Accept one response per cycle while buffer space remains.
        if self.buffered() < Self::BUF_LIMIT {
            if let Some((_, line)) = ctx.mem.poll_response(self.port) {
                self.buf.push_back(line);
                active = true;
            }
        }
        // Emit one flit per cycle.
        if self.pending_ends > 0 {
            if try_push(ctx.queues, self.out, Flit::end_item()) {
                self.pending_ends -= 1;
            }
            active = true;
        } else if self.emitted < self.cfg.total_elems && self.buffered() >= self.cfg.elem_bytes {
            active = true;
            if ctx.queues.get(self.out).can_push() {
                let line = self.buf.front().expect("buffered bytes checked");
                let mut v: u64 = 0;
                for (i, &b) in line[self.head_off..self.head_off + self.cfg.elem_bytes]
                    .iter()
                    .enumerate()
                {
                    v |= u64::from(b) << (8 * i);
                }
                self.head_off += self.cfg.elem_bytes;
                if self.head_off == LINE_BYTES {
                    self.buf.pop_front();
                    self.head_off = 0;
                }
                ctx.queues.get_mut(self.out).push(Flit::val(v));
                self.emitted += 1;
                self.row_left -= 1;
                if self.row_left == 0 || self.emitted == self.cfg.total_elems {
                    // Zero-length subsequent (or trailing) rows each still
                    // get a delimiter.
                    self.advance_row();
                    while self.row_left == 0 {
                        let before = self.pending_ends;
                        self.advance_row();
                        if self.pending_ends == before {
                            break;
                        }
                    }
                }
            } else {
                ctx.queues.get_mut(self.out).note_full_stall();
            }
        }
        if self.emitted == self.cfg.total_elems && self.pending_ends == 0 {
            ctx.queues.get_mut(self.out).close();
            self.done = true;
            active = true;
        }
        if active {
            Tick::Active
        } else {
            // Blocked on memory latency: whenever the reader holds
            // emittable data or a pending delimiter the emit branch
            // reports Active regardless of output-queue space, so no
            // queue event can unblock a parked reader — only a response
            // becoming deliverable. Watching the timer alone keeps
            // downstream pops from re-ticking the reader during the
            // whole latency window.
            Tick::Park {
                wake_at: ctx.mem.next_response_ready(self.port),
                watch: Watch::Timer,
            }
        }
    }

    fn is_done(&self) -> bool {
        self.done
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }

    fn input_queues(&self) -> Vec<QueueId> {
        Vec::new()
    }

    fn output_queues(&self) -> Vec<QueueId> {
        vec![self.out]
    }
}
