//! Fanout: one-to-many stream replication.
//!
//! The paper's pipeline diagrams (Figures 11 and 12) feed one module's
//! output to several consumers (e.g. the left joiner feeds both the filter
//! and MDGen). In hardware this is a queue with multiple reader taps; in
//! the simulator it is an explicit module that copies each flit to every
//! output, stalling until all outputs have space.

use super::{all_can_push, Ctx, Module, ModuleKind, Tick, Watch};
use crate::queue::{QueueId, QueuePool};
use crate::word::Flit;
use std::any::Any;

/// Replicates a stream to `outputs`.
#[derive(Debug)]
pub struct Fanout {
    label: String,
    input: QueueId,
    outputs: Vec<QueueId>,
    done: bool,
}

impl Fanout {
    /// Creates a fanout.
    ///
    /// # Panics
    ///
    /// Panics when `outputs` is empty.
    #[must_use]
    pub fn new(label: &str, input: QueueId, outputs: Vec<QueueId>) -> Fanout {
        assert!(!outputs.is_empty(), "fanout needs at least one output");
        Fanout { label: label.to_owned(), input, outputs, done: false }
    }

    /// Replicates `k` buffered input flits to every output in one call —
    /// the block engine's run fast path (see `Filter::tick_run` for the
    /// exactness contract: `k` buffered inputs, `k` free slots per output).
    pub(crate) fn tick_run(&mut self, queues: &mut QueuePool, k: usize, scratch: &mut Vec<Flit>) {
        scratch.clear();
        let mut left = k;
        while left > 0 {
            let run = queues.get(self.input).head_run();
            let m = left.min(run.len());
            scratch.extend_from_slice(&run[..m]);
            queues.get_mut(self.input).pop_run(m);
            left -= m;
        }
        for &q in &self.outputs {
            queues.get_mut(q).push_run(scratch);
        }
    }
}

impl Module for Fanout {
    fn label(&self) -> &str {
        &self.label
    }

    fn kind(&self) -> ModuleKind {
        ModuleKind::Fanout
    }

    fn tick(&mut self, ctx: &mut Ctx<'_>) -> Tick {
        if self.done {
            return Tick::Active;
        }
        if ctx.queues.get(self.input).is_finished() {
            for &q in &self.outputs {
                ctx.queues.get_mut(q).close();
            }
            self.done = true;
            return Tick::Active;
        }
        if ctx.queues.get(self.input).peek().is_some() && all_can_push(ctx.queues, &self.outputs) {
            let flit = ctx.queues.get_mut(self.input).pop().expect("peeked");
            for &q in &self.outputs {
                ctx.queues.get_mut(q).push(flit);
            }
            return Tick::Active;
        }
        // Waiting for input data or for every output to have space; the
        // `all_can_push` check counts no stall, so this is a pure no-op.
        // Watch whichever side is actually blocking: the empty input, or
        // (input ready, some output full) the outputs a consumer pop
        // would free up.
        if ctx.queues.get(self.input).peek().is_none() {
            Tick::PARK
        } else {
            Tick::Park { wake_at: None, watch: Watch::Outputs }
        }
    }

    fn is_done(&self) -> bool {
        self.done
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }

    fn input_queues(&self) -> Vec<QueueId> {
        vec![self.input]
    }

    fn output_queues(&self) -> Vec<QueueId> {
        self.outputs.clone()
    }
}
