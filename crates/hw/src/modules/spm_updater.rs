//! SPM Updater: sequential / random / read-modify-write scratchpad writes
//! with the RAW hazard interlock (paper §III-C).

use super::spm_reader::tier_gate;
use super::{try_push, Ctx, Module, ModuleKind, Tick, Watch};
use crate::queue::QueueId;
use crate::spm::SpmId;
use std::any::Any;
use std::collections::VecDeque;

/// Read-modify-write function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RmwOp {
    /// `spm[addr] += 1` (the BQSR count update).
    Increment,
    /// `spm[addr] += value_field`.
    Add,
    /// `spm[addr] -= value_field`.
    Sub,
}

/// Operating mode (paper §III-C lists exactly these three).
#[derive(Debug, Clone, Copy)]
pub enum SpmUpdateMode {
    /// Sequential writes starting at a base index; input flits carry the
    /// value in `value_field`.
    Sequential {
        /// First element index written.
        base: u64,
    },
    /// Random writes; input flits carry `(addr_field, value_field)`.
    Random,
    /// Read-modify-write updates with the 3-stage RAW interlock.
    Rmw {
        /// The modify function.
        op: RmwOp,
    },
}

/// Depth of the read-modify-write pipeline whose in-flight addresses are
/// checked against incoming flits (paper §III-C: read, modify, write).
pub const RMW_PIPELINE_DEPTH: usize = 3;

/// Writes a stream into a scratchpad.
///
/// `forward` optionally passes every consumed flit downstream unchanged —
/// the "cascaded" wiring of the BQSR pipeline (Figure 12) where the same
/// filtered stream updates several count buffers in sequence.
#[derive(Debug)]
pub struct SpmUpdater {
    label: String,
    spm: SpmId,
    mode: SpmUpdateMode,
    addr_field: usize,
    value_field: usize,
    input: QueueId,
    forward: Option<QueueId>,
    seq_cursor: u64,
    /// Addresses currently in the read/modify/write stages, tagged with
    /// their entry cycle; an address occupies the pipeline for
    /// [`RMW_PIPELINE_DEPTH`] cycles.
    inflight: VecDeque<(u64, u64)>,
    hazard_stalls: u64,
    updates: u64,
    done: bool,
}

impl SpmUpdater {
    /// Creates an updater. `addr_field`/`value_field` select the input flit
    /// fields used as address and value (ignored where the mode does not
    /// need them).
    #[must_use]
    pub fn new(
        label: &str,
        spm: SpmId,
        mode: SpmUpdateMode,
        addr_field: usize,
        value_field: usize,
        input: QueueId,
    ) -> SpmUpdater {
        let seq_cursor = match mode {
            SpmUpdateMode::Sequential { base } => base,
            _ => 0,
        };
        SpmUpdater {
            label: label.to_owned(),
            spm,
            mode,
            addr_field,
            value_field,
            input,
            forward: None,
            seq_cursor,
            inflight: VecDeque::with_capacity(RMW_PIPELINE_DEPTH),
            hazard_stalls: 0,
            updates: 0,
            done: false,
        }
    }

    /// Forwards every consumed flit to `q` (cascade wiring).
    #[must_use]
    pub fn with_forward(mut self, q: QueueId) -> SpmUpdater {
        self.forward = Some(q);
        self
    }

    /// RAW-hazard stall count.
    #[must_use]
    pub fn hazard_stalls(&self) -> u64 {
        self.hazard_stalls
    }

    /// Number of scratchpad updates performed.
    #[must_use]
    pub fn updates(&self) -> u64 {
        self.updates
    }
}

impl Module for SpmUpdater {
    fn label(&self) -> &str {
        &self.label
    }

    fn kind(&self) -> ModuleKind {
        ModuleKind::SpmUpdater
    }

    fn tick(&mut self, ctx: &mut Ctx<'_>) -> Tick {
        if self.done {
            return Tick::Active;
        }
        // Retire RMW stages that have aged out of the 3-stage pipeline.
        // Retirement is a pure function of (entry cycle, current cycle), so
        // deferring it across parked cycles cannot change hazard outcomes:
        // the next data flit sees the same post-retire pipeline either way.
        while let Some(&(entered, _)) = self.inflight.front() {
            if ctx.cycle.saturating_sub(entered) >= RMW_PIPELINE_DEPTH as u64 {
                self.inflight.pop_front();
            } else {
                break;
            }
        }
        let Some(&flit) = ctx.queues.get(self.input).peek() else {
            if ctx.queues.get(self.input).is_finished() {
                self.inflight.clear();
                if let Some(fq) = self.forward {
                    ctx.queues.get_mut(fq).close();
                }
                self.done = true;
                return Tick::Active;
            }
            return Tick::PARK;
        };
        // Tiered-memory gate: the touched page must be resident before the
        // flit can be consumed. Checked before the cascade-space check so
        // that re-ticks during a spill wait stay pure no-ops (no stall
        // counters move) in every engine.
        if !flit.is_end_item() {
            match self.mode {
                SpmUpdateMode::Sequential { .. } => {
                    tier_gate!(ctx, &[self.spm], self.seq_cursor, true);
                }
                SpmUpdateMode::Random | SpmUpdateMode::Rmw { .. } => {
                    let addr = flit.field(self.addr_field);
                    if !addr.is_marker() {
                        // RAW interlock first: hazard cycles are counted
                        // per blocked cycle, so the module keeps ticking.
                        if matches!(self.mode, SpmUpdateMode::Rmw { .. })
                            && self.inflight.iter().any(|&(_, a)| a == addr.val_or_zero())
                        {
                            self.hazard_stalls += 1;
                            return Tick::Active;
                        }
                        tier_gate!(ctx, &[self.spm], addr.val_or_zero(), true);
                    }
                }
            }
        }
        // The cascade must accept the flit in the same cycle we consume it.
        if let Some(fq) = self.forward {
            if !ctx.queues.get(fq).can_push() {
                ctx.queues.get_mut(fq).note_full_stall();
                return Tick::Active;
            }
        }
        if flit.is_end_item() {
            ctx.queues.get_mut(self.input).pop();
            if let Some(fq) = self.forward {
                let pushed = try_push(ctx.queues, fq, flit);
                debug_assert!(pushed, "forward space was checked");
            }
            return Tick::Active;
        }
        match self.mode {
            SpmUpdateMode::Sequential { .. } => {
                let v = flit.field(self.value_field).val_or_zero();
                ctx.spms.get_mut(self.spm).write(self.seq_cursor, v);
                self.seq_cursor += 1;
                self.updates += 1;
            }
            SpmUpdateMode::Random => {
                let addr = flit.field(self.addr_field);
                if !addr.is_marker() {
                    let v = flit.field(self.value_field).val_or_zero();
                    ctx.spms.get_mut(self.spm).write(addr.val_or_zero(), v);
                    self.updates += 1;
                }
            }
            SpmUpdateMode::Rmw { op } => {
                let addr = flit.field(self.addr_field);
                if !addr.is_marker() {
                    // The RAW interlock already ran in the pre-consume
                    // gate above, so the address is hazard-free here.
                    let a = addr.val_or_zero();
                    let spm = ctx.spms.get_mut(self.spm);
                    let old = spm.read(a);
                    let v = flit.field(self.value_field).val_or_zero();
                    let new = match op {
                        RmwOp::Increment => old.wrapping_add(1),
                        RmwOp::Add => old.wrapping_add(v),
                        RmwOp::Sub => old.wrapping_sub(v),
                    };
                    spm.write(a, new);
                    self.inflight.push_back((ctx.cycle, a));
                    self.updates += 1;
                }
            }
        }
        ctx.queues.get_mut(self.input).pop();
        if let Some(fq) = self.forward {
            let pushed = try_push(ctx.queues, fq, flit);
            debug_assert!(pushed, "forward space was checked");
        }
        Tick::Active
    }

    fn is_done(&self) -> bool {
        self.done
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }

    fn spm_ids(&self) -> Vec<SpmId> {
        vec![self.spm]
    }

    fn input_queues(&self) -> Vec<QueueId> {
        vec![self.input]
    }

    fn output_queues(&self) -> Vec<QueueId> {
        self.forward.into_iter().collect()
    }
}
