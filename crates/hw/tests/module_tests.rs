//! Behavioral tests for every Genesis hardware library module, driven
//! through the cycle-level engine with sources and sinks.

use genesis_hw::modules::alu::{AluOp, AluRhs, StreamAlu};
use genesis_hw::modules::binidgen::{BinIdGen, BinIdGenConfig};
use genesis_hw::modules::fanout::Fanout;
use genesis_hw::modules::filter::{CmpOp, Filter, Predicate};
use genesis_hw::modules::joiner::{JoinKind, Joiner};
use genesis_hw::modules::mdgen::{MdGen, MdGenConfig};
use genesis_hw::modules::mem_reader::{MemReader, MemReaderConfig, RowSpec};
use genesis_hw::modules::mem_writer::{MemWriter, MemWriterConfig};
use genesis_hw::modules::read_to_bases::{ReadToBases, ReadToBasesInputs};
use genesis_hw::modules::reducer::{ReduceOp, Reducer};
use genesis_hw::modules::sink::StreamSink;
use genesis_hw::modules::source::StreamSource;
use genesis_hw::modules::spm_reader::{SpmAddrReader, SpmReadMode, SpmReader};
use genesis_hw::modules::spm_updater::{RmwOp, SpmUpdateMode, SpmUpdater};
use genesis_hw::word::{Flit, HwWord};
use genesis_hw::System;
use genesis_types::{Base, Cigar, Qual};
use std::sync::Arc;

fn v(x: u64) -> HwWord {
    HwWord::Val(x)
}

/// Builds the per-read input flit streams ReadToBases expects.
fn read_streams(
    pos: u32,
    cigar: &str,
    seq: &str,
    qual: &[u8],
) -> (Vec<Flit>, Vec<Flit>, Vec<Flit>, Vec<Flit>) {
    let cigar: Cigar = cigar.parse().unwrap();
    let mut pos_f = vec![Flit::val(u64::from(pos)), Flit::end_item()];
    let _ = &mut pos_f;
    let mut cigar_f: Vec<Flit> = cigar
        .pack()
        .unwrap()
        .iter()
        .map(|&p| Flit::val(u64::from(p)))
        .collect();
    cigar_f.push(Flit::end_item());
    let mut seq_f: Vec<Flit> = Base::seq_from_str(seq)
        .unwrap()
        .iter()
        .map(|b| Flit::val(u64::from(b.code())))
        .collect();
    seq_f.push(Flit::end_item());
    let mut qual_f: Vec<Flit> = qual.iter().map(|&q| Flit::val(u64::from(q))).collect();
    qual_f.push(Flit::end_item());
    (pos_f, cigar_f, seq_f, qual_f)
}

#[test]
fn joiner_inner_matches_keys() {
    let mut sys = System::new();
    let l = sys.add_queue("l");
    let r = sys.add_queue("r");
    let o = sys.add_queue("o");
    sys.add_module(Box::new(StreamSource::from_field_items(
        "l",
        l,
        &[vec![vec![v(1), v(10)], vec![v(3), v(30)], vec![v(5), v(50)]]],
    )));
    sys.add_module(Box::new(StreamSource::from_field_items(
        "r",
        r,
        &[vec![vec![v(2), v(200)], vec![v(3), v(300)], vec![v(5), v(500)], vec![v(6), v(600)]]],
    )));
    sys.add_module(Box::new(Joiner::new("j", JoinKind::Inner, l, r, o, 1, 1)));
    let sink = sys.add_module(Box::new(StreamSink::new("s", o)));
    sys.run(1000).unwrap();
    let items = sys.module_as::<StreamSink>(sink).unwrap().items();
    assert_eq!(items.len(), 1);
    assert_eq!(
        items[0],
        vec![
            Flit::data(&[v(3), v(30), v(300)]),
            Flit::data(&[v(5), v(50), v(500)]),
        ]
    );
}

#[test]
fn joiner_left_pads_unmatched() {
    let mut sys = System::new();
    let l = sys.add_queue("l");
    let r = sys.add_queue("r");
    let o = sys.add_queue("o");
    sys.add_module(Box::new(StreamSource::from_field_items(
        "l",
        l,
        &[vec![vec![v(1), v(10)], vec![v(2), v(20)]]],
    )));
    sys.add_module(Box::new(StreamSource::from_field_items("r", r, &[vec![vec![v(2), v(200)]]])));
    sys.add_module(Box::new(Joiner::new("j", JoinKind::Left, l, r, o, 1, 1)));
    let sink = sys.add_module(Box::new(StreamSink::new("s", o)));
    sys.run(1000).unwrap();
    let items = sys.module_as::<StreamSink>(sink).unwrap().items();
    assert_eq!(
        items[0],
        vec![
            Flit::data(&[v(1), v(10), HwWord::Del]),
            Flit::data(&[v(2), v(20), v(200)]),
        ]
    );
}

#[test]
fn joiner_outer_keeps_both_sides() {
    let mut sys = System::new();
    let l = sys.add_queue("l");
    let r = sys.add_queue("r");
    let o = sys.add_queue("o");
    sys.add_module(Box::new(StreamSource::from_field_items("l", l, &[vec![vec![v(1), v(10)]]])));
    sys.add_module(Box::new(StreamSource::from_field_items("r", r, &[vec![vec![v(2), v(200)]]])));
    sys.add_module(Box::new(Joiner::new("j", JoinKind::Outer, l, r, o, 1, 1)));
    let sink = sys.add_module(Box::new(StreamSink::new("s", o)));
    sys.run(1000).unwrap();
    let items = sys.module_as::<StreamSink>(sink).unwrap().items();
    assert_eq!(
        items[0],
        vec![
            Flit::data(&[v(1), v(10), HwWord::Del]),
            Flit::data(&[v(2), HwWord::Del, v(200)]),
        ]
    );
}

#[test]
fn joiner_ins_key_passes_left_join_and_drops_inner() {
    for (kind, expect_ins) in [(JoinKind::Left, true), (JoinKind::Inner, false)] {
        let mut sys = System::new();
        let l = sys.add_queue("l");
        let r = sys.add_queue("r");
        let o = sys.add_queue("o");
        sys.add_module(Box::new(StreamSource::from_field_items(
            "l",
            l,
            &[vec![vec![v(1), v(10)], vec![HwWord::Ins, v(99)], vec![v(2), v(20)]]],
        )));
        sys.add_module(Box::new(StreamSource::from_field_items(
            "r",
            r,
            &[vec![vec![v(1), v(100)], vec![v(2), v(200)]]],
        )));
        sys.add_module(Box::new(Joiner::new("j", kind, l, r, o, 1, 1)));
        let sink = sys.add_module(Box::new(StreamSink::new("s", o)));
        sys.run(1000).unwrap();
        let items = sys.module_as::<StreamSink>(sink).unwrap().items();
        let has_ins = items[0].iter().any(|f| f.field(0) == HwWord::Ins);
        assert_eq!(has_ins, expect_ins, "{kind:?}");
        // Matched flits survive in both cases.
        assert!(items[0].contains(&Flit::data(&[v(2), v(20), v(200)])));
    }
}

#[test]
fn joiner_multiple_items_stay_aligned() {
    let mut sys = System::new();
    let l = sys.add_queue("l");
    let r = sys.add_queue("r");
    let o = sys.add_queue("o");
    // Keys restart per item, as reads restart positions per partition row.
    sys.add_module(Box::new(StreamSource::from_field_items(
        "l",
        l,
        &[vec![vec![v(5), v(1)]], vec![vec![v(2), v(2)]]],
    )));
    sys.add_module(Box::new(StreamSource::from_field_items(
        "r",
        r,
        &[vec![vec![v(5), v(11)]], vec![vec![v(2), v(22)]]],
    )));
    sys.add_module(Box::new(Joiner::new("j", JoinKind::Inner, l, r, o, 1, 1)));
    let sink = sys.add_module(Box::new(StreamSink::new("s", o)));
    sys.run(1000).unwrap();
    let items = sys.module_as::<StreamSink>(sink).unwrap().items();
    assert_eq!(items.len(), 2);
    assert_eq!(items[0], vec![Flit::data(&[v(5), v(1), v(11)])]);
    assert_eq!(items[1], vec![Flit::data(&[v(2), v(2), v(22)])]);
}

#[test]
fn filter_const_and_field_predicates() {
    let mut sys = System::new();
    let i = sys.add_queue("i");
    let o = sys.add_queue("o");
    sys.add_module(Box::new(StreamSource::from_field_items(
        "src",
        i,
        &[vec![vec![v(1), v(1)], vec![v(2), v(3)], vec![v(4), v(4)]]],
    )));
    sys.add_module(Box::new(Filter::new("f", Predicate::fields(0, CmpOp::Eq, 1), i, o)));
    let sink = sys.add_module(Box::new(StreamSink::new("s", o)));
    sys.run(1000).unwrap();
    let items = sys.module_as::<StreamSink>(sink).unwrap().items();
    assert_eq!(items[0].len(), 2);
}

#[test]
fn filter_sentinels_count_as_not_equal() {
    // The metadata pipeline's mismatch filter must pass Ins/Del bases.
    let mut sys = System::new();
    let i = sys.add_queue("i");
    let o = sys.add_queue("o");
    sys.add_module(Box::new(StreamSource::from_field_items(
        "src",
        i,
        &[vec![
            vec![v(0), v(0)],              // equal: dropped by Ne
            vec![HwWord::Del, v(0)],       // deletion: passes Ne
            vec![v(1), HwWord::Del],       // insertion padding: passes Ne
            vec![v(2), v(3)],              // mismatch: passes Ne
        ]],
    )));
    sys.add_module(Box::new(Filter::new("f", Predicate::fields(0, CmpOp::Ne, 1), i, o)));
    let sink = sys.add_module(Box::new(StreamSink::new("s", o)));
    sys.run(1000).unwrap();
    assert_eq!(sys.module_as::<StreamSink>(sink).unwrap().items()[0].len(), 3);
}

#[test]
fn reducer_sum_min_max_count_per_item() {
    for (op, expect) in [
        (ReduceOp::Sum, vec![6u64, 30]),
        (ReduceOp::Count, vec![3, 2]),
        (ReduceOp::Min, vec![1, 10]),
        (ReduceOp::Max, vec![3, 20]),
    ] {
        let mut sys = System::new();
        let i = sys.add_queue("i");
        let o = sys.add_queue("o");
        sys.add_module(Box::new(StreamSource::from_items(
            "src",
            i,
            &[vec![1, 2, 3], vec![10, 20]],
        )));
        sys.add_module(Box::new(Reducer::new("r", op, 0, i, o)));
        let sink = sys.add_module(Box::new(StreamSink::new("s", o)));
        sys.run(1000).unwrap();
        let values: Vec<u64> = sys
            .sink_values(sink)
            .iter()
            .map(|w| w.as_val().unwrap())
            .collect();
        assert_eq!(values, expect, "{op:?}");
    }
}

#[test]
fn reducer_masked_sum() {
    let mut sys = System::new();
    let i = sys.add_queue("i");
    let o = sys.add_queue("o");
    sys.add_module(Box::new(StreamSource::from_field_items(
        "src",
        i,
        &[vec![vec![v(5), v(1)], vec![v(7), v(0)], vec![v(9), v(1)]]],
    )));
    sys.add_module(Box::new(Reducer::new("r", ReduceOp::Sum, 0, i, o).with_mask(1)));
    let sink = sys.add_module(Box::new(StreamSink::new("s", o)));
    sys.run(1000).unwrap();
    assert_eq!(sys.sink_values(sink), vec![v(14)]);
}

#[test]
fn reducer_sum_skips_sentinels() {
    let mut sys = System::new();
    let i = sys.add_queue("i");
    let o = sys.add_queue("o");
    sys.add_module(Box::new(StreamSource::from_field_items(
        "src",
        i,
        &[vec![vec![v(5)], vec![HwWord::Del], vec![v(2)]]],
    )));
    sys.add_module(Box::new(Reducer::new("r", ReduceOp::Sum, 0, i, o)));
    let sink = sys.add_module(Box::new(StreamSink::new("s", o)));
    sys.run(1000).unwrap();
    assert_eq!(sys.sink_values(sink), vec![v(7)]);
}

#[test]
fn alu_const_and_queue_operands() {
    let mut sys = System::new();
    let a = sys.add_queue("a");
    let b = sys.add_queue("b");
    let o1 = sys.add_queue("o1");
    let o2 = sys.add_queue("o2");
    sys.add_module(Box::new(StreamSource::from_items("a", a, &[vec![1, 2, 3]])));
    sys.add_module(Box::new(StreamSource::from_items("b", b, &[vec![10, 20, 30]])));
    sys.add_module(Box::new(StreamAlu::new("add", AluOp::Add, a, AluRhs::Queue(b), o1)));
    sys.add_module(Box::new(StreamAlu::new("x10", AluOp::Add, o1, AluRhs::Const(100), o2)));
    let sink = sys.add_module(Box::new(StreamSink::new("s", o2)));
    sys.run(1000).unwrap();
    assert_eq!(sys.sink_values(sink), vec![v(111), v(122), v(133)]);
}

#[test]
fn alu_cmp_and_marker_propagation() {
    let mut sys = System::new();
    let a = sys.add_queue("a");
    let o = sys.add_queue("o");
    sys.add_module(Box::new(StreamSource::from_field_items(
        "a",
        a,
        &[vec![vec![v(5)], vec![v(9)], vec![HwWord::Ins]]],
    )));
    sys.add_module(Box::new(StreamAlu::new("cmp", AluOp::CmpEq, a, AluRhs::Const(9), o)));
    let sink = sys.add_module(Box::new(StreamSink::new("s", o)));
    sys.run(1000).unwrap();
    assert_eq!(sys.sink_values(sink), vec![v(0), v(1), HwWord::Ins]);
}

#[test]
fn fanout_duplicates_stream() {
    let mut sys = System::new();
    let i = sys.add_queue("i");
    let o1 = sys.add_queue("o1");
    let o2 = sys.add_queue("o2");
    sys.add_module(Box::new(StreamSource::from_items("src", i, &[vec![1, 2]])));
    sys.add_module(Box::new(Fanout::new("fan", i, vec![o1, o2])));
    let s1 = sys.add_module(Box::new(StreamSink::new("s1", o1)));
    let s2 = sys.add_module(Box::new(StreamSink::new("s2", o2)));
    sys.run(1000).unwrap();
    assert_eq!(sys.sink_values(s1), sys.sink_values(s2));
    assert_eq!(sys.sink_values(s1), vec![v(1), v(2)]);
}

#[test]
fn mem_reader_streams_column_with_rows() {
    let mut sys = System::new();
    let addr = sys.alloc_mem(256);
    let data: Vec<u8> = (0..100u8).collect();
    sys.host_write(addr, &data);
    let port = sys.register_mem_port(0);
    let o = sys.add_queue("o");
    sys.add_module(Box::new(MemReader::new(
        "rd",
        MemReaderConfig {
            base_addr: addr,
            elem_bytes: 1,
            total_elems: 100,
            rows: RowSpec::Lens(Arc::new(vec![10, 0, 90])),
        },
        port,
        o,
    )));
    let sink = sys.add_module(Box::new(StreamSink::new("s", o)));
    sys.run(10_000).unwrap();
    let items = sys.module_as::<StreamSink>(sink).unwrap().items();
    assert_eq!(items.len(), 3);
    assert_eq!(items[0].len(), 10);
    assert_eq!(items[1].len(), 0);
    assert_eq!(items[2].len(), 90);
    assert_eq!(items[2][89], Flit::val(99));
}

#[test]
fn mem_reader_wide_elements() {
    let mut sys = System::new();
    let addr = sys.alloc_mem(64);
    let vals: Vec<u32> = vec![7, 70, 700, 70_000];
    let bytes: Vec<u8> = vals.iter().flat_map(|x| x.to_le_bytes()).collect();
    sys.host_write(addr, &bytes);
    let port = sys.register_mem_port(0);
    let o = sys.add_queue("o");
    sys.add_module(Box::new(MemReader::new(
        "rd",
        MemReaderConfig { base_addr: addr, elem_bytes: 4, total_elems: 4, rows: RowSpec::None },
        port,
        o,
    )));
    let sink = sys.add_module(Box::new(StreamSink::new("s", o)));
    sys.run(10_000).unwrap();
    assert_eq!(sys.sink_values(sink), vec![v(7), v(70), v(700), v(70_000)]);
}

#[test]
fn mem_writer_round_trip() {
    let mut sys = System::new();
    let addr = sys.alloc_mem(256);
    let port = sys.register_mem_port(0);
    let i = sys.add_queue("i");
    sys.add_module(Box::new(StreamSource::from_items(
        "src",
        i,
        &[vec![11, 22], vec![33, 44, 55]],
    )));
    let w = sys.add_module(Box::new(MemWriter::new(
        "wr",
        MemWriterConfig { base_addr: addr, elem_bytes: 2 },
        port,
        i,
    )));
    sys.run(10_000).unwrap();
    let bytes = sys.host_read(addr, 10);
    let vals: Vec<u16> = bytes.chunks(2).map(|c| u16::from_le_bytes([c[0], c[1]])).collect();
    assert_eq!(vals, vec![11, 22, 33, 44, 55]);
    let writer = sys.module_as::<MemWriter>(w).unwrap();
    assert_eq!(writer.elems_written(), 5);
    assert_eq!(writer.row_lens(), &[2, 3]);
}

#[test]
fn spm_updater_modes() {
    // Sequential.
    let mut sys = System::new();
    let spm = sys.add_spm("s", 8, 8);
    let i = sys.add_queue("i");
    sys.add_module(Box::new(StreamSource::from_items("src", i, &[vec![9, 8, 7]])));
    sys.add_module(Box::new(SpmUpdater::new(
        "u",
        spm,
        SpmUpdateMode::Sequential { base: 2 },
        0,
        0,
        i,
    )));
    sys.run(1000).unwrap();
    assert_eq!(&sys.spms().get(spm).contents()[..6], &[0, 0, 9, 8, 7, 0]);

    // Random.
    let mut sys = System::new();
    let spm = sys.add_spm("s", 8, 8);
    let i = sys.add_queue("i");
    sys.add_module(Box::new(StreamSource::from_field_items(
        "src",
        i,
        &[vec![vec![v(5), v(50)], vec![v(1), v(10)]]],
    )));
    sys.add_module(Box::new(SpmUpdater::new("u", spm, SpmUpdateMode::Random, 0, 1, i)));
    sys.run(1000).unwrap();
    assert_eq!(sys.spms().get(spm).contents()[5], 50);
    assert_eq!(sys.spms().get(spm).contents()[1], 10);
}

#[test]
fn spm_updater_rmw_increment_with_hazards() {
    let mut sys = System::new();
    let spm = sys.add_spm("counts", 4, 8);
    let i = sys.add_queue("i");
    // Repeated address 2 back-to-back provokes the RAW interlock.
    sys.add_module(Box::new(StreamSource::from_items("src", i, &[vec![2, 2, 2, 1, 2]])));
    let u = sys.add_module(Box::new(SpmUpdater::new(
        "u",
        spm,
        SpmUpdateMode::Rmw { op: RmwOp::Increment },
        0,
        0,
        i,
    )));
    sys.run(1000).unwrap();
    assert_eq!(sys.spms().get(spm).contents()[2], 4);
    assert_eq!(sys.spms().get(spm).contents()[1], 1);
    let updater = sys.module_as::<SpmUpdater>(u).unwrap();
    assert!(updater.hazard_stalls() > 0, "back-to-back same-address updates must stall");
    assert_eq!(updater.updates(), 5);
}

#[test]
fn spm_updater_skips_marker_addresses_and_forwards() {
    let mut sys = System::new();
    let spm = sys.add_spm("counts", 4, 8);
    let i = sys.add_queue("i");
    let f = sys.add_queue("f");
    sys.add_module(Box::new(StreamSource::from_field_items(
        "src",
        i,
        &[vec![vec![v(1)], vec![HwWord::Del], vec![v(1)]]],
    )));
    sys.add_module(Box::new(
        SpmUpdater::new("u", spm, SpmUpdateMode::Rmw { op: RmwOp::Increment }, 0, 0, i)
            .with_forward(f),
    ));
    let sink = sys.add_module(Box::new(StreamSink::new("s", f)));
    sys.run(1000).unwrap();
    assert_eq!(sys.spms().get(spm).contents()[1], 2);
    // Forwarding keeps the full stream, including the skipped flit.
    assert_eq!(sys.module_as::<StreamSink>(sink).unwrap().items()[0].len(), 3);
}

#[test]
fn spm_range_reader_streams_intervals() {
    let mut sys = System::new();
    let spm = sys.add_spm("ref", 16, 1);
    sys.spms_mut().get_mut(spm).fill_from(&[100, 101, 102, 103, 104, 105, 106, 107]);
    let qs = sys.add_queue("start");
    let qe = sys.add_queue("end");
    let o = sys.add_queue("o");
    sys.add_module(Box::new(StreamSource::from_items("s", qs, &[vec![1002], vec![1005]])));
    sys.add_module(Box::new(StreamSource::from_items("e", qe, &[vec![1005], vec![1008]])));
    sys.add_module(Box::new(SpmReader::new(
        "rd",
        vec![spm],
        SpmReadMode::Range { start: qs, end: qe },
        1000,
        o,
    )));
    let sink = sys.add_module(Box::new(StreamSink::new("snk", o)));
    sys.run(1000).unwrap();
    let items = sys.module_as::<StreamSink>(sink).unwrap().items();
    assert_eq!(items.len(), 2);
    assert_eq!(items[0], vec![
        Flit::data(&[v(1002), v(102)]),
        Flit::data(&[v(1003), v(103)]),
        Flit::data(&[v(1004), v(104)]),
    ]);
    assert_eq!(items[1].len(), 3);
}

#[test]
fn spm_drain_reader_waits_for_trigger() {
    let mut sys = System::new();
    let spm = sys.add_spm("counts", 4, 8);
    sys.spms_mut().get_mut(spm).fill_from(&[5, 6, 7, 8]);
    let trig = sys.add_queue("trig");
    let o = sys.add_queue("o");
    sys.add_module(Box::new(StreamSource::from_items("t", trig, &[vec![1, 2, 3]])));
    sys.add_module(Box::new(SpmReader::new(
        "drain",
        vec![spm],
        SpmReadMode::Drain { trigger: trig, len: 4 },
        0,
        o,
    )));
    let sink = sys.add_module(Box::new(StreamSink::new("s", o)));
    sys.run(1000).unwrap();
    let vals: Vec<(u64, u64)> = sys
        .module_as::<StreamSink>(sink)
        .unwrap()
        .items()[0]
        .iter()
        .map(|f| (f.field(0).val_or_zero(), f.field(1).val_or_zero()))
        .collect();
    assert_eq!(vals, vec![(0, 5), (1, 6), (2, 7), (3, 8)]);
}

#[test]
fn spm_addr_reader_multi_spm() {
    let mut sys = System::new();
    let a = sys.add_spm("a", 4, 1);
    let b = sys.add_spm("b", 4, 1);
    sys.spms_mut().get_mut(a).fill_from(&[10, 11, 12, 13]);
    sys.spms_mut().get_mut(b).fill_from(&[0, 1, 0, 1]);
    let i = sys.add_queue("i");
    let o = sys.add_queue("o");
    sys.add_module(Box::new(StreamSource::from_items("src", i, &[vec![2, 3]])));
    sys.add_module(Box::new(SpmAddrReader::new("rd", vec![a, b], 0, i, o)));
    let sink = sys.add_module(Box::new(StreamSink::new("s", o)));
    sys.run(1000).unwrap();
    let items = sys.module_as::<StreamSink>(sink).unwrap().items();
    assert_eq!(items[0], vec![
        Flit::data(&[v(2), v(12), v(0)]),
        Flit::data(&[v(3), v(13), v(1)]),
    ]);
}

#[test]
fn read_to_bases_matches_paper_figure3() {
    // Figure 3: POS=104, CIGAR=2S,3M,1I,1M,1D,2M, SEQ=AGGTAAACA,
    // QUAL=##9>>AAB? — output rows (104,G,9), (105,T,>), (106,A,>),
    // (Ins,A,A), (107,A,A), (108,Del,Del), (109,C,B), (110,A,?).
    let (pos_f, cigar_f, seq_f, qual_f) = read_streams(
        104,
        "2S3M1I1M1D2M",
        "AGGTAAACA",
        &Qual::seq_from_str("##9>>AAB?").unwrap().iter().map(|q| q.value()).collect::<Vec<_>>(),
    );
    let mut sys = System::new();
    let qp = sys.add_queue("pos");
    let qc = sys.add_queue("cigar");
    let qs = sys.add_queue("seq");
    let qq = sys.add_queue("qual");
    let o = sys.add_queue("o");
    sys.add_module(Box::new(StreamSource::from_flits("pos", qp, pos_f)));
    sys.add_module(Box::new(StreamSource::from_flits("cigar", qc, cigar_f)));
    sys.add_module(Box::new(StreamSource::from_flits("seq", qs, seq_f)));
    sys.add_module(Box::new(StreamSource::from_flits("qual", qq, qual_f)));
    sys.add_module(Box::new(ReadToBases::new(
        "rtb",
        ReadToBasesInputs { pos: qp, cigar: qc, seq: qs, qual: Some(qq) },
        o,
    )));
    let sink = sys.add_module(Box::new(StreamSink::new("s", o)));
    sys.run(10_000).unwrap();
    let items = sys.module_as::<StreamSink>(sink).unwrap().items();
    assert_eq!(items.len(), 1);
    let rows: Vec<(HwWord, HwWord, HwWord)> =
        items[0].iter().map(|f| (f.field(0), f.field(1), f.field(2))).collect();
    let g = u64::from(Base::G.code());
    let t = u64::from(Base::T.code());
    let a = u64::from(Base::A.code());
    let c = u64::from(Base::C.code());
    let q = |ch: char| v(u64::from(Qual::from_phred33(ch as u8).unwrap().value()));
    assert_eq!(rows, vec![
        (v(104), v(g), q('9')),
        (v(105), v(t), q('>')),
        (v(106), v(a), q('>')),
        (HwWord::Ins, v(a), q('A')),
        (v(107), v(a), q('A')),
        (v(108), HwWord::Del, HwWord::Del),
        (v(109), v(c), q('B')),
        (v(110), v(a), q('?')),
    ]);
    // The seq-index field counts read bases including soft clips.
    assert_eq!(items[0][0].field(3), v(2));
    assert_eq!(items[0][7].field(3), v(8));
}

#[test]
fn read_to_bases_handles_multiple_reads_and_unmapped() {
    let (p1, c1, s1, q1) = read_streams(10, "2M", "AC", &[30, 31]);
    let (p2, c2, s2, q2) = read_streams(20, "1M1D1M", "GT", &[32, 33]);
    let concat = |a: Vec<Flit>, b: Vec<Flit>| {
        let mut out = a;
        out.extend(b);
        out
    };
    let mut sys = System::new();
    let qp = sys.add_queue("pos");
    let qc = sys.add_queue("cigar");
    let qs = sys.add_queue("seq");
    let qq = sys.add_queue("qual");
    let o = sys.add_queue("o");
    sys.add_module(Box::new(StreamSource::from_flits("pos", qp, concat(p1, p2))));
    sys.add_module(Box::new(StreamSource::from_flits("cigar", qc, concat(c1, c2))));
    sys.add_module(Box::new(StreamSource::from_flits("seq", qs, concat(s1, s2))));
    sys.add_module(Box::new(StreamSource::from_flits("qual", qq, concat(q1, q2))));
    sys.add_module(Box::new(ReadToBases::new(
        "rtb",
        ReadToBasesInputs { pos: qp, cigar: qc, seq: qs, qual: Some(qq) },
        o,
    )));
    let sink = sys.add_module(Box::new(StreamSink::new("s", o)));
    sys.run(10_000).unwrap();
    let items = sys.module_as::<StreamSink>(sink).unwrap().items();
    assert_eq!(items.len(), 2);
    assert_eq!(items[0].len(), 2);
    assert_eq!(items[1].len(), 3); // M, D, M
    assert_eq!(items[1][1].field(1), HwWord::Del);
}

#[test]
fn mdgen_produces_paper_md_string() {
    // Figure 2 Read 1: MD is 1C6A3.
    // Joined stream: [pos, read_bp, qual, idx, ref_bp].
    let read = Base::seq_from_str("AGGTAACACGGTA").unwrap();
    let reference = Base::seq_from_str("ACGTAACCAGTA").unwrap();
    let mut flits = Vec::new();
    let mut ri = 0;
    for (i, &rb) in read.iter().enumerate() {
        if i == 7 {
            // Inserted base (1I at offset 7): ref side padding.
            flits.push(Flit::data(&[HwWord::Ins, v(u64::from(rb.code())), v(30), v(i as u64), HwWord::Del]));
        } else {
            flits.push(Flit::data(&[
                v(ri as u64),
                v(u64::from(rb.code())),
                v(30),
                v(i as u64),
                v(u64::from(reference[ri].code())),
            ]));
            ri += 1;
        }
    }
    flits.push(Flit::end_item());
    let mut sys = System::new();
    let i = sys.add_queue("i");
    let o = sys.add_queue("o");
    sys.add_module(Box::new(StreamSource::from_flits("src", i, flits)));
    sys.add_module(Box::new(MdGen::new("md", MdGenConfig { read_field: 1, ref_field: 4 }, i, o)));
    let sink = sys.add_module(Box::new(StreamSink::new("s", o)));
    sys.run(10_000).unwrap();
    let md: String = sys
        .module_as::<StreamSink>(sink)
        .unwrap()
        .items()[0]
        .iter()
        .map(|f| f.field(0).val_or_zero() as u8 as char)
        .collect();
    assert_eq!(md, "1C6A3");
}

#[test]
fn mdgen_deletion_run() {
    // match, del(C), del(G), match  =>  "1^CG1"
    let flits = vec![
        Flit::data(&[v(0), v(0), v(30), v(0), v(0)]),
        Flit::data(&[v(1), HwWord::Del, HwWord::Del, HwWord::Del, v(1)]),
        Flit::data(&[v(2), HwWord::Del, HwWord::Del, HwWord::Del, v(2)]),
        Flit::data(&[v(3), v(3), v(30), v(1), v(3)]),
        Flit::end_item(),
    ];
    let mut sys = System::new();
    let i = sys.add_queue("i");
    let o = sys.add_queue("o");
    sys.add_module(Box::new(StreamSource::from_flits("src", i, flits)));
    sys.add_module(Box::new(MdGen::new("md", MdGenConfig { read_field: 1, ref_field: 4 }, i, o)));
    let sink = sys.add_module(Box::new(StreamSink::new("s", o)));
    sys.run(10_000).unwrap();
    let md: String = sys
        .module_as::<StreamSink>(sink)
        .unwrap()
        .items()[0]
        .iter()
        .map(|f| f.field(0).val_or_zero() as u8 as char)
        .collect();
    assert_eq!(md, "1^CG1");
}

#[test]
fn binidgen_computes_paper_bin_ids() {
    // b1 = q * num_cycle_values + cycle; b2 = q * 16 + context.
    let read_len = 10u32;
    let flits = vec![
        // First base: no context -> b2 = Del.
        Flit::data(&[v(100), v(0), v(20), v(0)]), // A, q20, idx 0
        Flit::data(&[v(101), v(1), v(25), v(1)]), // C after A: ctx AC=1
        Flit::end_item(),
    ];
    let mut sys = System::new();
    let i = sys.add_queue("i");
    let fq = sys.add_queue("flags");
    let o = sys.add_queue("o");
    sys.add_module(Box::new(StreamSource::from_flits("src", i, flits)));
    sys.add_module(Box::new(StreamSource::from_items("flags", fq, &[vec![0]])));
    sys.add_module(Box::new(BinIdGen::new(
        "bin",
        BinIdGenConfig::for_read_len(read_len),
        i,
        fq,
        o,
    )));
    let sink = sys.add_module(Box::new(StreamSink::new("s", o)));
    sys.run(10_000).unwrap();
    let items = sys.module_as::<StreamSink>(sink).unwrap().items();
    let rows = &items[0];
    assert_eq!(rows[0].field(3), v(20 * 20)); // q=20, cov=0, cycles=20
    assert_eq!(rows[0].field(4), HwWord::Del);
    assert_eq!(rows[1].field(3), v(25 * 20 + 1));
    assert_eq!(rows[1].field(4), v(25 * 16 + 1));
}

#[test]
fn binidgen_reverse_read_uses_upper_cycle_range() {
    let read_len = 10u32;
    let flits = vec![Flit::data(&[v(100), v(2), v(30), v(0)]), Flit::end_item()];
    let mut sys = System::new();
    let i = sys.add_queue("i");
    let fq = sys.add_queue("flags");
    let o = sys.add_queue("o");
    sys.add_module(Box::new(StreamSource::from_flits("src", i, flits)));
    sys.add_module(Box::new(StreamSource::from_items("flags", fq, &[vec![1]])));
    sys.add_module(Box::new(BinIdGen::new(
        "bin",
        BinIdGenConfig::for_read_len(read_len),
        i,
        fq,
        o,
    )));
    let sink = sys.add_module(Box::new(StreamSink::new("s", o)));
    sys.run(10_000).unwrap();
    let items = sys.module_as::<StreamSink>(sink).unwrap().items();
    // idx 0 on a reverse read: machine cycle 9, covariate 9 + 10 = 19.
    assert_eq!(items[0][0].field(3), v(30 * 20 + 19));
}

#[test]
fn binidgen_drops_indel_flits() {
    let flits = vec![
        Flit::data(&[HwWord::Ins, v(0), v(20), v(0)]),          // insertion
        Flit::data(&[v(100), HwWord::Del, HwWord::Del, HwWord::Del]), // deletion
        Flit::data(&[v(101), v(1), v(25), v(1)]),
        Flit::end_item(),
    ];
    let mut sys = System::new();
    let i = sys.add_queue("i");
    let fq = sys.add_queue("flags");
    let o = sys.add_queue("o");
    sys.add_module(Box::new(StreamSource::from_flits("src", i, flits)));
    sys.add_module(Box::new(StreamSource::from_items("flags", fq, &[vec![0]])));
    sys.add_module(Box::new(BinIdGen::new("bin", BinIdGenConfig::for_read_len(10), i, fq, o)));
    let sink = sys.add_module(Box::new(StreamSink::new("s", o)));
    sys.run(10_000).unwrap();
    let items = sys.module_as::<StreamSink>(sink).unwrap().items();
    assert_eq!(items[0].len(), 1);
    // Context after a deletion resets: b2 is Del.
    assert_eq!(items[0][0].field(4), HwWord::Del);
}

#[test]
fn to_dot_renders_wiring() {
    let mut sys = System::new();
    let i = sys.add_queue("in");
    let o = sys.add_queue("out");
    sys.add_module(Box::new(StreamSource::from_items("src", i, &[vec![1]])));
    sys.add_module(Box::new(Reducer::new("sum", ReduceOp::Sum, 0, i, o)));
    sys.add_module(Box::new(StreamSink::new("snk", o)));
    let dot = sys.to_dot("test pipeline");
    assert!(dot.starts_with("digraph"));
    assert!(dot.contains("m0 -> m1 [label=\"in\"]"));
    assert!(dot.contains("m1 -> m2 [label=\"out\"]"));
    assert!(dot.contains("Reducer"));
}

#[test]
fn many_readers_contend_for_channels() {
    // Eight readers across two arbiter groups streaming simultaneously:
    // channel and local-arbiter limits must slow the system down relative
    // to a single reader, and every byte must still arrive intact.
    let elems_per_reader = 512u64;
    let run = |n_readers: u32| -> (u64, Vec<Vec<HwWord>>) {
        let mut sys = System::new();
        let mut sinks = Vec::new();
        for r in 0..n_readers {
            let addr = sys.alloc_mem(elems_per_reader as usize);
            let data: Vec<u8> = (0..elems_per_reader).map(|i| (i % 251) as u8).collect();
            sys.host_write(addr, &data);
            let port = sys.register_mem_port(r / 4);
            let q = sys.add_queue("q");
            sys.add_module(Box::new(MemReader::new(
                "rd",
                MemReaderConfig {
                    base_addr: addr,
                    elem_bytes: 1,
                    total_elems: elems_per_reader,
                    rows: RowSpec::None,
                },
                port,
                q,
            )));
            sinks.push(sys.add_module(Box::new(StreamSink::new("s", q))));
        }
        let stats = sys.run(1_000_000).unwrap();
        let outs = sinks.iter().map(|&s| sys.sink_values(s)).collect();
        (stats.cycles, outs)
    };
    let (c1, outs1) = run(1);
    let (c8, outs8) = run(8);
    let expected: Vec<HwWord> =
        (0..elems_per_reader).map(|i| HwWord::Val(i % 251)).collect();
    for out in outs1.iter().chain(&outs8) {
        assert_eq!(out, &expected, "data corrupted under contention");
    }
    // Eight readers share 4 channels and 2 local arbiters: strictly slower
    // than one reader, but far better than 8x serial.
    assert!(c8 > c1, "contention must cost cycles ({c1} vs {c8})");
    assert!(c8 < 8 * c1, "parallel readers must overlap ({c1} vs {c8})");
}

#[test]
fn backpressure_propagates_from_a_slow_consumer() {
    // MDGen emits several bytes per mismatching base (a rate expansion),
    // so it consumes its input slower than the source produces: the input
    // queue must fill and the producer must record backpressure stalls,
    // with no data lost.
    let n = 200u64;
    let mut sys = System::new();
    let a = sys.add_queue("a");
    let b = sys.add_queue("b");
    // Every base mismatches (read base 0 vs ref base 1) -> "0C0C0C...".
    let mut flits: Vec<Flit> = (0..n)
        .map(|i| Flit::data(&[v(i), v(0), v(30), v(i), v(1)]))
        .collect();
    flits.push(Flit::end_item());
    sys.add_module(Box::new(StreamSource::from_flits("src", a, flits)));
    sys.add_module(Box::new(MdGen::new("md", MdGenConfig { read_field: 1, ref_field: 4 }, a, b)));
    let sink = sys.add_module(Box::new(StreamSink::new("s", b)));
    let stats = sys.run(100_000).unwrap();
    let md: String = sys
        .module_as::<StreamSink>(sink)
        .unwrap()
        .items()[0]
        .iter()
        .map(|f| f.field(0).val_or_zero() as u8 as char)
        .collect();
    // n mismatches with zero-length runs between them, trailing 0.
    assert_eq!(md.len() as u64, 2 * n + 1);
    assert!(md.starts_with("0C0C"));
    assert!(
        stats.backpressure_stalls > 0,
        "rate-expanding module must backpressure its producer"
    );
}
