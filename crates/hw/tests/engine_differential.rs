//! Differential tests: the quiescence-aware event engine and the compiled
//! block-step engine must be bit-identical to the naive reference engine —
//! same cycle counts, stall counters, memory traffic, error cycles, and
//! module outputs — for every pipeline. These tests build the same system
//! once per [`EngineMode`] (the block engine additionally at 1, 2, 4 and 8
//! worker threads) and compare everything observable, including the
//! stall-attribution invariant that each module's four buckets tile the
//! run exactly.

use genesis_hw::modules::filter::{CmpOp, Filter, Predicate};
use genesis_hw::modules::joiner::{JoinKind, Joiner};
use genesis_hw::modules::mem_reader::{MemReader, MemReaderConfig, RowSpec};
use genesis_hw::modules::mem_writer::{MemWriter, MemWriterConfig};
use genesis_hw::modules::reducer::{ReduceOp, Reducer};
use genesis_hw::modules::sink::StreamSink;
use genesis_hw::modules::source::StreamSource;
use genesis_hw::modules::spm_updater::{RmwOp, SpmUpdateMode, SpmUpdater};
use genesis_hw::system::ModuleId;
use genesis_hw::word::{Flit, HwWord};
use genesis_hw::{EngineMode, System};
use proptest::prelude::*;

/// Builds the same system under all three engines (the block engine at 1,
/// 2, 4 and 8 worker threads), runs each to `budget`, and asserts that the
/// run outcome (stats or error), the final cycle counter, and the
/// caller-observed state all match exactly. The event and block engines
/// must additionally agree on per-module stall attribution (the reference
/// engine never parks, so its report is all-active by design), and every
/// engine's stall buckets must tile the simulated cycle span per module.
fn assert_engines_agree<H, E>(
    budget: u64,
    build: impl Fn(&mut System) -> H,
    observe: impl Fn(&System, &H) -> E,
) where
    E: PartialEq + std::fmt::Debug,
{
    let run = |mode: EngineMode, threads: usize| {
        let mut sys = System::new();
        let handles = build(&mut sys);
        sys.set_engine(mode);
        sys.set_sim_threads(threads);
        let outcome = sys.run(budget);
        let observed = observe(&sys, &handles);
        let report = sys.stall_report();
        // Span-tiling invariant: active + input-starved + backpressured +
        // memory-wait per module is exactly the simulated cycle span.
        for m in &report.modules {
            assert_eq!(
                m.counters.total(),
                sys.cycle(),
                "stall buckets of {} must tile the {mode:?}/{threads}t run",
                m.label
            );
        }
        (outcome, sys.cycle(), sys.stats(), observed, report)
    };
    let reference = run(EngineMode::Reference, 1);
    let event = run(EngineMode::EventDriven, 1);
    assert_eq!(
        (&reference.0, reference.1, reference.2, &reference.3),
        (&event.0, event.1, event.2, &event.3),
        "event-driven engine diverged from the reference engine"
    );
    for threads in [1usize, 2, 4, 8] {
        let block = run(EngineMode::Block, threads);
        assert_eq!(
            event, block,
            "block engine ({threads} threads) diverged from the event engine"
        );
    }
}

fn sink_flits(sys: &System, id: ModuleId) -> Vec<Flit> {
    sys.module_as::<StreamSink>(id)
        .expect("module is a StreamSink")
        .flits()
        .to_vec()
}

fn reduce_op(tag: u32) -> ReduceOp {
    match tag % 4 {
        0 => ReduceOp::Sum,
        1 => ReduceOp::Count,
        2 => ReduceOp::Min,
        _ => ReduceOp::Max,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// source -> filter -> reducer -> sink with randomized items, queue
    /// capacities (to exercise backpressure parks), predicate threshold,
    /// and reduction op.
    #[test]
    fn filter_reduce_chain_bit_identical(
        items in proptest::collection::vec(
            proptest::collection::vec(0u64..50, 0..8),
            1..6,
        ),
        threshold in 0u64..50,
        cap in 1usize..5,
        op_tag in 0u32..4,
    ) {
        assert_engines_agree(
            50_000,
            |sys| {
                let q_src = sys.add_queue_with_capacity("src", cap);
                let q_flt = sys.add_queue_with_capacity("flt", cap);
                let q_out = sys.add_queue_with_capacity("out", cap);
                sys.add_module(Box::new(StreamSource::from_items("src", q_src, &items)));
                sys.add_module(Box::new(Filter::new(
                    "flt",
                    Predicate::field_const(0, CmpOp::Gt, threshold),
                    q_src,
                    q_flt,
                )));
                sys.add_module(Box::new(Reducer::new("red", reduce_op(op_tag), 0, q_flt, q_out)));
                sys.add_module(Box::new(StreamSink::new("sink", q_out)))
            },
            |sys, &sink| sink_flits(sys, sink),
        );
    }

    /// Two sorted sources -> joiner -> filter -> reducer -> sink. Join kind,
    /// key gaps, payloads, and queue capacity are all randomized; left/outer
    /// joins put `Del` sentinels in the filtered field.
    #[test]
    fn join_pipeline_bit_identical(
        left in proptest::collection::vec((1u64..4, 0u64..100), 0..8),
        right in proptest::collection::vec((1u64..4, 0u64..100), 0..8),
        kind_tag in 0u32..3,
        cap in 1usize..4,
        threshold in 0u64..100,
    ) {
        // Strictly ascending keys from the random gaps.
        let rows = |gaps: &[(u64, u64)]| {
            let mut key = 0u64;
            let mut out = Vec::new();
            for &(gap, val) in gaps {
                key += gap;
                out.push(vec![HwWord::Val(key), HwWord::Val(val)]);
            }
            out
        };
        let (left_rows, right_rows) = (rows(&left), rows(&right));
        let kind = match kind_tag {
            0 => JoinKind::Inner,
            1 => JoinKind::Left,
            _ => JoinKind::Outer,
        };
        assert_engines_agree(
            50_000,
            |sys| {
                let q_l = sys.add_queue_with_capacity("l", cap);
                let q_r = sys.add_queue_with_capacity("r", cap);
                let q_j = sys.add_queue_with_capacity("j", cap);
                let q_f = sys.add_queue_with_capacity("f", cap);
                let q_o = sys.add_queue_with_capacity("o", cap);
                sys.add_module(Box::new(StreamSource::from_field_items(
                    "l",
                    q_l,
                    std::slice::from_ref(&left_rows),
                )));
                sys.add_module(Box::new(StreamSource::from_field_items(
                    "r",
                    q_r,
                    std::slice::from_ref(&right_rows),
                )));
                sys.add_module(Box::new(Joiner::new("join", kind, q_l, q_r, q_j, 1, 1)));
                sys.add_module(Box::new(Filter::new(
                    "flt",
                    Predicate::field_const(2, CmpOp::Gt, threshold),
                    q_j,
                    q_f,
                )));
                sys.add_module(Box::new(Reducer::new("red", ReduceOp::Sum, 1, q_f, q_o)));
                sys.add_module(Box::new(StreamSink::new("sink", q_o)))
            },
            |sys, &sink| sink_flits(sys, sink),
        );
    }
}

/// MemReader -> Reducer -> MemWriter: exercises memory-latency timed wakes
/// (`wake_at`), arbitration stalls, and line flush/park interleavings; the
/// written-back bytes must match byte for byte.
#[test]
fn memory_pipeline_bit_identical() {
    const ELEMS: u64 = 256;
    const ROW: u64 = 8;
    let input: Vec<u8> = (0..ELEMS)
        .flat_map(|i| u32::try_from(i * 3 % 251).unwrap().to_le_bytes())
        .collect();
    assert_engines_agree(
        1_000_000,
        |sys| {
            let in_base = sys.alloc_mem(input.len());
            let out_base = sys.alloc_mem((ELEMS / ROW) as usize * 8);
            sys.host_write(in_base, &input);
            let rd_port = sys.register_mem_port(0);
            let wr_port = sys.register_mem_port(0);
            let q_rd = sys.add_queue_with_capacity("rd", 4);
            let q_sum = sys.add_queue_with_capacity("sum", 4);
            sys.add_module(Box::new(MemReader::new(
                "rd",
                MemReaderConfig {
                    base_addr: in_base,
                    elem_bytes: 4,
                    total_elems: ELEMS,
                    rows: RowSpec::Fixed(ROW),
                },
                rd_port,
                q_rd,
            )));
            sys.add_module(Box::new(Reducer::new("sum", ReduceOp::Sum, 0, q_rd, q_sum)));
            sys.add_module(Box::new(MemWriter::new(
                "wr",
                MemWriterConfig { base_addr: out_base, elem_bytes: 8 },
                wr_port,
                q_sum,
            )));
            out_base
        },
        |sys, &out_base| sys.host_read(out_base, (ELEMS / ROW) as usize * 8),
    );
}

/// Source -> RMW SpmUpdater (with forward) -> sink: exercises the 3-stage
/// RAW interlock (hazard stalls must be re-counted every naive cycle) and
/// the deferred-retire park path; final scratchpad contents must match.
#[test]
fn spm_rmw_pipeline_bit_identical() {
    // Clustered addresses provoke RAW hazards in the 3-deep RMW pipeline.
    let rows: Vec<Vec<HwWord>> = (0..64u64)
        .map(|i| vec![HwWord::Val(i % 5), HwWord::Val(i)])
        .collect();
    assert_engines_agree(
        100_000,
        |sys| {
            let spm = sys.add_spm("counts", 8, 8);
            let q_in = sys.add_queue_with_capacity("in", 2);
            let q_fwd = sys.add_queue_with_capacity("fwd", 2);
            sys.add_module(Box::new(StreamSource::from_field_items(
                "src",
                q_in,
                std::slice::from_ref(&rows),
            )));
            sys.add_module(Box::new(
                SpmUpdater::new(
                    "rmw",
                    spm,
                    SpmUpdateMode::Rmw { op: RmwOp::Add },
                    0,
                    1,
                    q_in,
                )
                .with_forward(q_fwd),
            ));
            let sink = sys.add_module(Box::new(StreamSink::new("sink", q_fwd)));
            (spm, sink)
        },
        |sys, &(spm, sink)| {
            (sys.spms().get(spm).contents().to_vec(), sink_flits(sys, sink))
        },
    );
}

/// Several fully independent chains in one system: this is the shape the
/// block engine partitions across worker threads (no shared queues, no
/// memory modules), so the 2/4/8-thread runs inside
/// [`assert_engines_agree`] exercise the real lockstep parallel path.
#[test]
fn independent_chains_bit_identical_across_threads() {
    assert_engines_agree(
        200_000,
        |sys| {
            let mut sinks = Vec::new();
            for p in 0..6u64 {
                let q_src = sys.add_queue_with_capacity(&format!("src{p}"), 2 + p as usize);
                let q_out = sys.add_queue_with_capacity(&format!("out{p}"), 2);
                let items: Vec<Vec<u64>> =
                    (0..40).map(|i| vec![(i * 7 + p) % 50, i + p]).collect();
                sys.add_module(Box::new(StreamSource::from_items(
                    &format!("s{p}"),
                    q_src,
                    &items,
                )));
                sys.add_module(Box::new(Filter::new(
                    &format!("f{p}"),
                    Predicate::field_const(0, CmpOp::Gt, 10 + p),
                    q_src,
                    q_out,
                )));
                sinks.push(sys.add_module(Box::new(StreamSink::new(&format!("k{p}"), q_out))));
            }
            sinks
        },
        |sys, sinks| sinks.iter().map(|&s| sink_flits(sys, s)).collect::<Vec<_>>(),
    );
}

/// A memory-bound component next to pure-stream components: the component
/// holding the MemReader/MemWriter keeps the real memory system while the
/// others run against inert stand-ins, and the merged stats must still be
/// bit-identical at every thread count.
#[test]
fn mixed_memory_and_stream_components_bit_identical() {
    const ELEMS: u64 = 64;
    let input: Vec<u8> = (0..ELEMS * 4).map(|i| (i * 13 % 251) as u8).collect();
    assert_engines_agree(
        500_000,
        |sys| {
            let in_base = sys.alloc_mem(input.len());
            let out_base = sys.alloc_mem(ELEMS as usize * 8);
            sys.host_write(in_base, &input);
            let rd_port = sys.register_mem_port(0);
            let wr_port = sys.register_mem_port(0);
            let q_rd = sys.add_queue_with_capacity("rd", 4);
            sys.add_module(Box::new(MemReader::new(
                "rd",
                MemReaderConfig {
                    base_addr: in_base,
                    elem_bytes: 4,
                    total_elems: ELEMS,
                    rows: RowSpec::Fixed(8),
                },
                rd_port,
                q_rd,
            )));
            sys.add_module(Box::new(MemWriter::new(
                "wr",
                MemWriterConfig { base_addr: out_base, elem_bytes: 8 },
                wr_port,
                q_rd,
            )));
            let mut sinks = Vec::new();
            for p in 0..3u64 {
                let q_s = sys.add_queue_with_capacity(&format!("sq{p}"), 3);
                let q_r = sys.add_queue_with_capacity(&format!("rq{p}"), 3);
                let items: Vec<Vec<u64>> = (0..25).map(|i| vec![i * 3 + p, i]).collect();
                sys.add_module(Box::new(StreamSource::from_items(
                    &format!("ss{p}"),
                    q_s,
                    &items,
                )));
                sys.add_module(Box::new(Reducer::new(
                    &format!("sr{p}"),
                    ReduceOp::Sum,
                    0,
                    q_s,
                    q_r,
                )));
                sinks.push(sys.add_module(Box::new(StreamSink::new(&format!("sk{p}"), q_r))));
            }
            (out_base, sinks)
        },
        |sys, (out_base, sinks)| {
            (
                sys.host_read(*out_base, ELEMS as usize * 8),
                sinks.iter().map(|&s| sink_flits(sys, s)).collect::<Vec<_>>(),
            )
        },
    );
}

/// A deadlock split across independent components must fire at the same
/// cycle with the same stuck set whether the components run on one thread
/// or several.
#[test]
fn partitioned_deadlock_bit_identical() {
    assert_engines_agree(
        u64::MAX >> 2,
        |sys| {
            // Component 0 completes; components 1 and 2 starve forever.
            let q_done = sys.add_queue("done");
            sys.add_module(Box::new(StreamSource::from_items("src", q_done, &[vec![1, 2]])));
            sys.add_module(Box::new(StreamSink::new("sink", q_done)));
            for p in 0..2 {
                let q = sys.add_queue(&format!("never{p}"));
                sys.add_module(Box::new(StreamSink::new(&format!("stuck{p}"), q)));
            }
        },
        |_, ()| (),
    );
}

/// Both engines must declare a deadlock at the identical cycle with the
/// identical stuck set — the event engine reaches it via closed-form idle
/// fast-forward rather than ticking through the window.
#[test]
fn deadlock_cycle_bit_identical() {
    assert_engines_agree(
        u64::MAX >> 2,
        |sys| {
            let q = sys.add_queue("never-closed");
            sys.add_module(Box::new(StreamSink::new("sink", q)))
        },
        |_, _| (),
    );
}

/// Cycle-limit exhaustion must also fire identically, including when the
/// limit lands inside an all-parked idle stretch.
#[test]
fn cycle_limit_bit_identical() {
    for budget in [100, 511, 512, 513, 10_000] {
        assert_engines_agree(
            budget,
            |sys| {
                let q = sys.add_queue("never-closed");
                sys.add_module(Box::new(StreamSink::new("sink", q)))
            },
            |_, _| (),
        );
    }
}
