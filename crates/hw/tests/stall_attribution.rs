//! Stall-attribution invariants: for every module of every pipeline, the
//! four accounting buckets (active / input-starved / backpressured /
//! memory-wait) must sum exactly to the total simulated cycles, and the
//! recorded trace spans must tile the same timeline.

use genesis_hw::modules::filter::{CmpOp, Filter, Predicate};
use genesis_hw::modules::mem_reader::{MemReader, MemReaderConfig, RowSpec};
use genesis_hw::modules::mem_writer::{MemWriter, MemWriterConfig};
use genesis_hw::modules::reducer::{ReduceOp, Reducer};
use genesis_hw::modules::sink::StreamSink;
use genesis_hw::modules::source::StreamSource;
use genesis_hw::{EngineMode, StallReport, System, TraceConfig};
use genesis_obs::SpanKind;

/// Asserts the core invariant on a finished system: every module's buckets
/// sum to the report's total cycles.
fn assert_invariant(report: &StallReport) {
    assert!(!report.modules.is_empty());
    for m in &report.modules {
        assert_eq!(
            m.counters.total(),
            report.total_cycles,
            "module {}: active {} + input {} + backpr {} + mem {} != total {}",
            m.label,
            m.counters.active,
            m.counters.input_starved,
            m.counters.backpressured,
            m.counters.memory_wait,
            report.total_cycles,
        );
    }
}

fn build_stream_chain(sys: &mut System) {
    let items: Vec<Vec<u64>> = (0..12).map(|i| (0..6).map(|j| i * 6 + j).collect()).collect();
    let q_src = sys.add_queue_with_capacity("src", 2);
    let q_flt = sys.add_queue_with_capacity("flt", 2);
    let q_out = sys.add_queue_with_capacity("out", 2);
    sys.add_module(Box::new(StreamSource::from_items("src", q_src, &items)));
    sys.add_module(Box::new(Filter::new(
        "flt",
        Predicate::field_const(0, CmpOp::Gt, 10),
        q_src,
        q_flt,
    )));
    sys.add_module(Box::new(Reducer::new("red", ReduceOp::Sum, 0, q_flt, q_out)));
    sys.add_module(Box::new(StreamSink::new("sink", q_out)));
}

fn build_memory_pipeline(sys: &mut System) {
    const ELEMS: u64 = 128;
    let input: Vec<u8> = (0..ELEMS)
        .flat_map(|i| u32::try_from(i % 97).unwrap().to_le_bytes())
        .collect();
    let in_base = sys.alloc_mem(input.len());
    let out_base = sys.alloc_mem((ELEMS / 8) as usize * 8);
    sys.host_write(in_base, &input);
    let rd_port = sys.register_mem_port(0);
    let wr_port = sys.register_mem_port(0);
    let q_rd = sys.add_queue_with_capacity("rd", 4);
    let q_sum = sys.add_queue_with_capacity("sum", 4);
    sys.add_module(Box::new(MemReader::new(
        "rd",
        MemReaderConfig {
            base_addr: in_base,
            elem_bytes: 4,
            total_elems: ELEMS,
            rows: RowSpec::Fixed(8),
        },
        rd_port,
        q_rd,
    )));
    sys.add_module(Box::new(Reducer::new("sum", ReduceOp::Sum, 0, q_rd, q_sum)));
    sys.add_module(Box::new(MemWriter::new(
        "wr",
        MemWriterConfig { base_addr: out_base, elem_bytes: 8 },
        wr_port,
        q_sum,
    )));
}

#[test]
fn stream_chain_buckets_sum_to_total() {
    let mut sys = System::new();
    build_stream_chain(&mut sys);
    sys.run(50_000).expect("pipeline drains");
    let report = sys.stall_report();
    assert_eq!(report.total_cycles, sys.cycle());
    assert_invariant(&report);
    // Tiny queues force at least some park somewhere in the chain.
    assert!(report.totals().parked() > 0, "expected some parked cycles:\n{report}");
}

#[test]
fn memory_pipeline_attributes_memory_waits() {
    let mut sys = System::new();
    build_memory_pipeline(&mut sys);
    sys.run(1_000_000).expect("pipeline drains");
    let report = sys.stall_report();
    assert_invariant(&report);
    let rd = report.modules.iter().find(|m| m.label == "rd").unwrap();
    assert!(
        rd.counters.memory_wait > 0,
        "memory reader should wait out latency windows:\n{report}"
    );
}

#[test]
fn reference_engine_reports_all_cycles_active() {
    let mut sys = System::new();
    sys.set_engine(EngineMode::Reference);
    build_stream_chain(&mut sys);
    sys.run(50_000).expect("pipeline drains");
    let report = sys.stall_report();
    assert_invariant(&report);
    for m in &report.modules {
        assert_eq!(m.counters.parked(), 0, "reference engine never parks ({})", m.label);
        assert_eq!(m.counters.active, report.total_cycles);
    }
}

#[test]
fn deadlock_exit_still_satisfies_invariant() {
    let mut sys = System::new();
    let q = sys.add_queue("never-closed");
    sys.add_module(Box::new(StreamSink::new("sink", q)));
    sys.run(u64::MAX >> 2).expect_err("deadlocks");
    assert_invariant(&sys.stall_report());
}

#[test]
fn trace_spans_tile_the_attribution() {
    let mut sys = System::new();
    sys.set_trace(TraceConfig::on());
    build_memory_pipeline(&mut sys);
    sys.run(1_000_000).expect("pipeline drains");
    let report = sys.stall_report();
    assert_invariant(&report);
    let trace = sys.trace().expect("tracing enabled");
    assert_eq!(trace.dropped_spans(), 0, "ring large enough for this run");
    assert_eq!(trace.tracks().len(), report.modules.len());
    for (track, m) in report.modules.iter().enumerate() {
        let mut active = 0u64;
        let mut stalled = 0u64;
        let mut spans: Vec<_> =
            trace.spans().filter(|s| s.track == track as u32).collect();
        spans.sort_by_key(|s| s.start);
        let mut prev_end = 0u64;
        for s in &spans {
            assert!(s.start >= prev_end, "overlapping spans on track {track}");
            assert!(s.end <= sys.cycle());
            prev_end = s.end;
            match s.kind {
                SpanKind::Active => active += s.end - s.start,
                SpanKind::Stall(_) => stalled += s.end - s.start,
            }
        }
        assert_eq!(active, m.counters.active, "active spans tile bucket ({})", m.label);
        assert_eq!(stalled, m.counters.parked(), "stall spans tile buckets ({})", m.label);
    }
    // Queue-depth samples were captured for the sampled strides.
    assert!(trace.samples().count() > 0);
}

#[test]
fn tracing_does_not_change_results_or_stats() {
    let run = |trace: bool| {
        let mut sys = System::new();
        if trace {
            sys.set_trace(TraceConfig::on());
        }
        build_stream_chain(&mut sys);
        let stats = sys.run(50_000).expect("pipeline drains");
        (stats, sys.cycle())
    };
    assert_eq!(run(false), run(true), "tracing must be observation-only");
}
