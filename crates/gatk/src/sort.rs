//! Coordinate sorting of aligned reads.

use genesis_types::ReadRecord;

/// Sorts reads by (chromosome, aligned start position, name) — the
/// coordinate order GATK establishes during the Mark Duplicates stage
/// (paper §IV-A: "this step also sorts all reads based on their starting
/// positions").
pub fn coordinate_sort(reads: &mut [ReadRecord]) {
    reads.sort_by(|a, b| {
        (a.chr, a.pos, a.name.as_str()).cmp(&(b.chr, b.pos, b.name.as_str()))
    });
}

/// True when reads are in coordinate order.
#[must_use]
pub fn is_coordinate_sorted(reads: &[ReadRecord]) -> bool {
    reads.windows(2).all(|w| (w[0].chr, w[0].pos) <= (w[1].chr, w[1].pos))
}

#[cfg(test)]
mod tests {
    use super::*;
    use genesis_types::{Base, Chrom, Qual};

    fn read(chr: u8, pos: u32, name: &str) -> ReadRecord {
        ReadRecord::builder(name, Chrom::new(chr), pos)
            .cigar("2M".parse().unwrap())
            .seq(Base::seq_from_str("AC").unwrap())
            .qual(vec![Qual::new(30).unwrap(); 2])
            .build()
            .unwrap()
    }

    #[test]
    fn sorts_by_chrom_then_pos() {
        let mut reads =
            vec![read(2, 5, "a"), read(1, 9, "b"), read(1, 3, "c"), read(2, 1, "d")];
        assert!(!is_coordinate_sorted(&reads));
        coordinate_sort(&mut reads);
        let order: Vec<&str> = reads.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(order, vec!["c", "b", "d", "a"]);
        assert!(is_coordinate_sorted(&reads));
    }

    #[test]
    fn name_breaks_ties_deterministically() {
        let mut reads = vec![read(1, 5, "z"), read(1, 5, "a")];
        coordinate_sort(&mut reads);
        assert_eq!(reads[0].name, "a");
    }

    #[test]
    fn empty_and_single_are_sorted() {
        assert!(is_coordinate_sorted(&[]));
        assert!(is_coordinate_sorted(&[read(1, 1, "x")]));
    }
}
