//! The full GATK4-analog preprocessing pipeline with per-stage timing
//! (the measurement substrate behind paper Figure 9).

use crate::align::{align_all, KmerIndex};
use crate::bqsr::{apply_recalibration, build_covariate_table, CovariateTable, RecalReport};
use crate::markdup::{mark_duplicates, MarkDupReport};
use crate::metadata::{set_nm_md_uq_tags, MetadataReport};
use genesis_types::{ReadRecord, ReferenceGenome, TypeError};
use std::time::{Duration, Instant};

/// Wall-clock time of each preprocessing stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimings {
    /// Alignment (seed + banded extension).
    pub alignment: Duration,
    /// Mark Duplicates (incl. coordinate sort).
    pub mark_duplicates: Duration,
    /// Metadata update (`SetNmMdAndUqTags`).
    pub metadata_update: Duration,
    /// BQSR covariate table construction.
    pub bqsr_table: Duration,
    /// BQSR quality score update.
    pub bqsr_update: Duration,
}

impl StageTimings {
    /// Total pipeline time.
    #[must_use]
    pub fn total(&self) -> Duration {
        self.alignment
            + self.mark_duplicates
            + self.metadata_update
            + self.bqsr_table
            + self.bqsr_update
    }

    /// Fractions per stage (summing to 1), in Figure 9's stage order.
    #[must_use]
    pub fn fractions(&self) -> [(&'static str, f64); 5] {
        let t = self.total().as_secs_f64().max(1e-12);
        [
            ("Alignment", self.alignment.as_secs_f64() / t),
            ("Duplicate Marking", self.mark_duplicates.as_secs_f64() / t),
            ("Metadata Update", self.metadata_update.as_secs_f64() / t),
            ("BQSR (covariate table construction)", self.bqsr_table.as_secs_f64() / t),
            ("BQSR (quality score update)", self.bqsr_update.as_secs_f64() / t),
        ]
    }
}

/// Everything the pipeline produced.
#[derive(Debug)]
pub struct PipelineReport {
    /// Per-stage timings.
    pub timings: StageTimings,
    /// Mark Duplicates outcome.
    pub markdup: MarkDupReport,
    /// Metadata outcome.
    pub metadata: MetadataReport,
    /// The constructed covariate table.
    pub covariates: CovariateTable,
    /// Recalibration outcome.
    pub recal: RecalReport,
}

/// Configuration of a pipeline run.
#[derive(Debug, Clone, Copy)]
pub struct PreprocessingPipeline {
    /// Run the (expensive) alignment stage; when false, the generator's
    /// alignments are kept and alignment time is reported as zero.
    pub run_alignment: bool,
    /// k-mer length for the alignment index.
    pub aligner_k: usize,
    /// Number of read groups in the data set.
    pub read_groups: u8,
    /// Read length of the data set.
    pub read_len: u32,
}

impl PreprocessingPipeline {
    /// Creates a pipeline configuration matching a data set's shape.
    #[must_use]
    pub fn new(read_groups: u8, read_len: u32) -> PreprocessingPipeline {
        PreprocessingPipeline { run_alignment: false, aligner_k: 17, read_groups, read_len }
    }

    /// Enables the alignment stage.
    #[must_use]
    pub fn with_alignment(mut self) -> PreprocessingPipeline {
        self.run_alignment = true;
        self
    }

    /// Runs all stages over `reads`, mutating them in place (sorted,
    /// duplicate-flagged, tagged, recalibrated).
    ///
    /// # Errors
    ///
    /// Propagates [`TypeError`] from the metadata stage on malformed reads.
    pub fn run(
        &self,
        reads: &mut Vec<ReadRecord>,
        genome: &ReferenceGenome,
    ) -> Result<PipelineReport, TypeError> {
        let mut timings = StageTimings::default();

        if self.run_alignment {
            let t = Instant::now();
            let index = KmerIndex::build(genome, self.aligner_k);
            *reads = align_all(&index, reads);
            timings.alignment = t.elapsed();
        }

        let t = Instant::now();
        let markdup = mark_duplicates(reads);
        timings.mark_duplicates = t.elapsed();

        let t = Instant::now();
        let metadata = set_nm_md_uq_tags(reads, genome)?;
        timings.metadata_update = t.elapsed();

        let t = Instant::now();
        let covariates = build_covariate_table(reads, genome, self.read_groups, self.read_len);
        timings.bqsr_table = t.elapsed();

        let t = Instant::now();
        let recal = apply_recalibration(reads, genome, &covariates);
        timings.bqsr_update = t.elapsed();

        Ok(PipelineReport { timings, markdup, metadata, covariates, recal })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genesis_datagen::{DatagenConfig, Dataset};

    #[test]
    fn full_pipeline_runs_end_to_end() {
        let cfg = DatagenConfig::tiny();
        let mut dataset = Dataset::generate(&cfg);
        let pipeline = PreprocessingPipeline::new(cfg.read_groups, cfg.read_len);
        let report = pipeline.run(&mut dataset.reads, &dataset.genome).unwrap();
        assert!(report.markdup.duplicates > 0);
        assert_eq!(report.metadata.updated, dataset.reads.len());
        assert!(report.covariates.total_observations() > 0);
        assert!(report.recal.bases_visited > 0);
        // Reads end up sorted and tagged.
        assert!(crate::sort::is_coordinate_sorted(&dataset.reads));
        assert!(dataset.reads.iter().all(|r| r.md.is_some()));
    }

    #[test]
    fn alignment_stage_recovers_generator_positions() {
        let cfg = DatagenConfig {
            num_reads: 60,
            chrom_len: 30_000,
            num_chromosomes: 1,
            // Indels and clips complicate exact position recovery; the
            // alignment-quality test in align.rs covers those. Here we
            // check the pipeline plumbing.
            insertion_rate: 0.0,
            deletion_rate: 0.0,
            soft_clip_rate: 0.0,
            ..DatagenConfig::tiny()
        };
        let mut dataset = Dataset::generate(&cfg);
        let truth: std::collections::HashMap<String, u32> = dataset
            .reads
            .iter()
            .map(|r| (r.name.clone(), r.pos))
            .collect();
        let pipeline = PreprocessingPipeline::new(cfg.read_groups, cfg.read_len).with_alignment();
        let report = pipeline.run(&mut dataset.reads, &dataset.genome).unwrap();
        assert!(report.timings.alignment > Duration::ZERO);
        let recovered = dataset
            .reads
            .iter()
            .filter(|r| truth.get(&r.name) == Some(&r.pos))
            .count();
        let rate = recovered as f64 / dataset.reads.len() as f64;
        assert!(rate > 0.95, "aligner only recovered {rate:.2} of positions");
    }

    #[test]
    fn fractions_sum_to_one() {
        let timings = StageTimings {
            alignment: Duration::from_millis(60),
            mark_duplicates: Duration::from_millis(10),
            metadata_update: Duration::from_millis(20),
            bqsr_table: Duration::from_millis(5),
            bqsr_update: Duration::from_millis(5),
        };
        let sum: f64 = timings.fractions().iter().map(|(_, f)| f).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert_eq!(timings.total(), Duration::from_millis(100));
    }
}
