//! Mark Duplicates (paper §IV-B).
//!
//! Reads originating from the same DNA fragment (PCR amplification copies)
//! share the same *unclipped 5′ prime position* and orientation. Within
//! each such set, the read with the highest sum of quality scores survives;
//! the rest are flagged as duplicates.

use crate::sort::coordinate_sort;
use genesis_types::{ReadFlags, ReadRecord};
use std::collections::HashMap;

/// Outcome of the Mark Duplicates stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MarkDupReport {
    /// Total reads processed.
    pub total: usize,
    /// Reads flagged as duplicates.
    pub duplicates: usize,
    /// Number of distinct duplicate keys with more than one member.
    pub duplicate_sets: usize,
}

/// The duplicate key of a read: chromosome, unclipped 5′ position,
/// orientation, and (for paired reads) the mate's key half (footnote 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DuplicateKey {
    chr: u8,
    five_prime: u32,
    reverse: bool,
    mate: Option<(u8, u32, bool)>,
}

impl DuplicateKey {
    /// Computes the key for a read.
    #[must_use]
    pub fn of(read: &ReadRecord) -> DuplicateKey {
        DuplicateKey {
            chr: read.chr.id(),
            five_prime: read.unclipped_five_prime(),
            reverse: read.flags.is_reverse(),
            mate: read.mate.as_ref().map(|m| (m.chr.id(), m.unclipped_five_prime, m.reverse)),
        }
    }
}

/// Computes the per-read sum of quality scores — the computation the
/// Genesis Mark Duplicates accelerator offloads (paper Figure 10).
#[must_use]
pub fn quality_sums(reads: &[ReadRecord]) -> Vec<u64> {
    reads.iter().map(ReadRecord::quality_sum).collect()
}

/// Runs the full Mark Duplicates stage: coordinate sort, duplicate-set
/// identification, and survivor selection. Returns the report; duplicate
/// reads get [`ReadFlags::DUPLICATE`] set in place.
pub fn mark_duplicates(reads: &mut [ReadRecord]) -> MarkDupReport {
    let sums = quality_sums(reads);
    mark_duplicates_with_sums(reads, &sums)
}

/// The host-side portion of the stage, taking precomputed quality sums
/// (from software or from the accelerator): everything in §IV-B except the
/// sum-of-quality-scores computation.
///
/// # Panics
///
/// Panics when `sums.len() != reads.len()`.
pub fn mark_duplicates_with_sums(reads: &mut [ReadRecord], sums: &[u64]) -> MarkDupReport {
    assert_eq!(reads.len(), sums.len(), "one quality sum per read");
    // Find the best (max quality sum; ties by name for determinism) read
    // per duplicate key, before sorting perturbs indices.
    let mut best: HashMap<DuplicateKey, (u64, &str, usize)> = HashMap::new();
    let mut members: HashMap<DuplicateKey, usize> = HashMap::new();
    for (i, read) in reads.iter().enumerate() {
        if read.flags.is_unmapped() {
            continue;
        }
        let key = DuplicateKey::of(read);
        *members.entry(key).or_insert(0) += 1;
        let candidate = (sums[i], read.name.as_str(), i);
        match best.get(&key) {
            Some(&(s, n, _)) if (s, n) >= (candidate.0, candidate.1) => {}
            _ => {
                best.insert(key, candidate);
            }
        }
    }
    let survivors: std::collections::HashSet<usize> =
        best.values().map(|&(_, _, i)| i).collect();
    let mut duplicates = 0;
    for (i, read) in reads.iter_mut().enumerate() {
        if read.flags.is_unmapped() {
            continue;
        }
        let key = DuplicateKey::of(read);
        if members[&key] > 1 && !survivors.contains(&i) {
            read.flags.insert(ReadFlags::DUPLICATE);
            duplicates += 1;
        } else {
            read.flags.remove(ReadFlags::DUPLICATE);
        }
    }
    let duplicate_sets = members.values().filter(|&&n| n > 1).count();
    coordinate_sort(reads);
    MarkDupReport { total: reads.len(), duplicates, duplicate_sets }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genesis_types::{Base, Chrom, Qual};

    fn read(name: &str, pos: u32, cigar: &str, quals: &[u8], reverse: bool) -> ReadRecord {
        let cigar: genesis_types::Cigar = cigar.parse().unwrap();
        let n = cigar.read_len() as usize;
        let seq: Vec<Base> = (0..n).map(|i| Base::from_code((i % 4) as u8)).collect();
        ReadRecord::builder(name, Chrom::new(1), pos)
            .cigar(cigar)
            .seq(seq)
            .qual(quals.iter().map(|&q| Qual::new(q).unwrap()).collect())
            .flags(ReadFlags::empty().with(ReadFlags::REVERSE, reverse))
            .build()
            .unwrap()
    }

    #[test]
    fn highest_quality_sum_survives() {
        let mut reads = vec![
            read("low", 100, "4M", &[10, 10, 10, 10], false),
            read("high", 100, "4M", &[30, 30, 30, 30], false),
            read("mid", 100, "4M", &[20, 20, 20, 20], false),
        ];
        let report = mark_duplicates(&mut reads);
        assert_eq!(report.duplicates, 2);
        assert_eq!(report.duplicate_sets, 1);
        for r in &reads {
            assert_eq!(r.flags.is_duplicate(), r.name != "high", "{}", r.name);
        }
    }

    #[test]
    fn soft_clips_join_duplicate_sets() {
        // pos 102 with 2 leading soft clips has unclipped start 100:
        // a duplicate of the read aligned at 100.
        let mut reads = vec![
            read("plain", 100, "4M", &[30, 30, 30, 30], false),
            read("clipped", 102, "2S4M", &[10, 10, 10, 10, 10, 10], false),
        ];
        let report = mark_duplicates(&mut reads);
        assert_eq!(report.duplicates, 1);
        assert!(reads.iter().find(|r| r.name == "clipped").unwrap().flags.is_duplicate());
    }

    #[test]
    fn strand_separates_sets() {
        let mut reads = vec![
            read("fwd", 100, "4M", &[30; 4], false),
            read("rev", 100, "4M", &[10; 4], true),
        ];
        let report = mark_duplicates(&mut reads);
        assert_eq!(report.duplicates, 0);
    }

    #[test]
    fn reverse_reads_key_on_unclipped_end() {
        // Reverse reads with the same unclipped 5' end (= end + trailing
        // clips) are duplicates even when POS differs.
        let mut reads = vec![
            read("a", 100, "4M", &[30; 4], true), // end 104
            read("b", 102, "2M2S", &[9; 4], true), // end 104 + 0... unclipped_end = 102+2+2 = 106
            read("c", 102, "2M", &[8; 2], true),  // end 104
        ];
        let report = mark_duplicates(&mut reads);
        assert_eq!(report.duplicates, 1);
        assert!(reads.iter().find(|r| r.name == "c").unwrap().flags.is_duplicate());
        assert!(!reads.iter().find(|r| r.name == "b").unwrap().flags.is_duplicate());
    }

    #[test]
    fn output_is_sorted() {
        let mut reads = vec![
            read("z", 500, "4M", &[30; 4], false),
            read("a", 100, "4M", &[30; 4], false),
        ];
        mark_duplicates(&mut reads);
        assert_eq!(reads[0].pos, 100);
    }

    #[test]
    fn rerunning_is_idempotent() {
        let mut reads = vec![
            read("low", 100, "4M", &[10; 4], false),
            read("high", 100, "4M", &[30; 4], false),
        ];
        mark_duplicates(&mut reads);
        let first: Vec<bool> = reads.iter().map(|r| r.flags.is_duplicate()).collect();
        mark_duplicates(&mut reads);
        let second: Vec<bool> = reads.iter().map(|r| r.flags.is_duplicate()).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn precomputed_sums_match_inline() {
        let mut a = vec![
            read("x", 100, "4M", &[10; 4], false),
            read("y", 100, "4M", &[30; 4], false),
        ];
        let mut b = a.clone();
        let sums = quality_sums(&a);
        let r1 = mark_duplicates(&mut a);
        let r2 = mark_duplicates_with_sums(&mut b, &sums);
        assert_eq!(r1, r2);
        assert_eq!(a, b);
    }
}
