//! # genesis-gatk
//!
//! A faithful Rust reimplementation of the GATK4 Best Practices data
//! preprocessing pipeline (paper §IV-A) — the software baseline the Genesis
//! accelerators are measured against, and the correctness oracle for every
//! hardware pipeline.
//!
//! Stages (paper Figure 9):
//!
//! 1. **Alignment** ([`align`]) — k-mer seeding plus banded Smith–Waterman
//!    extension producing `POS`/CIGAR (the paper delegates this stage to
//!    accelerators like GenAx; the software stage exists to reproduce the
//!    Figure 9 runtime breakdown).
//! 2. **Mark Duplicates** ([`markdup`]) — coordinate sort, unclipped-5′
//!    duplicate keys, and survivor selection by the sum of quality scores
//!    (§IV-B).
//! 3. **Metadata Update** ([`metadata`]) — `SetNmMdAndUqTags` (§IV-C).
//! 4. **Base Quality Score Recalibration** ([`bqsr`]) — covariate table
//!    construction and quality score update (§IV-D).
//!
//! [`pipeline`] drives all stages with per-stage wall-clock timing.
//!
//! # Examples
//!
//! ```
//! use genesis_datagen::{DatagenConfig, Dataset};
//! use genesis_gatk::markdup::mark_duplicates;
//!
//! let mut dataset = Dataset::generate(&DatagenConfig::tiny());
//! let report = mark_duplicates(&mut dataset.reads);
//! assert!(report.duplicates > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod align;
pub mod bqsr;
pub mod markdup;
pub mod metadata;
pub mod pipeline;
pub mod sort;

pub use bqsr::{CovariateTable, RecalReport};
pub use markdup::MarkDupReport;
pub use pipeline::{PipelineReport, PreprocessingPipeline, StageTimings};
