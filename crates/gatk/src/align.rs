//! Read alignment: k-mer seeding plus banded Smith–Waterman extension.
//!
//! The paper treats alignment as an already-accelerated stage (GenAx,
//! Darwin, BWA-MEM — §IV-A) and focuses on the stages after it. This
//! module provides the *baseline software aligner* needed to reproduce the
//! Figure 9 runtime breakdown: a seed-and-extend design in the BWA-MEM
//! family — exact-match k-mer seeds voted by diagonal, then a banded
//! dynamic-programming extension that emits `POS` + CIGAR.

use genesis_types::{Base, Chrom, Cigar, CigarElem, CigarOp, ReadRecord, ReferenceGenome};
use std::collections::HashMap;

/// Alignment scoring parameters (BWA-MEM-like defaults).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scoring {
    /// Score for a matching base.
    pub match_score: i32,
    /// Penalty for a mismatching base (positive number).
    pub mismatch: i32,
    /// Penalty for opening or extending a gap (linear gaps).
    pub gap: i32,
}

impl Default for Scoring {
    fn default() -> Scoring {
        Scoring { match_score: 1, mismatch: 4, gap: 6 }
    }
}

/// The result of aligning one read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alignment {
    /// Chromosome of the best hit.
    pub chr: Chrom,
    /// 0-based leftmost reference position.
    pub pos: u32,
    /// Alignment CIGAR (M/I/D with optional soft clips).
    pub cigar: Cigar,
    /// Alignment score.
    pub score: i32,
    /// Mapping quality estimate (0–60), from the margin to the runner-up.
    pub mapq: u8,
}

/// A k-mer index over a reference genome.
#[derive(Debug)]
pub struct KmerIndex<'g> {
    genome: &'g ReferenceGenome,
    k: usize,
    /// k-mer code → (chromosome ordinal, position) hit list.
    map: HashMap<u64, Vec<(u32, u32)>>,
    /// Hits per k-mer beyond which the seed is considered repetitive.
    max_hits: usize,
}

/// Packs `k` bases into a 2-bit-per-base code; `None` when any base is `N`.
fn kmer_code(window: &[Base]) -> Option<u64> {
    let mut code = 0u64;
    for &b in window {
        if b == Base::N {
            return None;
        }
        code = (code << 2) | u64::from(b.code());
    }
    Some(code)
}

impl<'g> KmerIndex<'g> {
    /// Builds an index with k-mer length `k` over every position of every
    /// chromosome.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= k <= 31`.
    #[must_use]
    pub fn build(genome: &'g ReferenceGenome, k: usize) -> KmerIndex<'g> {
        assert!((1..=31).contains(&k), "k must be 1..=31");
        let mut map: HashMap<u64, Vec<(u32, u32)>> = HashMap::new();
        for (ci, chrom) in genome.iter().enumerate() {
            if chrom.len() < k {
                continue;
            }
            for pos in 0..=(chrom.len() - k) {
                if let Some(code) = kmer_code(&chrom.seq[pos..pos + k]) {
                    map.entry(code).or_default().push((ci as u32, pos as u32));
                }
            }
        }
        KmerIndex { genome, k, map, max_hits: 64 }
    }

    /// The k-mer length.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of distinct k-mers indexed.
    #[must_use]
    pub fn distinct_kmers(&self) -> usize {
        self.map.len()
    }

    /// Aligns a read sequence; `None` when no seed anchors it.
    #[must_use]
    pub fn align(&self, seq: &[Base], scoring: Scoring) -> Option<Alignment> {
        if seq.len() < self.k {
            return None;
        }
        // Seed at a few offsets across the read.
        let offsets = [0, seq.len() / 2, seq.len() - self.k];
        // Candidate diagonals: (chrom ordinal, read start on reference).
        let mut votes: HashMap<(u32, i64), u32> = HashMap::new();
        for &off in &offsets {
            let Some(code) = kmer_code(&seq[off..off + self.k]) else {
                continue;
            };
            let Some(hits) = self.map.get(&code) else {
                continue;
            };
            if hits.len() > self.max_hits {
                continue; // repetitive seed
            }
            for &(ci, pos) in hits {
                let diag = i64::from(pos) - off as i64;
                *votes.entry((ci, diag)).or_insert(0) += 1;
            }
        }
        // Evaluate the best few diagonals with banded DP.
        let mut cands: Vec<((u32, i64), u32)> = votes.into_iter().collect();
        cands.sort_by_key(|&((ci, diag), n)| (std::cmp::Reverse(n), ci, diag));
        let mut best: Option<Alignment> = None;
        let mut second_score = i32::MIN;
        for &((ci, diag), _) in cands.iter().take(4) {
            let chrom = self.genome.iter().nth(ci as usize).expect("indexed chromosome");
            let Some(aln) = banded_align(seq, chrom.chrom, &chrom.seq, diag, scoring) else {
                continue;
            };
            match &best {
                Some(b) if aln.score <= b.score => second_score = second_score.max(aln.score),
                _ => {
                    if let Some(b) = &best {
                        second_score = second_score.max(b.score);
                    }
                    best = Some(aln);
                }
            }
        }
        best.map(|mut aln| {
            let margin = if second_score == i32::MIN {
                60
            } else {
                ((aln.score - second_score).clamp(0, 60)) as u8
            };
            aln.mapq = margin;
            aln
        })
    }
}

/// Half-width of the DP band around the seed diagonal.
const BAND: i64 = 8;

/// Global-in-read, banded alignment of `seq` against the reference around
/// diagonal `diag` (read offset 0 maps near reference position `diag`).
fn banded_align(
    seq: &[Base],
    chrom: Chrom,
    reference: &[Base],
    diag: i64,
    scoring: Scoring,
) -> Option<Alignment> {
    let n = seq.len() as i64;
    let ref_start = (diag - BAND).max(0);
    let ref_end = (diag + n + BAND).min(reference.len() as i64);
    if ref_start >= ref_end {
        return None;
    }
    let m = (ref_end - ref_start) as usize; // reference window length
    let width = m + 1;
    let neg = i32::MIN / 2;
    // DP over full (n+1) x (m+1) with band enforcement; reads are short so
    // this stays small.
    let rows = seq.len() + 1;
    let mut score = vec![neg; rows * width];
    let mut from = vec![0u8; rows * width]; // 0 diag, 1 up(del in read=ins?), 2 left
    // Row 0: free start anywhere on the reference (local in reference).
    score[..width].fill(0);
    for i in 1..rows {
        for j in 0..width {
            let idx = i * width + j;
            // Band check relative to the seed diagonal.
            let rpos = ref_start + j as i64; // ref consumed so far
            let drift = rpos - (diag + i as i64);
            if drift.abs() > BAND + 2 {
                continue;
            }
            let mut best = neg;
            let mut dir = 0u8;
            if j > 0 {
                let sub = if seq[i - 1] == reference[(ref_start + j as i64 - 1) as usize]
                    && seq[i - 1] != Base::N
                {
                    scoring.match_score
                } else {
                    -scoring.mismatch
                };
                let d = score[(i - 1) * width + j - 1];
                if d > neg / 2 && d + sub > best {
                    best = d + sub;
                    dir = 0;
                }
                let l = score[i * width + j - 1];
                if l > neg / 2 && l - scoring.gap > best {
                    best = l - scoring.gap;
                    dir = 2; // consumed reference only: deletion in read
                }
            }
            let u = score[(i - 1) * width + j];
            if u > neg / 2 && u - scoring.gap > best {
                best = u - scoring.gap;
                dir = 1; // consumed read only: insertion
            }
            score[idx] = best;
            from[idx] = dir;
        }
    }
    // Best end cell on the last row (read fully consumed; free end in ref).
    let last = seq.len();
    let (mut j, best_score) = (0..width)
        .map(|j| (j, score[last * width + j]))
        .max_by_key(|&(_, s)| s)?;
    if best_score <= neg / 2 {
        return None;
    }
    // Traceback.
    let mut i = last;
    let mut elems_rev: Vec<CigarElem> = Vec::new();
    let push = |elems_rev: &mut Vec<CigarElem>, op: CigarOp| {
        if let Some(last) = elems_rev.last_mut() {
            if last.op == op {
                last.len += 1;
                return;
            }
        }
        elems_rev.push(CigarElem::new(1, op));
    };
    while i > 0 {
        let idx = i * width + j;
        if score[idx] <= neg / 2 {
            return None;
        }
        match from[idx] {
            0 => {
                push(&mut elems_rev, CigarOp::Match);
                i -= 1;
                j -= 1;
            }
            1 => {
                push(&mut elems_rev, CigarOp::Ins);
                i -= 1;
            }
            _ => {
                push(&mut elems_rev, CigarOp::Del);
                j -= 1;
            }
        }
    }
    elems_rev.reverse();
    let cigar: Cigar = elems_rev.into_iter().collect();
    let pos = (ref_start + j as i64) as u32;
    Some(Alignment { chr: chrom, pos, cigar, score: best_score, mapq: 0 })
}

/// Aligns every read's sequence from scratch, returning fresh records (the
/// Figure 9 "alignment" stage). Reads that fail to align keep their input
/// coordinates but get mapping quality 0.
#[must_use]
pub fn align_all(index: &KmerIndex<'_>, reads: &[ReadRecord]) -> Vec<ReadRecord> {
    let scoring = Scoring::default();
    reads
        .iter()
        .map(|r| {
            let mut out = r.clone();
            if let Some(aln) = index.align(&r.seq, scoring) {
                out.chr = aln.chr;
                out.pos = aln.pos;
                out.cigar = aln.cigar;
                out.mapq = aln.mapq;
            } else {
                out.mapq = 0;
            }
            out
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use genesis_types::Chromosome;

    fn genome_from(seq: &str) -> ReferenceGenome {
        [Chromosome::without_snps(Chrom::new(1), Base::seq_from_str(seq).unwrap())]
            .into_iter()
            .collect()
    }

    fn rand_seq(len: usize, seed: u64) -> String {
        let mut x = seed;
        (0..len)
            .map(|_| {
                x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                ['A', 'C', 'G', 'T'][(x >> 33) as usize % 4]
            })
            .collect()
    }

    #[test]
    fn exact_read_aligns_at_origin() {
        let s = rand_seq(500, 7);
        let genome = genome_from(&s);
        let index = KmerIndex::build(&genome, 15);
        let read = Base::seq_from_str(&s[100..180]).unwrap();
        let aln = index.align(&read, Scoring::default()).unwrap();
        assert_eq!(aln.pos, 100);
        assert_eq!(aln.cigar.to_string(), "80M");
        assert!(aln.mapq > 0);
    }

    #[test]
    fn mismatches_still_align() {
        let s = rand_seq(500, 8);
        let genome = genome_from(&s);
        let index = KmerIndex::build(&genome, 15);
        let mut read = Base::seq_from_str(&s[200..280]).unwrap();
        read[40] = read[40].complement(); // guaranteed different
        let aln = index.align(&read, Scoring::default()).unwrap();
        assert_eq!(aln.pos, 200);
        assert_eq!(aln.cigar.to_string(), "80M");
    }

    #[test]
    fn deletion_detected() {
        let s = rand_seq(600, 9);
        let genome = genome_from(&s);
        let index = KmerIndex::build(&genome, 15);
        // Read skips reference bases 250..252 (a 2-base deletion).
        let mut read_seq = Base::seq_from_str(&s[210..250]).unwrap();
        read_seq.extend(Base::seq_from_str(&s[252..292]).unwrap());
        let aln = index.align(&read_seq, Scoring::default()).unwrap();
        assert_eq!(aln.pos, 210);
        assert_eq!(aln.cigar.to_string(), "40M2D40M");
    }

    #[test]
    fn insertion_detected() {
        let s = rand_seq(600, 10);
        let genome = genome_from(&s);
        let index = KmerIndex::build(&genome, 15);
        let mut read_seq = Base::seq_from_str(&s[300..340]).unwrap();
        read_seq.push(Base::A);
        read_seq.push(Base::C);
        read_seq.extend(Base::seq_from_str(&s[340..380]).unwrap());
        let aln = index.align(&read_seq, Scoring::default()).unwrap();
        assert_eq!(aln.pos, 300);
        // A 2-base insertion (occasionally placed ±1 by equal-score paths).
        assert!(aln.cigar.to_string().contains("2I"), "{}", aln.cigar);
        assert_eq!(aln.cigar.ref_len(), 80);
    }

    #[test]
    fn unalignable_read_returns_none() {
        let genome = genome_from(&rand_seq(300, 11));
        let index = KmerIndex::build(&genome, 15);
        // A read of all-N bases has no valid k-mer.
        let read = vec![Base::N; 60];
        assert!(index.align(&read, Scoring::default()).is_none());
    }

    #[test]
    fn align_all_recovers_positions() {
        let s = rand_seq(2000, 12);
        let genome = genome_from(&s);
        let index = KmerIndex::build(&genome, 15);
        let reads: Vec<ReadRecord> = (0..20)
            .map(|i| {
                let start = i * 90;
                let seq = Base::seq_from_str(&s[start..start + 80]).unwrap();
                ReadRecord::builder(&format!("r{i}"), Chrom::new(1), 0)
                    .cigar("80M".parse().unwrap())
                    .seq(seq)
                    .qual(vec![genesis_types::Qual::new(30).unwrap(); 80])
                    .build()
                    .unwrap()
            })
            .collect();
        let aligned = align_all(&index, &reads);
        for (i, r) in aligned.iter().enumerate() {
            assert_eq!(r.pos as usize, i * 90, "read {i}");
        }
    }
}
