//! Base Quality Score Recalibration (paper §IV-D).
//!
//! The covariate table construction stage bins every aligned, non-SNP base
//! by (read group, reported quality, cycle) and by (read group, reported
//! quality, dinucleotide context), counting observations and empirical
//! errors per bin. The quality update stage adjusts each base quality from
//! the empirical error rates.
//!
//! ## Canonical covariate semantics
//!
//! Shared bit-for-bit with the hardware pipeline (`genesis-hw`'s BinIDGen):
//!
//! * only aligned (`M`) bases are observed; insertions and soft clips are
//!   not compared against the reference, deletions carry no quality;
//! * bases at known SNP sites are masked out entirely;
//! * the cycle covariate is [`genesis_types::read::cycle_covariate`]
//!   (forward reads use `[0, L)`, reverse reads `[L, 2L)`);
//! * the context covariate pairs the previous read base (aligned or
//!   inserted, in `SEQ` order) with the current base; the first base of a
//!   read and the base following a deletion have no context and are
//!   counted only in the cycle table.

use genesis_types::base::context_id;
use genesis_types::read::cycle_covariate;
use genesis_types::{Base, Qual, ReadRecord, ReferenceGenome};

/// Number of dinucleotide contexts.
const NUM_CONTEXTS: u32 = 16;
/// Number of representable reported quality scores.
const NUM_QUALS: u32 = 64;

/// Per-read-group covariate count tables (paper Figure 12's four SPMs:
/// TotalCount/ErrorCount × cycle-bin/context-bin).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CovariateTable {
    read_groups: u8,
    read_len: u32,
    num_cycle_values: u32,
    cycle_total: Vec<Vec<u64>>,
    cycle_error: Vec<Vec<u64>>,
    ctx_total: Vec<Vec<u64>>,
    ctx_error: Vec<Vec<u64>>,
}

impl CovariateTable {
    /// Creates an empty table for `read_groups` lanes of `read_len`-bp reads.
    #[must_use]
    pub fn new(read_groups: u8, read_len: u32) -> CovariateTable {
        let num_cycle_values = 2 * read_len;
        let cycle_bins = (NUM_QUALS * num_cycle_values) as usize;
        let ctx_bins = (NUM_QUALS * NUM_CONTEXTS) as usize;
        CovariateTable {
            read_groups,
            read_len,
            num_cycle_values,
            cycle_total: vec![vec![0; cycle_bins]; read_groups as usize],
            cycle_error: vec![vec![0; cycle_bins]; read_groups as usize],
            ctx_total: vec![vec![0; ctx_bins]; read_groups as usize],
            ctx_error: vec![vec![0; ctx_bins]; read_groups as usize],
        }
    }

    /// Read length the cycle covariate was configured for.
    #[must_use]
    pub fn read_len(&self) -> u32 {
        self.read_len
    }

    /// Number of cycle-covariate values (`2 × read_len`, paper footnote 3).
    #[must_use]
    pub fn num_cycle_values(&self) -> u32 {
        self.num_cycle_values
    }

    /// Number of read groups.
    #[must_use]
    pub fn read_groups(&self) -> u8 {
        self.read_groups
    }

    /// The paper's `b1` bin id: `q × #cycle_values + cycle`.
    #[must_use]
    pub fn cycle_bin(&self, q: u8, cov: u32) -> usize {
        (u32::from(q) * self.num_cycle_values + cov) as usize
    }

    /// The paper's `b2` bin id: `q × 16 + context`.
    #[must_use]
    pub fn context_bin(q: u8, ctx: u8) -> usize {
        (u32::from(q) * NUM_CONTEXTS + u32::from(ctx)) as usize
    }

    /// Records one observed base.
    pub fn record(&mut self, rg: u8, q: u8, cov: u32, ctx: Option<u8>, is_error: bool) {
        let g = rg as usize;
        let b1 = self.cycle_bin(q, cov);
        self.cycle_total[g][b1] += 1;
        if is_error {
            self.cycle_error[g][b1] += 1;
        }
        if let Some(ctx) = ctx {
            let b2 = CovariateTable::context_bin(q, ctx);
            self.ctx_total[g][b2] += 1;
            if is_error {
                self.ctx_error[g][b2] += 1;
            }
        }
    }

    /// Merges another table (e.g. per-partition accelerator results).
    ///
    /// # Panics
    ///
    /// Panics when shapes differ.
    pub fn merge(&mut self, other: &CovariateTable) {
        assert_eq!(self.read_groups, other.read_groups);
        assert_eq!(self.num_cycle_values, other.num_cycle_values);
        for g in 0..self.read_groups as usize {
            for (a, b) in self.cycle_total[g].iter_mut().zip(&other.cycle_total[g]) {
                *a += b;
            }
            for (a, b) in self.cycle_error[g].iter_mut().zip(&other.cycle_error[g]) {
                *a += b;
            }
            for (a, b) in self.ctx_total[g].iter_mut().zip(&other.ctx_total[g]) {
                *a += b;
            }
            for (a, b) in self.ctx_error[g].iter_mut().zip(&other.ctx_error[g]) {
                *a += b;
            }
        }
    }

    /// Adds raw per-bin counts for one read group (used to ingest the
    /// accelerator's drained SPM buffers).
    ///
    /// # Panics
    ///
    /// Panics when slice lengths differ from the table's bin counts.
    pub fn add_raw(
        &mut self,
        rg: u8,
        cycle_total: &[u64],
        cycle_error: &[u64],
        ctx_total: &[u64],
        ctx_error: &[u64],
    ) {
        let g = rg as usize;
        assert_eq!(cycle_total.len(), self.cycle_total[g].len());
        assert_eq!(ctx_total.len(), self.ctx_total[g].len());
        for (a, b) in self.cycle_total[g].iter_mut().zip(cycle_total) {
            *a += b;
        }
        for (a, b) in self.cycle_error[g].iter_mut().zip(cycle_error) {
            *a += b;
        }
        for (a, b) in self.ctx_total[g].iter_mut().zip(ctx_total) {
            *a += b;
        }
        for (a, b) in self.ctx_error[g].iter_mut().zip(ctx_error) {
            *a += b;
        }
    }

    /// Total observations across all bins (cycle table; every observation
    /// lands in exactly one cycle bin).
    #[must_use]
    pub fn total_observations(&self) -> u64 {
        self.cycle_total.iter().flatten().sum()
    }

    /// Total errors across all bins.
    #[must_use]
    pub fn total_errors(&self) -> u64 {
        self.cycle_error.iter().flatten().sum()
    }

    /// Raw (total, error) counts for one read group's cycle table.
    #[must_use]
    pub fn cycle_counts(&self, rg: u8) -> (&[u64], &[u64]) {
        (&self.cycle_total[rg as usize], &self.cycle_error[rg as usize])
    }

    /// Raw (total, error) counts for one read group's context table.
    #[must_use]
    pub fn context_counts(&self, rg: u8) -> (&[u64], &[u64]) {
        (&self.ctx_total[rg as usize], &self.ctx_error[rg as usize])
    }

    /// Smoothed empirical quality of a (errors, total) pair, in Phred.
    #[must_use]
    pub fn empirical_quality(errors: u64, total: u64) -> f64 {
        let rate = (errors as f64 + 1.0) / (total as f64 + 2.0);
        -10.0 * rate.log10()
    }

    /// Marginal empirical quality for (read group, reported quality):
    /// aggregated over all cycle bins of that quality.
    #[must_use]
    pub fn marginal_quality(&self, rg: u8, q: u8) -> Option<f64> {
        let g = rg as usize;
        let lo = self.cycle_bin(q, 0);
        let hi = self.cycle_bin(q, self.num_cycle_values - 1) + 1;
        let total: u64 = self.cycle_total[g][lo..hi].iter().sum();
        if total == 0 {
            return None;
        }
        let errors: u64 = self.cycle_error[g][lo..hi].iter().sum();
        Some(CovariateTable::empirical_quality(errors, total))
    }

    /// Pseudo-observation weight shrinking sparse per-bin estimates toward
    /// the (read group, quality) marginal, as GATK's hierarchical model
    /// does; without shrinkage a 50-observation bin with zero errors would
    /// report a wildly pessimistic rate.
    const SHRINKAGE_WEIGHT: f64 = 32.0;

    /// Empirical quality of a bin, shrunk toward a prior error rate.
    fn shrunk_quality(errors: u64, total: u64, prior_rate: f64) -> f64 {
        let w = CovariateTable::SHRINKAGE_WEIGHT;
        let rate = (errors as f64 + w * prior_rate) / (total as f64 + w);
        -10.0 * rate.log10()
    }

    /// Recalibrated quality for one base, combining the marginal with the
    /// cycle-bin and context-bin deltas (GATK's additive delta model).
    #[must_use]
    pub fn recalibrated_quality(&self, rg: u8, q: u8, cov: u32, ctx: Option<u8>) -> Qual {
        let g = rg as usize;
        let Some(marginal) = self.marginal_quality(rg, q) else {
            return Qual::saturating(u32::from(q));
        };
        let prior_rate = 10f64.powf(-marginal / 10.0);
        let b1 = self.cycle_bin(q, cov);
        let delta_cycle = if self.cycle_total[g][b1] > 0 {
            CovariateTable::shrunk_quality(
                self.cycle_error[g][b1],
                self.cycle_total[g][b1],
                prior_rate,
            ) - marginal
        } else {
            0.0
        };
        let delta_ctx = match ctx {
            Some(c) => {
                let b2 = CovariateTable::context_bin(q, c);
                if self.ctx_total[g][b2] > 0 {
                    CovariateTable::shrunk_quality(
                        self.ctx_error[g][b2],
                        self.ctx_total[g][b2],
                        prior_rate,
                    ) - marginal
                } else {
                    0.0
                }
            }
            None => 0.0,
        };
        let new_q = (marginal + delta_cycle + delta_ctx).round().clamp(1.0, 60.0);
        Qual::saturating(new_q as u32)
    }
}

/// One observed base yielded by the canonical covariate walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObservedBase {
    /// Index of the base within `SEQ`.
    pub seq_idx: u32,
    /// Reported quality.
    pub qual: u8,
    /// Cycle covariate value.
    pub cycle_cov: u32,
    /// Context id, when defined.
    pub context: Option<u8>,
    /// Whether the base mismatches the reference (an empirical error).
    pub is_error: bool,
    /// Whether the reference position is a known SNP site (masked).
    pub is_snp: bool,
}

/// Walks a read's aligned bases under the canonical covariate semantics,
/// invoking `f` for each `M` base. Returns `false` when the read is
/// unmapped or out of reference bounds (nothing visited).
pub fn walk_observed_bases<F: FnMut(ObservedBase)>(
    read: &ReadRecord,
    genome: &ReferenceGenome,
    mut f: F,
) -> bool {
    if read.flags.is_unmapped() || read.cigar.is_empty() {
        return false;
    }
    let Some(chrom) = genome.chromosome(read.chr) else {
        return false;
    };
    if read.end_pos() as usize > chrom.len() {
        return false;
    }
    let read_len = read.len();
    let reverse = read.flags.is_reverse();
    let mut ref_pos = read.pos;
    let mut seq_idx = 0u32;
    let mut prev: Option<Base> = None;
    for elem in read.cigar.iter() {
        match elem.op {
            genesis_types::CigarOp::Match
            | genesis_types::CigarOp::SeqMatch
            | genesis_types::CigarOp::SeqMismatch => {
                for _ in 0..elem.len {
                    let cur = read.seq[seq_idx as usize];
                    let rb = chrom.seq[ref_pos as usize];
                    let obs = ObservedBase {
                        seq_idx,
                        qual: read.qual[seq_idx as usize].value(),
                        cycle_cov: cycle_covariate(seq_idx, read_len, reverse),
                        context: prev.and_then(|p| context_id(p, cur)),
                        is_error: cur != rb,
                        is_snp: chrom.is_snp.get(ref_pos as usize),
                    };
                    f(obs);
                    prev = Some(cur);
                    ref_pos += 1;
                    seq_idx += 1;
                }
            }
            genesis_types::CigarOp::Ins => {
                for _ in 0..elem.len {
                    prev = Some(read.seq[seq_idx as usize]);
                    seq_idx += 1;
                }
            }
            genesis_types::CigarOp::SoftClip => {
                // Clipped bases never reach the hardware data path
                // (ReadToBases drops them), so they provide no context.
                seq_idx += elem.len;
                prev = None;
            }
            genesis_types::CigarOp::Del | genesis_types::CigarOp::RefSkip => {
                ref_pos += elem.len;
                prev = None;
            }
            genesis_types::CigarOp::HardClip => {}
        }
    }
    true
}

/// Covariate table construction (the stage the Genesis BQSR accelerator
/// implements, paper Figure 12).
#[must_use]
pub fn build_covariate_table(
    reads: &[ReadRecord],
    genome: &ReferenceGenome,
    read_groups: u8,
    read_len: u32,
) -> CovariateTable {
    let mut table = CovariateTable::new(read_groups, read_len);
    for read in reads {
        if read.flags.is_duplicate() {
            continue;
        }
        let rg = read.read_group;
        walk_observed_bases(read, genome, |obs| {
            if !obs.is_snp {
                table.record(rg, obs.qual, obs.cycle_cov, obs.context, obs.is_error);
            }
        });
    }
    table
}

/// A precomputed recalibration model: per-bin deltas materialized once so
/// the quality update streams at a table lookup per base (GATK likewise
/// materializes its recalibration report before applying it).
#[derive(Debug, Clone)]
pub struct RecalibrationModel {
    num_cycle_values: u32,
    /// `marginal[rg][q]`, NaN when unobserved.
    marginal: Vec<Vec<f64>>,
    /// `delta_cycle[rg][q * num_cycle_values + cov]`.
    delta_cycle: Vec<Vec<f64>>,
    /// `delta_ctx[rg][q * 16 + ctx]`.
    delta_ctx: Vec<Vec<f64>>,
}

impl RecalibrationModel {
    /// Materializes the model from a covariate table.
    #[must_use]
    pub fn from_table(table: &CovariateTable) -> RecalibrationModel {
        let groups = table.read_groups as usize;
        let cycle_bins = (NUM_QUALS * table.num_cycle_values) as usize;
        let ctx_bins = (NUM_QUALS * NUM_CONTEXTS) as usize;
        let mut marginal = vec![vec![f64::NAN; NUM_QUALS as usize]; groups];
        let mut delta_cycle = vec![vec![0.0; cycle_bins]; groups];
        let mut delta_ctx = vec![vec![0.0; ctx_bins]; groups];
        for g in 0..groups {
            let rg = g as u8;
            for q in 0..NUM_QUALS as u8 {
                let Some(m) = table.marginal_quality(rg, q) else { continue };
                marginal[g][q as usize] = m;
                let prior_rate = 10f64.powf(-m / 10.0);
                for cov in 0..table.num_cycle_values {
                    let b1 = table.cycle_bin(q, cov);
                    if table.cycle_total[g][b1] > 0 {
                        delta_cycle[g][b1] = CovariateTable::shrunk_quality(
                            table.cycle_error[g][b1],
                            table.cycle_total[g][b1],
                            prior_rate,
                        ) - m;
                    }
                }
                for ctx in 0..NUM_CONTEXTS as u8 {
                    let b2 = CovariateTable::context_bin(q, ctx);
                    if table.ctx_total[g][b2] > 0 {
                        delta_ctx[g][b2] = CovariateTable::shrunk_quality(
                            table.ctx_error[g][b2],
                            table.ctx_total[g][b2],
                            prior_rate,
                        ) - m;
                    }
                }
            }
        }
        RecalibrationModel {
            num_cycle_values: table.num_cycle_values,
            marginal,
            delta_cycle,
            delta_ctx,
        }
    }

    /// Recalibrated quality for one base (identical to
    /// [`CovariateTable::recalibrated_quality`], via the precomputed bins).
    #[must_use]
    pub fn recalibrated_quality(&self, rg: u8, q: u8, cov: u32, ctx: Option<u8>) -> Qual {
        let g = rg as usize;
        let Some(&m) = self.marginal.get(g).and_then(|v| v.get(q as usize)) else {
            return Qual::saturating(u32::from(q));
        };
        if m.is_nan() {
            return Qual::saturating(u32::from(q));
        }
        let b1 = (u32::from(q) * self.num_cycle_values + cov) as usize;
        let d1 = self.delta_cycle[g][b1];
        let d2 = ctx.map_or(0.0, |c| {
            self.delta_ctx[g][(u32::from(q) * NUM_CONTEXTS + u32::from(c)) as usize]
        });
        let new_q = (m + d1 + d2).round().clamp(1.0, 60.0);
        Qual::saturating(new_q as u32)
    }
}

/// Outcome of the quality update stage.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RecalReport {
    /// Bases whose quality changed.
    pub bases_changed: u64,
    /// Bases visited.
    pub bases_visited: u64,
    /// Mean signed quality delta (recalibrated − reported), in Phred.
    pub mean_delta: f64,
}

/// The quality score update stage: adjusts each observed base's quality
/// from the covariate table (performed in software by GATK after the
/// accelerated table construction, paper §IV-D).
#[must_use]
pub fn apply_recalibration(
    reads: &mut [ReadRecord],
    genome: &ReferenceGenome,
    table: &CovariateTable,
) -> RecalReport {
    let model = RecalibrationModel::from_table(table);
    let mut report = RecalReport::default();
    let mut delta_sum = 0i64;
    let mut updates: Vec<(u32, Qual)> = Vec::new();
    for read in reads.iter_mut() {
        let rg = read.read_group;
        updates.clear();
        walk_observed_bases(read, genome, |obs| {
            let new_q = model.recalibrated_quality(rg, obs.qual, obs.cycle_cov, obs.context);
            updates.push((obs.seq_idx, new_q));
        });
        for &(idx, new_q) in &updates {
            let old = read.qual[idx as usize];
            report.bases_visited += 1;
            if new_q != old {
                report.bases_changed += 1;
                delta_sum += i64::from(new_q.value()) - i64::from(old.value());
            }
            read.qual[idx as usize] = new_q;
        }
    }
    if report.bases_visited > 0 {
        report.mean_delta = delta_sum as f64 / report.bases_visited as f64;
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use genesis_datagen::{DatagenConfig, Dataset};
    use genesis_types::{Chrom, Chromosome, ReadFlags};

    fn simple_genome(seq: &str) -> ReferenceGenome {
        [Chromosome::without_snps(Chrom::new(1), Base::seq_from_str(seq).unwrap())]
            .into_iter()
            .collect()
    }

    fn read_with(seq: &str, cigar: &str, pos: u32, q: u8) -> ReadRecord {
        let s = Base::seq_from_str(seq).unwrap();
        let n = s.len();
        ReadRecord::builder("t", Chrom::new(1), pos)
            .cigar(cigar.parse().unwrap())
            .seq(s)
            .qual(vec![Qual::new(q).unwrap(); n])
            .build()
            .unwrap()
    }

    #[test]
    fn walk_yields_only_m_bases() {
        let genome = simple_genome("ACGTACGTACGT");
        let read = read_with("CCACGTA", "2S3M1I1M", 2, 30);
        let mut seen = Vec::new();
        walk_observed_bases(&read, &genome, |o| seen.push(o));
        assert_eq!(seen.len(), 4); // 3M + 1M
        assert_eq!(seen[0].seq_idx, 2);
        // Clipped bases provide no context (they never reach the hardware).
        assert!(seen[0].context.is_none());
        assert!(seen[1].context.is_some());
    }

    #[test]
    fn context_resets_after_deletion() {
        let genome = simple_genome("ACGTACGTACGT");
        let read = read_with("ACGTAC", "3M2D3M", 0, 30);
        let mut seen = Vec::new();
        walk_observed_bases(&read, &genome, |o| seen.push(o));
        assert_eq!(seen.len(), 6);
        assert!(seen[0].context.is_none(), "first base has no context");
        assert!(seen[3].context.is_none(), "base after deletion has no context");
        assert!(seen[1].context.is_some());
    }

    #[test]
    fn errors_detected_and_snp_masked() {
        let mut genome = simple_genome("AAAAAAAAAA");
        // Mark position 3 as a known SNP site.
        if let Some(c) = genome.chromosome(Chrom::new(1)) {
            let mut c = c.clone();
            c.is_snp.set(3, true);
            genome = [c].into_iter().collect();
        }
        let read = read_with("AACA", "4M", 1, 25); // mismatch at ref pos 3
        let table = build_covariate_table(&[read], &genome, 1, 4);
        // The mismatching base sits on the SNP site: masked entirely.
        assert_eq!(table.total_observations(), 3);
        assert_eq!(table.total_errors(), 0);
    }

    #[test]
    fn duplicates_excluded_from_table() {
        let genome = simple_genome("ACGTACGTACGT");
        let mut dup = read_with("ACGT", "4M", 0, 30);
        dup.flags.insert(ReadFlags::DUPLICATE);
        let table = build_covariate_table(&[dup], &genome, 1, 4);
        assert_eq!(table.total_observations(), 0);
    }

    #[test]
    fn bin_ids_match_paper_formulas() {
        let t = CovariateTable::new(1, 151);
        assert_eq!(t.num_cycle_values(), 302);
        assert_eq!(t.cycle_bin(30, 7), 30 * 302 + 7);
        assert_eq!(CovariateTable::context_bin(30, 5), 30 * 16 + 5);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = CovariateTable::new(1, 4);
        let mut b = CovariateTable::new(1, 4);
        a.record(0, 30, 1, Some(2), false);
        b.record(0, 30, 1, Some(2), true);
        a.merge(&b);
        assert_eq!(a.total_observations(), 2);
        assert_eq!(a.total_errors(), 1);
    }

    #[test]
    fn empirical_quality_is_phred_like() {
        // 1 error in 99 observations ≈ 2/101 smoothed ≈ Q17.
        let q = CovariateTable::empirical_quality(1, 99);
        assert!((q - 17.03).abs() < 0.1, "{q}");
    }

    #[test]
    fn recalibration_tracks_injected_bias() {
        // Generate biased data; BQSR should push read-group 3 (bias -4
        // Phred) lower than read-group 0 (no group bias).
        let cfg = DatagenConfig {
            num_reads: 4000,
            chrom_len: 80_000,
            num_chromosomes: 1,
            ..DatagenConfig::tiny()
        };
        let mut dataset = Dataset::generate(&cfg);
        let table = build_covariate_table(
            &dataset.reads,
            &dataset.genome,
            cfg.read_groups,
            cfg.read_len,
        );
        assert!(table.total_observations() > 100_000);
        assert!(table.total_errors() > 100);

        let reported_mean = |reads: &[ReadRecord], rg: u8| {
            let mut sum = 0u64;
            let mut n = 0u64;
            for r in reads.iter().filter(|r| r.read_group == rg) {
                for q in &r.qual {
                    sum += u64::from(q.value());
                    n += 1;
                }
            }
            sum as f64 / n as f64
        };
        let before_g0 = reported_mean(&dataset.reads, 0);
        let before_g3 = reported_mean(&dataset.reads, 3);
        let _ = apply_recalibration(&mut dataset.reads, &dataset.genome, &table);
        let after_g0 = reported_mean(&dataset.reads, 0);
        let after_g3 = reported_mean(&dataset.reads, 3);
        // Reported qualities were generated identically across groups...
        assert!((before_g0 - before_g3).abs() < 0.5);
        // ...but group 3's actual error rate is ~4 Phred worse: after
        // recalibration its scores must sit clearly below group 0's.
        assert!(
            after_g0 - after_g3 > 1.5,
            "recalibration failed to separate biased lanes: g0 {after_g0:.2} g3 {after_g3:.2}"
        );
    }

    #[test]
    fn recalibration_without_observations_keeps_quality() {
        let t = CovariateTable::new(1, 4);
        assert_eq!(t.recalibrated_quality(0, 37, 2, None).value(), 37);
        let m = RecalibrationModel::from_table(&t);
        assert_eq!(m.recalibrated_quality(0, 37, 2, None).value(), 37);
    }

    #[test]
    fn precomputed_model_matches_direct_computation() {
        let cfg = DatagenConfig::tiny();
        let dataset = Dataset::generate(&cfg);
        let table = build_covariate_table(
            &dataset.reads,
            &dataset.genome,
            cfg.read_groups,
            cfg.read_len,
        );
        let model = RecalibrationModel::from_table(&table);
        for rg in 0..cfg.read_groups {
            for q in [20u8, 28, 30, 34] {
                for cov in [0u32, 7, 50, 2 * cfg.read_len - 1] {
                    for ctx in [None, Some(0u8), Some(5), Some(15)] {
                        assert_eq!(
                            model.recalibrated_quality(rg, q, cov, ctx),
                            table.recalibrated_quality(rg, q, cov, ctx),
                            "rg {rg} q {q} cov {cov} ctx {ctx:?}"
                        );
                    }
                }
            }
        }
    }
}

/// Multi-threaded [`build_covariate_table`]: each scoped thread bins a
/// contiguous chunk of reads into its own table; the tables merge (count
/// tables are associative and commutative, so the result is identical to
/// the serial build).
#[must_use]
pub fn build_covariate_table_parallel(
    reads: &[ReadRecord],
    genome: &ReferenceGenome,
    read_groups: u8,
    read_len: u32,
    threads: usize,
) -> CovariateTable {
    let threads = threads.max(1).min(reads.len().max(1));
    let chunk_len = reads.len().div_ceil(threads);
    let tables = crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for chunk in reads.chunks(chunk_len) {
            handles.push(scope.spawn(move |_| {
                build_covariate_table(chunk, genome, read_groups, read_len)
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("bqsr worker panicked"))
            .collect::<Vec<_>>()
    })
    .expect("scoped threads join");
    let mut total = CovariateTable::new(read_groups, read_len);
    for t in &tables {
        total.merge(t);
    }
    total
}

#[cfg(test)]
mod parallel_tests {
    use super::*;
    use genesis_datagen::{DatagenConfig, Dataset};

    #[test]
    fn parallel_table_equals_serial() {
        let cfg = DatagenConfig::tiny();
        let dataset = Dataset::generate(&cfg);
        let serial =
            build_covariate_table(&dataset.reads, &dataset.genome, cfg.read_groups, cfg.read_len);
        let parallel = build_covariate_table_parallel(
            &dataset.reads,
            &dataset.genome,
            cfg.read_groups,
            cfg.read_len,
            4,
        );
        assert_eq!(serial, parallel);
    }
}
