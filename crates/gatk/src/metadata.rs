//! Metadata Update — `SetNmMdAndUqTags` (paper §IV-C).

use genesis_types::tags::compute_tags;
use genesis_types::{ReadRecord, ReferenceGenome, TypeError};

/// Outcome of the metadata update stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MetadataReport {
    /// Reads whose tags were computed.
    pub updated: usize,
    /// Reads skipped (unmapped or out of reference bounds).
    pub skipped: usize,
    /// Total NM across all reads (used as a cheap cross-check against the
    /// accelerated implementation).
    pub total_nm: u64,
    /// Total UQ across all reads.
    pub total_uq: u64,
}

/// Computes NM, MD and UQ for every mapped read, storing them on the
/// records (the `SetNmMdAndUqTags` stage).
///
/// # Errors
///
/// Returns the underlying [`TypeError`] if a read is internally
/// inconsistent (generator and aligner outputs never are).
pub fn set_nm_md_uq_tags(
    reads: &mut [ReadRecord],
    genome: &ReferenceGenome,
) -> Result<MetadataReport, TypeError> {
    let mut report = MetadataReport::default();
    for read in reads.iter_mut() {
        if read.flags.is_unmapped() || read.cigar.is_empty() {
            report.skipped += 1;
            continue;
        }
        let Some(chrom) = genome.chromosome(read.chr) else {
            report.skipped += 1;
            continue;
        };
        let end = read.end_pos();
        if end as usize > chrom.len() {
            report.skipped += 1;
            continue;
        }
        let window = chrom.slice(read.pos, end)?;
        let tags = compute_tags(&read.seq, &read.qual, &read.cigar, window)?;
        read.nm = Some(tags.nm);
        read.uq = Some(tags.uq);
        report.total_nm += u64::from(tags.nm);
        report.total_uq += u64::from(tags.uq);
        read.md = Some(tags.md.to_string());
        report.updated += 1;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use genesis_types::{Base, Chrom, Chromosome, Qual, ReadFlags};

    fn genome() -> ReferenceGenome {
        [Chromosome::without_snps(
            Chrom::new(1),
            Base::seq_from_str("ACGTAACCAGTA").unwrap(),
        )]
        .into_iter()
        .collect()
    }

    fn paper_read1() -> ReadRecord {
        ReadRecord::builder("r1", Chrom::new(1), 0)
            .cigar("7M1I5M".parse().unwrap())
            .seq(Base::seq_from_str("AGGTAACACGGTA").unwrap())
            .qual(vec![Qual::new(20).unwrap(); 13])
            .build()
            .unwrap()
    }

    #[test]
    fn paper_example_tags() {
        let genome = genome();
        let mut reads = vec![paper_read1()];
        let report = set_nm_md_uq_tags(&mut reads, &genome).unwrap();
        assert_eq!(report.updated, 1);
        assert_eq!(reads[0].md.as_deref(), Some("1C6A3"));
        assert_eq!(reads[0].nm, Some(3));
        assert_eq!(reads[0].uq, Some(40));
    }

    #[test]
    fn unmapped_reads_skipped() {
        let genome = genome();
        let mut read = paper_read1();
        read.flags.insert(ReadFlags::UNMAPPED);
        let mut reads = vec![read];
        let report = set_nm_md_uq_tags(&mut reads, &genome).unwrap();
        assert_eq!(report.updated, 0);
        assert_eq!(report.skipped, 1);
        assert_eq!(reads[0].nm, None);
    }

    #[test]
    fn out_of_bounds_read_skipped() {
        let genome = genome();
        let mut read = paper_read1();
        read.pos = 5; // end would exceed the 12-base chromosome
        let mut reads = vec![read];
        let report = set_nm_md_uq_tags(&mut reads, &genome).unwrap();
        assert_eq!(report.skipped, 1);
    }

    #[test]
    fn totals_accumulate() {
        let genome = genome();
        let mut reads = vec![paper_read1(), paper_read1()];
        let report = set_nm_md_uq_tags(&mut reads, &genome).unwrap();
        assert_eq!(report.total_nm, 6);
        assert_eq!(report.total_uq, 80);
    }
}

/// Multi-threaded [`set_nm_md_uq_tags`]: reads are split into contiguous
/// chunks processed by scoped threads (the paper's baseline runs GATK on
/// an 8-core Xeon; this is the analogous parallel software configuration).
///
/// # Errors
///
/// Propagates the first chunk's [`TypeError`], if any.
pub fn set_nm_md_uq_tags_parallel(
    reads: &mut [ReadRecord],
    genome: &ReferenceGenome,
    threads: usize,
) -> Result<MetadataReport, TypeError> {
    let threads = threads.max(1).min(reads.len().max(1));
    let chunk_len = reads.len().div_ceil(threads);
    let results = crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for chunk in reads.chunks_mut(chunk_len) {
            handles.push(scope.spawn(move |_| set_nm_md_uq_tags(chunk, genome)));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("metadata worker panicked"))
            .collect::<Vec<_>>()
    })
    .expect("scoped threads join");
    let mut total = MetadataReport::default();
    for r in results {
        let r = r?;
        total.updated += r.updated;
        total.skipped += r.skipped;
        total.total_nm += r.total_nm;
        total.total_uq += r.total_uq;
    }
    Ok(total)
}

#[cfg(test)]
mod parallel_tests {
    use super::*;
    use genesis_datagen::{DatagenConfig, Dataset};

    #[test]
    fn parallel_equals_serial() {
        let dataset = Dataset::generate(&DatagenConfig::tiny());
        let mut serial = dataset.reads.clone();
        let r1 = set_nm_md_uq_tags(&mut serial, &dataset.genome).unwrap();
        let mut parallel = dataset.reads.clone();
        let r2 = set_nm_md_uq_tags_parallel(&mut parallel, &dataset.genome, 4).unwrap();
        assert_eq!(serial, parallel);
        assert_eq!(r1.updated, r2.updated);
        assert_eq!(r1.total_nm, r2.total_nm);
        assert_eq!(r1.total_uq, r2.total_uq);
    }

    #[test]
    fn degenerate_thread_counts() {
        let dataset = Dataset::generate(&DatagenConfig::tiny());
        let mut a = dataset.reads.clone();
        set_nm_md_uq_tags_parallel(&mut a, &dataset.genome, 0).unwrap();
        let mut b = dataset.reads.clone();
        set_nm_md_uq_tags_parallel(&mut b, &dataset.genome, 1000).unwrap();
        assert_eq!(a, b);
    }
}
