//! # genesis
//!
//! Facade crate for the Genesis reproduction (*Genesis: A Hardware
//! Acceleration Framework for Genomic Data Analysis*, ISCA 2020).
//!
//! Re-exports every member crate under a short module name:
//!
//! * [`types`] — genomic data model (reads, CIGAR, reference, tables).
//! * [`datagen`] — synthetic workload generation (reference, SNPs, reads).
//! * [`sql`] — extended-SQL parser, logical plans, and software engine.
//! * [`hw`] — hardware module library and cycle-level dataflow simulator.
//! * [`gatk`] — GATK4-analog software baseline pipeline.
//! * [`core`] — the Genesis framework: compiler, host API, accelerators,
//!   performance and cost models.
//! * [`obs`] — observability: per-module spans, stall attribution,
//!   Chrome-trace export, and the host metrics registry.
//!
//! # Examples
//!
//! See `examples/quickstart.rs` for the paper's Figure 4/7 walk-through.

pub use genesis_core as core;
pub use genesis_datagen as datagen;
pub use genesis_gatk as gatk;
pub use genesis_hw as hw;
pub use genesis_obs as obs;
pub use genesis_sql as sql;
pub use genesis_types as types;
