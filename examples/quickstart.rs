//! Quickstart: the paper's running example end-to-end.
//!
//! Generates a synthetic data set, expresses the "count matching bases"
//! operation as the Figure 4 extended-SQL script, compiles it to the
//! Figure 7 hardware pipeline, runs the cycle-level simulation, and checks
//! the result against the software oracle.
//!
//! Run with: `cargo run --release --example quickstart`

use genesis::core::accel::example::{count_matching_bases_sw, CountMatchingBases};
use genesis::core::compile::{explain, figure4_script, CompiledKernel, Compiler};
use genesis::core::device::DeviceConfig;
use genesis::core::library::ModuleRegistry;
use genesis::sql::Catalog;
use genesis::datagen::{DatagenConfig, Dataset};
use genesis::sql::parser::parse_script;
use genesis::sql::plan::lower_query;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A synthetic stand-in for the paper's Illumina data set.
    let cfg = DatagenConfig::small();
    println!(
        "generating {} reads x {} bp over {} chromosomes of {} bp ...",
        cfg.num_reads, cfg.read_len, cfg.num_chromosomes, cfg.chrom_len
    );
    let dataset = Dataset::generate(&cfg);

    // 2. The Figure 4 extended-SQL script.
    let script = figure4_script(0);
    println!("\n--- extended SQL (paper Figure 4) ---\n{script}\n");

    // 3. The logical plan of the inner query, node -> hardware module.
    let stmts = parse_script(&script)?;
    if let Some(genesis::sql::ast::Statement::ForLoop { body, .. }) =
        stmts.iter().find(|s| matches!(s, genesis::sql::ast::Statement::ForLoop { .. }))
    {
        if let Some(genesis::sql::ast::Statement::Insert { query, .. }) =
            body.iter().find(|s| matches!(s, genesis::sql::ast::Statement::Insert { .. }))
        {
            println!("--- logical plan of Q3 (module mapping, §III-D) ---");
            println!("{}", explain(&lower_query(query), &ModuleRegistry::with_builtins()));
        }
    }

    // 4. Compile the whole script; the compiler recognizes it as the
    //    hand-built Figure 7 kernel and picks a replication factor.
    let compiler = Compiler::new(DeviceConfig::default());
    let compiled = compiler.compile_sql(&script, &Catalog::new())?;
    assert_eq!(compiled.kernel(), Some(&CompiledKernel::CountMatchingBases));
    println!("compiled kernel: {:?} (the Figure 7 pipeline)", CompiledKernel::CountMatchingBases);
    println!("{}", compiled.replication().summary());
    println!();

    // 5. Run the simulated accelerator and verify against software.
    let device = DeviceConfig::default().with_pipelines(8).with_psize(250_000);
    let accel = CountMatchingBases::new(device.clone());
    let run = accel.run(&dataset.reads, &dataset.genome)?;
    let oracle = count_matching_bases_sw(&dataset.reads, &dataset.genome);
    assert_eq!(run.counts, oracle, "hardware result must match the software oracle");

    let total_bases: u64 = dataset.reads.iter().map(|r| u64::from(r.len())).sum();
    let matched: u64 = run.counts.iter().map(|&c| u64::from(c)).sum();
    println!("reads processed        : {}", dataset.reads.len());
    println!("bases processed        : {total_bases}");
    println!("bases matching ref     : {matched} ({:.2}%)", 100.0 * matched as f64 / total_bases as f64);
    println!("accelerator invocations: {}", run.stats.invocations);
    println!("simulated cycles       : {}", run.stats.cycles);
    println!("modeled accel time     : {:?}", device.cycles_to_time(run.stats.cycles));
    println!(
        "DMA                    : {} B in, {} B out",
        run.stats.dma_in_bytes, run.stats.dma_out_bytes
    );
    println!("\nhardware result == software oracle for all {} reads ✓", run.counts.len());
    Ok(())
}
