//! Per-position pileup and mate-distance histograms, from SQL to the
//! simulated device through the general compiler — no hand-built
//! accelerator (contrast with `examples/coverage.rs`, which assembles
//! the module graph by hand).
//!
//! `ReadExplode` and `PosExplode` are library modules
//! (`genesis::core::library::ModuleRegistry`), so the compiler places
//! them like any relational node and sizes replication from the
//! post-explode flit rate.
//!
//! Run with: `cargo run --release --example pileup`

use genesis::core::compile::Compiler;
use genesis::core::device::DeviceConfig;
use genesis::sql::{Catalog, Script};
use genesis::types::{Cigar, Column, DataType, Field, Schema, Table};

const COVERAGE_SQL: &str = "\
    CREATE TABLE Bases AS\n\
    ReadExplode (READS.POS, READS.CIGAR, READS.SEQ)\n\
    FROM READS\n\
    INSERT INTO Coverage\n\
    SELECT POS, COUNT(*)\n\
    FROM Bases\n\
    WHERE POS < 4096\n\
    GROUP BY POS\n\
    ORDER BY POS";

const MATE_DISTANCE_SQL: &str = "\
    CREATE TABLE RefPos AS\n\
    PosExplode (REF.SEQ, REF.POS)\n\
    FROM REF\n\
    CREATE TABLE Joined AS\n\
    SELECT *\n\
    FROM PAIRS\n\
    INNER JOIN RefPos\n\
    ON PAIRS.POS = RefPos.POS\n\
    CREATE TABLE Dist AS\n\
    SELECT PAIRS.MPOS - PAIRS.POS AS D\n\
    FROM Joined\n\
    INSERT INTO MateHist\n\
    SELECT D, COUNT(*)\n\
    FROM Dist\n\
    GROUP BY D\n\
    ORDER BY D";

/// Synthetic coordinate-sorted reads with mixed CIGARs, paired
/// positions, and one covering reference row.
fn catalog(reads: usize) -> Catalog {
    let cigars: [(&str, usize); 4] = [("8M", 8), ("4M1I3M", 8), ("2S6M", 8), ("3M2D5M", 8)];
    let mut pos = Vec::new();
    let mut packed = Vec::new();
    let mut seqs = Vec::new();
    let mut mpos = Vec::new();
    for i in 0..reads {
        let (cg, qlen) = cigars[i % cigars.len()];
        let p = (i as u32) * 3 + 1;
        pos.push(p);
        packed.push(cg.parse::<Cigar>().unwrap().pack().unwrap());
        seqs.push((0..qlen).map(|j| ((i + j) % 4) as u8).collect::<Vec<u8>>());
        mpos.push(p + 40 + (i as u32 % 16));
    }
    let mut cat = Catalog::new();
    cat.register(
        "READS",
        Table::from_columns(
            Schema::new(vec![
                Field::new("POS", DataType::U32),
                Field::new("CIGAR", DataType::ListU16),
                Field::new("SEQ", DataType::ListU8),
            ]),
            vec![Column::U32(pos.clone()), Column::ListU16(packed), Column::ListU8(seqs)],
        )
        .unwrap(),
    );
    cat.register(
        "PAIRS",
        Table::from_columns(
            Schema::new(vec![Field::new("POS", DataType::U32), Field::new("MPOS", DataType::U32)]),
            vec![Column::U32(pos), Column::U32(mpos)],
        )
        .unwrap(),
    );
    let ref_len = reads * 3 + 64;
    cat.register(
        "REF",
        Table::from_columns(
            Schema::new(vec![Field::new("POS", DataType::U32), Field::new("SEQ", DataType::ListU8)]),
            vec![
                Column::U32(vec![0]),
                Column::ListU8(vec![(0..ref_len).map(|j| (j % 4) as u8).collect()]),
            ],
        )
        .unwrap(),
    );
    cat
}

fn run(
    name: &str,
    script: &str,
    cat: &Catalog,
    out: &str,
    preview: usize,
) -> Result<(), Box<dyn std::error::Error>> {
    println!("--- {name} ---\n{script}\n");
    let compiled = Compiler::new(DeviceConfig::default()).compile_sql(script, cat)?;
    println!("{}", compiled.explain());
    let (hw, stats) = compiled.execute(cat)?;

    // Software oracle: the same script on the SQL engine.
    let mut sw_cat = cat.clone_tables();
    Script::parse(script)?.run(&mut sw_cat)?;
    let sw = sw_cat.table(out).expect("oracle output");
    assert_eq!(hw.num_rows(), sw.num_rows());
    for r in 0..hw.num_rows() {
        assert_eq!(hw.row(r), sw.row(r), "row {r}");
    }

    println!("{} rows (first {preview}):", hw.num_rows());
    for r in 0..hw.num_rows().min(preview) {
        println!("  {:?}", hw.row(r));
    }
    println!(
        "simulated cycles: {}, flits: {} — matches the software oracle ✓\n",
        stats.cycles, stats.total_flits
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cat = catalog(256);
    run("per-position coverage (pileup depth)", COVERAGE_SQL, &cat, "Coverage", 8)?;
    run("mate-distance histogram", MATE_DISTANCE_SQL, &cat, "MateHist", 16)?;
    Ok(())
}
