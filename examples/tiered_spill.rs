//! Spilling a million-group aggregate through the memory tiers
//! (`cargo run --release --example tiered_spill`).
//!
//! Historically the compiler rejected GROUP BY domains beyond 65,536
//! keys: the histogram scratchpads had to fit the modeled on-chip SPM.
//! With tiered memory (`GENESIS_TIERS`, or `DeviceConfig::with_tiers`)
//! oversized scratchpads page against device DRAM and host DRAM behind a
//! PCIe link model instead, so the same pipeline runs a 2^20-group
//! aggregate whose two ~8 MiB histograms are 8× the 1 MiB modeled SPM —
//! bit-identical to the software engine, with the added latency
//! attributed to the `spill-wait` stall bucket and the page traffic
//! reported in the `tier.*` counters.

use genesis::core::compile::Compiler;
use genesis::core::{DeviceConfig, GenesisHost, JobSpec, TierConfig};
use genesis::sql::ast::{AggFn, ColRef, Expr, SelectItem};
use genesis::sql::exec::{execute_plan, Env};
use genesis::sql::{Catalog, LogicalPlan};
use genesis::types::{Column, DataType, Field, Schema, Table};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 2^20 groups, one row per group: SELECT K, COUNT, SUM(W) FROM T
    // GROUP BY K ORDER BY K. The histogram domain is max(K)+1 = 1,048,576,
    // so each of the two per-group scratchpads is ~8 MiB.
    const DOMAIN: u32 = 1 << 20;
    let ks: Vec<u32> = (0..DOMAIN).collect();
    let ws: Vec<u32> = ks.iter().map(|k| k % 251).collect();
    let schema =
        Schema::new(vec![Field::new("K", DataType::U32), Field::new("W", DataType::U32)]);
    let table = Table::from_columns(schema, vec![Column::U32(ks), Column::U32(ws)])?;
    let mut catalog = Catalog::new();
    catalog.register("T", table);
    let plan = LogicalPlan::Sort {
        input: Box::new(LogicalPlan::Aggregate {
            input: Box::new(LogicalPlan::Scan { table: "T".into(), partition: None }),
            items: vec![
                SelectItem::Expr { expr: Expr::Col(ColRef::bare("K")), alias: None },
                SelectItem::Agg { func: AggFn::Count, arg: None, alias: None },
                SelectItem::Agg { func: AggFn::Sum, arg: Some(Expr::Col(ColRef::bare("W"))), alias: None },
            ],
            group_by: vec![ColRef::bare("K")],
        }),
        keys: vec![(ColRef::bare("K"), false)],
    };

    // Without tiers this domain is rejected outright.
    let untiered = Compiler::new(DeviceConfig::small()).compile(&plan, &catalog);
    println!("without tiers: {}\n", untiered.err().map(|e| e.to_string()).unwrap_or_default());

    // 1 MiB of modeled SPM — 8× oversubscribed by the two histograms.
    let tiers = TierConfig { spm_bytes: 1 << 20, ..TierConfig::default() };
    let cfg = DeviceConfig::small().with_tiers(tiers).with_psize(DOMAIN + 1);
    let compiled = Compiler::new(cfg).compile(&plan, &catalog)?;
    println!("with tiers:    {}", compiled.replication().summary());

    // Run through the host front door and check against the software
    // engine bit for bit.
    let host = GenesisHost::new();
    let handle = host.submit(JobSpec::new(compiled), &catalog)?;
    let (hw, stats) = handle.wait()?;
    let sw = execute_plan(&plan, &catalog, &Env::default())?;
    assert_eq!(hw.num_rows(), sw.num_rows());
    for r in 0..hw.num_rows() {
        assert_eq!(hw.row(r), sw.row(r), "row {r} diverged from the software engine");
    }
    println!("result:        {} groups, bit-identical to the software engine", hw.num_rows());

    println!("stats:         {stats}");
    let [active, input, backpr, mem, spill] = stats.stall_fractions();
    println!(
        "module-cycles: active {:.1}% / input {:.1}% / backpressure {:.1}% / \
         memory {:.1}% / spill-wait {:.1}%",
        active * 100.0,
        input * 100.0,
        backpr * 100.0,
        mem * 100.0,
        spill * 100.0
    );

    println!("\ntier.* counters from the host metrics registry:");
    for (name, value) in host.metrics_snapshot().counters {
        if name.contains("tier.") {
            println!("  {name} = {value}");
        }
    }
    Ok(())
}
