//! Observability walk-through: trace an accelerated metadata-update run,
//! export a Perfetto-loadable Chrome trace plus a stall flame table, and
//! print the host-side metrics the `GenesisHost` API records.
//!
//! Run with: `cargo run --release --example observability`
//!
//! Tracing can also be enabled on any example or binary without code
//! changes: `GENESIS_TRACE=trace.json cargo run --release --example
//! metadata_update`, then load `trace.json` at <https://ui.perfetto.dev>.

use genesis::core::accel::metadata::accelerated_metadata_update;
use genesis::core::device::DeviceConfig;
use genesis::core::host::{GenesisHost, JobOutput};
use genesis::datagen::{DatagenConfig, Dataset};
use genesis::obs::TraceConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = Dataset::generate(&DatagenConfig::tiny());
    let trace_path = std::env::temp_dir().join("genesis_observability_trace.json");

    // 1. A traced accelerator run: every batch system records per-module
    //    active/stall spans and queue-depth samples, merged into one
    //    Chrome trace on completion.
    let device = DeviceConfig::small().with_trace(TraceConfig::to_path(&trace_path));
    let mut reads = dataset.reads.clone();
    let result = accelerated_metadata_update(&mut reads, &dataset.genome, &device)?;
    println!("accelerated metadata update: {}", result.stats);
    println!("\nChrome trace written to {}", trace_path.display());
    println!("  -> load it at https://ui.perfetto.dev (or chrome://tracing)");

    // 2. The sibling flame table: per-module cycle attribution, sorted by
    //    parked cycles, written next to the trace.
    let stalls_path = format!("{}.stalls.txt", trace_path.display());
    println!("\nstall flame table ({stalls_path}):\n");
    println!("{}", std::fs::read_to_string(&stalls_path)?);

    // 3. Host-side metrics: the GenesisHost records wall-clock spans for
    //    every API call into a lock-free registry.
    let host = GenesisHost::new();
    host.configure_mem(0, "READS.QUAL", vec![7; 4096], 1);
    host.run_genesis(
        0,
        Box::new(|inputs| {
            let mut out = JobOutput::default();
            out.outputs.insert("n_cols".into(), vec![inputs.len() as u8]);
            Ok(out)
        }),
    )?;
    host.wait_genesis(0)?;
    let _ = host.genesis_flush(0)?;
    println!("host metrics snapshot:\n\n{}", host.metrics_snapshot());
    Ok(())
}
