//! The accelerated Mark Duplicates stage (paper §IV-B, Figure 10) on a
//! synthetic flow cell, using the paper's non-blocking host API shape.
//!
//! Run with: `cargo run --release --example mark_duplicates`

use genesis::core::accel::markdup::accelerated_mark_duplicates;
use genesis::core::device::DeviceConfig;
use genesis::datagen::{DatagenConfig, Dataset};
use genesis::gatk::markdup::mark_duplicates;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = DatagenConfig::small();
    let dataset = Dataset::generate(&cfg);
    println!(
        "{} reads ({} duplicate-set members by construction)",
        dataset.reads.len(),
        dataset.truth.iter().filter(|t| t.is_pcr_copy).count()
    );

    // Software baseline (the GATK4-analog stage).
    let mut sw_reads = dataset.reads.clone();
    let t = Instant::now();
    let sw_report = mark_duplicates(&mut sw_reads);
    let sw_time = t.elapsed();
    println!("\nsoftware:   {sw_report:?} in {sw_time:?}");

    // Accelerated stage: quality sums in hardware, resolution on the host.
    let mut hw_reads = dataset.reads.clone();
    let result = accelerated_mark_duplicates(&mut hw_reads, &DeviceConfig::default())?;
    println!("accelerated: {:?}", result.report);
    println!("  breakdown : {}", result.breakdown);
    println!(
        "  (host portion dominates — the paper's §V-B observation that the\n\
         \u{20}  un-accelerated software part of mark duplicates bounds its speedup)"
    );

    assert_eq!(result.report, sw_report);
    assert_eq!(sw_reads, hw_reads);
    println!("\naccelerated output identical to software output ✓");

    // Ground-truth sanity: every read the generator duplicated shares its
    // template with at least one surviving read.
    let flagged = hw_reads.iter().filter(|r| r.flags.is_duplicate()).count();
    println!(
        "flagged {} of {} reads as duplicates ({:.1}%)",
        flagged,
        hw_reads.len(),
        100.0 * flagged as f64 / hw_reads.len() as f64
    );
    Ok(())
}
