//! Fault-tolerant host runtime demo: a seeded fault schedule injects DMA
//! errors, transient device faults, and memory-latency spikes while the
//! metadata accelerator runs; the retry/backoff loop and the software
//! oracle fallback recover bit-identical output, and the recovery is
//! visible in the `FaultReport` and the host metrics snapshot.
//!
//! Run with: `cargo run --release --example fault_tolerance`
//!
//! The same schedule can be applied to any run via the environment:
//! `GENESIS_FAULTS="dma=0.15,device=0.05,mem=0.002:200,seed=7" \
//!  cargo run --release --example metadata_update`

use genesis::core::accel::metadata::MetadataAccel;
use genesis::core::device::DeviceConfig;
use genesis::core::fault::FaultConfig;
use genesis::core::host::{GenesisHost, JobOutput};
use genesis::datagen::{DatagenConfig, Dataset};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = Arc::new(Dataset::generate(&DatagenConfig::tiny()));

    // Ground truth: a fault-free run.
    let clean_dev = DeviceConfig::small();
    let (clean, _) = MetadataAccel::new(clean_dev).run(&dataset.reads, &dataset.genome)?;

    // A deterministic, seed-replayable schedule: 15% of DMA transfers
    // fail, 5% of jobs hit a transient device fault, 0.2% of memory
    // reads take a 200-cycle latency spike. Same seed → same faults.
    let faults = FaultConfig::from_spec("dma=0.15,device=0.05,mem=0.002:200,seed=7")
        .expect("valid fault spec");
    println!("fault schedule: {faults:?}\n");

    let host = GenesisHost::new();
    let ds = Arc::clone(&dataset);
    host.run_genesis(
        0,
        Box::new(move |_| {
            let dev = DeviceConfig::small().with_faults(faults);
            let (tags, stats) = MetadataAccel::new(dev).run(&ds.reads, &ds.genome)?;
            let mut out = JobOutput { stats, ..JobOutput::default() };
            out.outputs.insert("NM".into(), tags.nm.iter().flat_map(|v| v.to_le_bytes()).collect());
            Ok(out)
        }),
    )?;
    host.wait_genesis(0)?;
    let out = host.genesis_flush(0)?;

    // Despite the injected faults, the recovered output is bit-identical.
    let nm: Vec<u32> = out.outputs["NM"]
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
        .collect();
    assert_eq!(nm, clean.nm, "recovered NM tags match the fault-free run");
    println!("recovered output bit-identical to the fault-free run ✓\n");

    println!("fault report: {}", out.stats.faults);
    println!("\nhost metrics snapshot:\n{}", host.metrics_snapshot());
    Ok(())
}
