//! Compiling a novel query to hardware (`cargo run --release --example compile_query`).
//!
//! Builds a query outside the paper's three hand-built accelerator
//! shapes — a filtered per-partition GROUP BY with a computed projection —
//! compiles it through the general plan→pipeline compiler, runs it on the
//! simulated device at the cost-model-chosen replication factor, and
//! checks the result against the software engine bit for bit. The same
//! compiled plan is then resubmitted through the consolidated
//! `GenesisHost::submit` front door with a deadline and software oracle.

use genesis::core::compile::Compiler;
use genesis::core::{DeviceConfig, GenesisHost, JobSpec};
use genesis::sql::ast::{AggFn, BinOp, ColRef, Expr, SelectItem};
use genesis::sql::exec::{execute_plan, Env};
use genesis::sql::{Catalog, LogicalPlan};
use genesis::types::{Column, DataType, Field, Schema, Table};
use std::time::Duration;

fn col(name: &str) -> Expr {
    Expr::Col(ColRef::bare(name))
}

fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
    Expr::Bin { op, lhs: Box::new(lhs), rhs: Box::new(rhs) }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A synthetic event table: 10k rows of (BIN, VALUE).
    let n = 10_000u32;
    let bins: Vec<u32> = (0..n).map(|i| i.wrapping_mul(2654435761) % 64).collect();
    let values: Vec<u32> = (0..n).map(|i| i.wrapping_mul(40503) % 1_000).collect();
    let schema = Schema::new(vec![Field::new("BIN", DataType::U32), Field::new("VALUE", DataType::U32)]);
    let table = Table::from_columns(schema, vec![Column::U32(bins), Column::U32(values)])?;
    let mut catalog = Catalog::new();
    catalog.register("EVENTS", table);

    // SELECT BIN, COUNT, SUM(VALUE) FROM EVENTS
    //  WHERE VALUE < 500 GROUP BY BIN ORDER BY BIN
    // — none of the three seed kernels match this shape.
    let plan = LogicalPlan::Sort {
        input: Box::new(LogicalPlan::Aggregate {
            input: Box::new(LogicalPlan::Filter {
                input: Box::new(LogicalPlan::Scan { table: "EVENTS".into(), partition: None }),
                pred: bin(BinOp::Lt, col("VALUE"), Expr::Number(500)),
            }),
            items: vec![
                SelectItem::Expr { expr: col("BIN"), alias: None },
                SelectItem::Agg { func: AggFn::Count, arg: None, alias: None },
                SelectItem::Agg {
                    func: AggFn::Sum,
                    arg: Some(col("VALUE")),
                    alias: Some("TOTAL".into()),
                },
            ],
            group_by: vec![ColRef::bare("BIN")],
        }),
        keys: vec![(ColRef::bare("BIN"), false)],
    };

    // 1. Compile: node → module graph, replication from the cost model.
    let compiler = Compiler::new(DeviceConfig::default());
    let compiled = compiler.compile(&plan, &catalog)?;
    println!("--- compiled pipeline ---");
    println!("{}", compiled.explain());

    // 2. Simulate at the chosen factor and diff against the software engine.
    let (hw, stats) = compiled.execute(&catalog)?;
    let sw = execute_plan(&plan, &catalog, &Env::default())?;
    assert_eq!(hw.num_rows(), sw.num_rows());
    for r in 0..hw.num_rows() {
        assert_eq!(hw.row(r), sw.row(r), "row {r} differs");
    }
    println!(
        "hardware == software for all {} groups ({} simulated cycles, {} B DMA in)",
        hw.num_rows(),
        stats.cycles,
        stats.dma_in_bytes
    );

    // 3. The same plan through the host runtime: worker thread, deadline,
    //    software oracle as the graceful-degradation path.
    let host = GenesisHost::new();
    // The oracle must be `Send` (it runs on the worker thread), so it
    // captures a pre-computed software result, not the catalog.
    let oracle_result = sw.clone();
    let spec = JobSpec::new(compiler.compile(&plan, &catalog)?)
        .with_deadline(Duration::from_secs(60))
        .with_oracle(move || Ok(oracle_result));
    let handle = host.submit(spec, &catalog)?;
    let (table, stats) = handle.wait()?;
    assert_eq!(table.num_rows(), sw.num_rows());
    println!(
        "host.submit(JobSpec) returned the same {} groups (fallback jobs: {})",
        table.num_rows(),
        stats.faults.fallback_jobs
    );
    Ok(())
}
