//! The extended-SQL front end on its own (paper §III-B): registers the
//! READS/REF tables of one partition, runs the Figure 4 script on the
//! *software* engine, and prints the per-read results — the execution flow
//! of paper Figure 5.
//!
//! Run with: `cargo run --release --example sql_query`

use genesis::core::compile::figure4_script;
use genesis::datagen::{DatagenConfig, Dataset};
use genesis::sql::{Catalog, Script};
use genesis::types::table::{reads_to_table, ref_segment_to_table};
use genesis::types::{PartitionScheme, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = DatagenConfig::tiny();
    let dataset = Dataset::generate(&cfg);

    // Partition the tables as §III-B prescribes and register partition 0
    // of chromosome 1.
    let scheme = PartitionScheme::new(20_000, cfg.read_len);
    let parts = scheme.partition_reads(&dataset.reads);
    let part = &parts[0];
    let ref_part = scheme
        .reference_partition(&dataset.genome, part.pid)
        .expect("partition 0 exists");

    let reads: Vec<_> =
        part.read_indices.iter().map(|&i| dataset.reads[i as usize].clone()).collect();
    let mut catalog = Catalog::new();
    catalog.register_partition("READS", 0, reads_to_table(&reads)?);
    let snp: Vec<bool> = ref_part.is_snp.iter().collect();
    catalog.register_partition(
        "REF",
        0,
        ref_segment_to_table(part.pid.chrom.id(), ref_part.start, &ref_part.seq, &snp),
    );

    println!(
        "partition {} holds {} reads over reference [{}, {})",
        part.pid,
        reads.len(),
        ref_part.start,
        ref_part.start + ref_part.len() as u32
    );

    // Run the Figure 4 script on the software engine.
    let script = figure4_script(0);
    Script::parse(&script)?.run(&mut catalog)?;

    let out = catalog.table("Output").expect("script produces Output");
    println!("\nOutput table ({} rows = one per read):", out.num_rows());
    let show = out.num_rows().min(10);
    for (r, read) in reads.iter().enumerate().take(show) {
        println!(
            "  read {:<12} POS {:>6} CIGAR {:<12} matching bases = {}",
            read.name,
            read.pos,
            read.cigar.to_string(),
            out.get(r, "SUM")?
        );
    }
    if out.num_rows() > show {
        println!("  ... {} more", out.num_rows() - show);
    }

    // Cross-check a couple of rows against a direct computation.
    let oracle = genesis::core::accel::example::count_matching_bases_sw(&reads, &dataset.genome);
    for (r, &expected) in oracle.iter().enumerate().take(out.num_rows()) {
        assert_eq!(out.get(r, "SUM")?, Value::U64(u64::from(expected)));
    }
    println!("\nall rows agree with the direct per-read computation ✓");
    Ok(())
}
