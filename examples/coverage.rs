//! Extending Genesis beyond the paper's three stages (§IV-E): a
//! depth-of-coverage accelerator assembled from the same library modules,
//! driven through the paper's non-blocking host API so the host overlaps
//! its own work with the accelerator run.
//!
//! Run with: `cargo run --release --example coverage`

use genesis::core::accel::coverage::{coverage_sw, CoverageAccel, CoverageRun};
use genesis::core::device::DeviceConfig;
use genesis::core::host::{GenesisHost, JobOutput};
use genesis::datagen::{DatagenConfig, Dataset};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = DatagenConfig::small();
    let dataset = Arc::new(Dataset::generate(&cfg));
    println!("{} reads over {} bp of reference", dataset.reads.len(), dataset.genome.total_bases());

    // Drive the accelerator through the §III-E host API: configure inputs,
    // launch non-blocking, overlap host work, then flush results.
    let host = GenesisHost::new();
    host.configure_mem(0, "READS", vec![0], 1); // inputs are staged by name
    let ds = Arc::clone(&dataset);
    host.run_genesis(
        0,
        Box::new(move |_inputs| {
            let accel = CoverageAccel::new(DeviceConfig::default().with_psize(250_000));
            let run: CoverageRun = accel
                .run(&ds.reads, &ds.genome)
                .map_err(|e| genesis::core::CoreError::Host(e.to_string()))?;
            let mut out = JobOutput { stats: run.stats, ..JobOutput::default() };
            for (chrom, lane) in run.depth {
                out.outputs.insert(
                    chrom.to_string(),
                    lane.iter().flat_map(|d| d.to_le_bytes()).collect(),
                );
            }
            Ok(out)
        }),
    )?;

    // Host does useful work while the accelerator runs: compute the
    // software oracle concurrently.
    println!("accelerator launched (check_genesis = {})", host.check_genesis(0));
    let oracle = coverage_sw(&dataset.reads, &dataset.genome);
    println!("host finished its own work; polling accelerator ...");

    let out = host.genesis_flush(0)?;
    println!("accelerator done: {} cycles simulated", out.stats.cycles);

    // Verify and summarize.
    let mut max_depth = 0u32;
    let mut covered = 0u64;
    let mut total = 0u64;
    for (chrom, lane) in &oracle {
        let hw_bytes = &out.outputs[&chrom.to_string()];
        let hw: Vec<u32> = hw_bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        assert_eq!(&hw, lane, "{chrom} depth mismatch");
        for &d in lane {
            max_depth = max_depth.max(d);
            covered += u64::from(d > 0);
            total += 1;
        }
    }
    println!("\ncoverage identical to software oracle across {} chromosomes ✓", oracle.len());
    println!(
        "breadth of coverage: {:.1}%   max depth: {max_depth}x   mean depth: {:.1}x",
        100.0 * covered as f64 / total as f64,
        dataset.reads.len() as f64 * f64::from(cfg.read_len) / total as f64
    );
    Ok(())
}
