//! The multi-tenant serving layer: three tenants drive mixed SQL
//! workloads through one [`GenesisServer`] — scripts registered by name,
//! compiled once through the pipeline cache, scheduled fairly across the
//! simulated device pool.
//!
//! Run with: `cargo run --release --example serve`
//! Scale the pool with: `GENESIS_DEVICES=4 cargo run --release --example serve`

use genesis::core::serve::{GenesisServer, Request, ServerConfig};
use genesis::sql::Catalog;
use genesis::types::{Column, DataType, Field, Schema, Table};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small quality-score table standing in for a READS partition.
    const ROWS: u32 = 4_096;
    let qual: Vec<u32> = (0..ROWS).map(|i| i.wrapping_mul(2654435761) % 64).collect();
    let pos: Vec<u32> = (0..ROWS).map(|i| i % 128).collect();
    let table = Table::from_columns(
        Schema::new(vec![Field::new("QUAL", DataType::U32), Field::new("POS", DataType::U32)]),
        vec![Column::U32(qual), Column::U32(pos)],
    )?;
    let mut catalog = Catalog::new();
    catalog.register("READS", table);

    // The pool size comes from GENESIS_DEVICES (default 1).
    let server = GenesisServer::new(ServerConfig::from_env()?.start_paused());
    println!("serving on {} simulated device(s)", server.devices());

    // Named workloads tenants submit by name — parsed once here,
    // compiled per-submit through the LRU cache.
    server.register_script("sum_quality", "INSERT INTO Out SELECT SUM(QUAL) FROM READS")?;
    server.register_script(
        "high_quality",
        "INSERT INTO Out SELECT POS, QUAL FROM READS WHERE QUAL > 48",
    )?;
    server.register_script("min_max", "INSERT INTO Out SELECT MIN(QUAL), MAX(QUAL) FROM READS")?;

    // Three tenants, mixed workloads, submitted while dispatch is paused
    // so the fair-queue order is easy to see in the schedule log.
    let mix = [
        ("alice", "sum_quality"),
        ("alice", "high_quality"),
        ("alice", "sum_quality"),
        ("bob", "min_max"),
        ("bob", "sum_quality"),
        ("carol", "high_quality"),
        ("carol", "min_max"),
    ];
    let tickets: Vec<_> = mix
        .iter()
        .map(|(tenant, script)| server.submit(Request::script(*tenant, *script), &catalog))
        .collect::<Result<_, _>>()?;
    server.resume();

    println!("\nresults:");
    for ((tenant, script), ticket) in mix.iter().zip(tickets) {
        let (out, stats) = ticket.wait()?;
        println!(
            "  {tenant:<6} {script:<13} -> {:>4} rows, {:>7} cycles{}",
            out.num_rows(),
            stats.cycles,
            if stats.reconfig_cycles > 0 { " (cache miss: paid reconfig)" } else { "" }
        );
    }

    // The schedule log: round-robin across tenants, FIFO within each.
    println!("\ndispatch order (fair queuing):");
    for rec in server.schedule_log() {
        println!(
            "  #{:<2} {:<6} job {:<2} on device {} ({} us queued)",
            rec.seq,
            rec.tenant,
            rec.job_id,
            rec.device,
            rec.start_us.saturating_sub(rec.queued_us)
        );
    }

    let cache = server.cache_stats();
    println!(
        "\npipeline cache: {} hits / {} misses / {} evictions ({} of {} entries live)",
        cache.hits, cache.misses, cache.evictions, cache.len, cache.capacity
    );

    let busy = server.modeled_device_time();
    println!("modeled device busy time:");
    for (d, t) in busy.iter().enumerate() {
        println!("  device {d}: {t:.3?}");
    }

    let snap = server.metrics_snapshot();
    println!("\nper-tenant latency (ns):");
    for tenant in ["alice", "bob", "carol"] {
        let h = &snap.histograms[&format!("server.tenant.{tenant}.latency_ns")];
        println!("  {tenant:<6} n={} mean={:.0} max={}", h.count, h.mean(), h.max);
    }
    Ok(())
}
