//! The accelerated BQSR stage (paper §IV-D, Figure 12): covariate-table
//! construction in hardware, quality-score update in host software, and a
//! demonstration that recalibration recovers the injected lane bias.
//!
//! Run with: `cargo run --release --example bqsr`

use genesis::core::accel::bqsr::accelerated_bqsr_table;
use genesis::core::device::DeviceConfig;
use genesis::datagen::{DatagenConfig, Dataset};
use genesis::gatk::bqsr::{apply_recalibration, build_covariate_table};
use genesis::types::ReadRecord;

fn mean_qual(reads: &[ReadRecord], rg: u8) -> f64 {
    let mut sum = 0u64;
    let mut n = 0u64;
    for r in reads.iter().filter(|r| r.read_group == rg) {
        for q in &r.qual {
            sum += u64::from(q.value());
            n += 1;
        }
    }
    sum as f64 / n.max(1) as f64
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = DatagenConfig::small();
    let mut dataset = Dataset::generate(&cfg);
    println!(
        "{} reads across {} read groups (lanes); lane biases injected by the\n\
         generator: lane 0: none, lane 1: -2.5 Phred, lane 2: +1.5, lane 3: -4.0",
        dataset.reads.len(),
        cfg.read_groups
    );

    // Covariate-table construction on the simulated accelerator.
    let device = DeviceConfig::default().with_pipelines(8).with_psize(250_000);
    let result = accelerated_bqsr_table(
        &dataset.reads,
        &dataset.genome,
        cfg.read_groups,
        cfg.read_len,
        &device,
    )?;
    println!("\naccelerator : {} observations, {} errors", result.table.total_observations(), result.table.total_errors());
    println!("  cycles    : {}", result.stats.cycles);
    println!("  breakdown : {}", result.breakdown);

    // The software stage must agree exactly.
    let sw = build_covariate_table(&dataset.reads, &dataset.genome, cfg.read_groups, cfg.read_len);
    assert_eq!(result.table, sw, "hardware covariate table must equal software's");
    println!("covariate table identical to software construction ✓");

    // Quality update (host software, §IV-D) and bias recovery.
    let before: Vec<f64> = (0..cfg.read_groups).map(|g| mean_qual(&dataset.reads, g)).collect();
    let _ = apply_recalibration(&mut dataset.reads, &dataset.genome, &result.table);
    let after: Vec<f64> = (0..cfg.read_groups).map(|g| mean_qual(&dataset.reads, g)).collect();

    println!("\nlane   reported-mean   recalibrated-mean   injected bias");
    for g in 0..cfg.read_groups as usize {
        let bias = ["0.0", "-2.5", "+1.5", "-4.0"][g % 4];
        println!("  {g}        {:6.2}            {:6.2}          {bias}", before[g], after[g]);
    }
    println!(
        "\nrecalibrated scores order lanes by their true error rates — the\n\
         empirical-quality match the paper cites ([18], §IV-D)."
    );
    Ok(())
}
