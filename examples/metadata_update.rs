//! The accelerated Metadata Update stage (paper §IV-C, Figure 11):
//! NM / MD / UQ tags computed by the simulated hardware pipeline and
//! checked against the GATK-analog software stage.
//!
//! Run with: `cargo run --release --example metadata_update`

use genesis::core::accel::metadata::accelerated_metadata_update;
use genesis::core::device::DeviceConfig;
use genesis::datagen::{DatagenConfig, Dataset};
use genesis::gatk::metadata::set_nm_md_uq_tags;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = DatagenConfig::small();
    let dataset = Dataset::generate(&cfg);
    println!("{} reads x {} bp", dataset.reads.len(), cfg.read_len);

    // Software stage.
    let mut sw = dataset.reads.clone();
    let t = Instant::now();
    let report = set_nm_md_uq_tags(&mut sw, &dataset.genome)?;
    let sw_time = t.elapsed();
    println!("\nsoftware    : updated {} reads in {sw_time:?}", report.updated);
    println!("              total NM {} / total UQ {}", report.total_nm, report.total_uq);

    // Accelerated stage (Figure 11 pipeline per partition).
    let mut hw = dataset.reads.clone();
    let device = DeviceConfig::default().with_pipelines(16).with_psize(250_000);
    let result = accelerated_metadata_update(&mut hw, &dataset.genome, &device)?;
    println!("accelerated : updated {} reads", result.updated);
    println!("  cycles    : {}", result.stats.cycles);
    println!("  breakdown : {}", result.breakdown);

    // Every tag must be identical.
    let mut checked = 0;
    for (s, h) in sw.iter().zip(&hw) {
        assert_eq!(s.nm, h.nm, "NM mismatch on {}", s.name);
        assert_eq!(s.md, h.md, "MD mismatch on {}", s.name);
        assert_eq!(s.uq, h.uq, "UQ mismatch on {}", s.name);
        checked += 1;
    }
    println!("\nall NM/MD/UQ tags identical across {checked} reads ✓");

    // Show the paper's Figure 2 example read worked through the system.
    let sample = sw
        .iter()
        .find(|r| r.nm.unwrap_or(0) >= 2 && r.md.is_some())
        .expect("some read has mismatches");
    println!(
        "\nexample read {}: POS {} CIGAR {} -> NM {:?} MD {:?} UQ {:?}",
        sample.name, sample.pos, sample.cigar, sample.nm, sample.md, sample.uq
    );
    Ok(())
}
