//! Regenerates the paper's pipeline diagrams (Figures 7, 10, 11, 12) as
//! Graphviz dot from the actual constructed hardware — the wiring printed
//! here is the wiring the simulator executes.
//!
//! Run with: `cargo run --release --example pipeline_graphs > pipelines.dot`
//! then e.g. `dot -Tsvg -O pipelines.dot`.

use genesis::core::accel::bqsr::BqsrAccel;
use genesis::core::accel::example::CountMatchingBases;
use genesis::core::accel::markdup::QualitySumAccel;
use genesis::core::accel::metadata::MetadataAccel;
use genesis::core::device::DeviceConfig;
use genesis::datagen::{DatagenConfig, Dataset};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A tiny dataset gives the builders real jobs to wire up. One pipeline
    // instance keeps the graphs readable.
    let mut cfg = DatagenConfig::tiny();
    cfg.num_reads = 20;
    let dataset = Dataset::generate(&cfg);
    let device = DeviceConfig::small().with_pipelines(1);

    // Each accelerator exposes its system via a probe run; we rebuild the
    // systems and print before simulating (the graph is wiring, not state).
    let graphs: Vec<(String, String)> = vec![
        (
            "Figure 10 — Mark Duplicates (quality-sum offload)".into(),
            QualitySumAccel::new(device.clone()).dot_graph(&dataset.reads)?,
        ),
        (
            "Figure 7 — example query (count matching bases)".into(),
            CountMatchingBases::new(device.clone()).dot_graph(&dataset.reads, &dataset.genome)?,
        ),
        (
            "Figure 11 — Metadata Update (NM/MD/UQ)".into(),
            MetadataAccel::new(device.clone()).dot_graph(&dataset.reads, &dataset.genome)?,
        ),
        (
            "Figure 12 — BQSR covariate table construction".into(),
            BqsrAccel::new(device, cfg.read_len).dot_graph(&dataset.reads, &dataset.genome)?,
        ),
    ];
    for (title, dot) in graphs {
        eprintln!("--- {title} ---");
        println!("{dot}");
    }
    Ok(())
}
