#!/bin/sh
# Engine-throughput regression gate.
#
# Re-runs the engine_throughput and tier_overhead benches and compares
# each row's throughput (Mflit/s) against the committed BENCH_engine.json
# / BENCH_tier.json snapshots. A row more than 15% BELOW the snapshot
# fails the gate — a real perf regression on the same machine. A row more
# than 15% ABOVE only warns: the snapshot is stale and should be
# refreshed (re-run the bench, commit the new file).
#
#   sh tools/perf_gate.sh          # gate; snapshot files left untouched
#   sh tools/perf_gate.sh --keep   # gate; keep the fresh numbers in the
#                                  # snapshot files on pass
#
# Wall-clock on a loaded host wobbles; the 15% band absorbs normal jitter
# while catching the step-function regressions this gate exists for. The
# benches themselves report a median per row for the same reason.
#
# The serve_throughput load rows are gated too (BENCH_serve.json):
# p99 latency (lower is better, 1.5x band — tail latency on a one-core
# host jitters more than throughput medians) and modeled goodput (higher
# is better, 15% band for the deterministic closed-loop rows, 2x band
# for the open-loop overload row whose admitted-request mix races the
# queue drain).
set -eu
root=$(cd "$(dirname "$0")/.." && pwd)
keep=${1:-}
fail=0

# One "label value" pair per sample row of a snapshot JSON.
rows() {
    awk -F'"' '/"label"/ {
        label = $4
        if (match($0, /"mflits_per_sec": [0-9.]+/)) {
            pair = substr($0, RSTART, RLENGTH)
            sub(/^"mflits_per_sec": /, "", pair)
            print label, pair
        }
    }' "$1"
}

# gate <bench-name> <snapshot-file>: re-run the bench, compare each row.
gate() {
    bench=$1
    snap=$2
    if [ ! -f "$snap" ]; then
        echo "perf_gate: no $(basename "$snap") snapshot to gate against;" >&2
        echo "run: cargo bench --offline -p genesis-bench --bench $bench" >&2
        exit 1
    fi
    old=$(mktemp)
    cp "$snap" "$old"

    echo "perf_gate: running $bench bench..."
    (cd "$root" && cargo bench --offline -p genesis-bench --bench "$bench" >/dev/null 2>&1)

    fresh_rows=$(mktemp)
    rows "$snap" > "$fresh_rows"
    bench_fail=0
    while read -r label fresh; do
        base=$(rows "$old" | awk -v l="$label" '$1 == l { print $2 }')
        if [ -z "$base" ]; then
            echo "  $label: new row at $fresh Mflit/s (no baseline)"
            continue
        fi
        # awk exits 1 on a >15% regression; the loop keeps going so the
        # report always covers every row.
        awk -v l="$label" -v b="$base" -v f="$fresh" 'BEGIN {
            r = f / b
            if (r < 0.85) {
                printf "  FAIL %-22s %.2f -> %.2f Mflit/s (%.0f%% regression)\n", l, b, f, (1 - r) * 100
                exit 1
            } else if (r > 1.15) {
                printf "  warn %-22s %.2f -> %.2f Mflit/s (%.0f%% faster; snapshot stale)\n", l, b, f, (r - 1) * 100
            } else {
                printf "  ok   %-22s %.2f -> %.2f Mflit/s\n", l, b, f
            }
        }' || bench_fail=1
    done < "$fresh_rows"
    rm -f "$fresh_rows"

    if [ "$bench_fail" -ne 0 ] || [ "$keep" != "--keep" ]; then
        cp "$old" "$snap"
    fi
    rm -f "$old"
    if [ "$bench_fail" -ne 0 ]; then
        fail=1
    fi
}

# One "key value fail_band direction" line per gated metric of a
# BENCH_serve.json load row. p99 is lower-better with a 1.5x band;
# modeled goodput is higher-better (0.85 band closed, 0.50 open).
serve_rows() {
    awk -F'"' '/"mode"/ {
        label = $4
        gsub(/ /, "-", label)
        mode = $8
        if (match($0, /"p99_us": [0-9.]+/)) {
            v = substr($0, RSTART, RLENGTH)
            sub(/^"p99_us": /, "", v)
            print label ".p99_us", v, 1.5, "lower"
        }
        if (match($0, /"modeled_goodput_per_sec": [0-9.]+/)) {
            v = substr($0, RSTART, RLENGTH)
            sub(/^"modeled_goodput_per_sec": /, "", v)
            band = (mode == "open") ? 0.50 : 0.85
            print label ".modeled_goodput", v, band, "higher"
        }
    }' "$1"
}

# Re-run the serving bench and gate each load row's p99 + modeled
# goodput against the BENCH_serve.json snapshot.
gate_serve() {
    snap="$root/BENCH_serve.json"
    if [ ! -f "$snap" ]; then
        echo "perf_gate: no BENCH_serve.json snapshot to gate against;" >&2
        echo "run: cargo bench --offline -p genesis-bench --bench serve_throughput" >&2
        exit 1
    fi
    old=$(mktemp)
    cp "$snap" "$old"

    echo "perf_gate: running serve_throughput bench..."
    (cd "$root" && cargo bench --offline -p genesis-bench --bench serve_throughput >/dev/null 2>&1)

    fresh_rows=$(mktemp)
    serve_rows "$snap" > "$fresh_rows"
    bench_fail=0
    while read -r key fresh band dir; do
        base=$(serve_rows "$old" | awk -v k="$key" '$1 == k { print $2 }')
        if [ -z "$base" ]; then
            echo "  $key: new row at $fresh (no baseline)"
            continue
        fi
        awk -v k="$key" -v b="$base" -v f="$fresh" -v band="$band" -v dir="$dir" 'BEGIN {
            r = f / b
            if (dir == "lower") {
                if (r > band) {
                    printf "  FAIL %-38s %.1f -> %.1f (+%.0f%% above %.0f%% band)\n", k, b, f, (r - 1) * 100, (band - 1) * 100
                    exit 1
                } else if (r < 1 / band) {
                    printf "  warn %-38s %.1f -> %.1f (%.0f%% faster; snapshot stale)\n", k, b, f, (1 - r) * 100
                } else {
                    printf "  ok   %-38s %.1f -> %.1f\n", k, b, f
                }
            } else {
                if (r < band) {
                    printf "  FAIL %-38s %.0f -> %.0f (%.0f%% below %.0f%% band)\n", k, b, f, (1 - r) * 100, (1 - band) * 100
                    exit 1
                } else if (r > 1 / band) {
                    printf "  warn %-38s %.0f -> %.0f (+%.0f%%; snapshot stale)\n", k, b, f, (r - 1) * 100
                } else {
                    printf "  ok   %-38s %.0f -> %.0f\n", k, b, f
                }
            }
        }' || bench_fail=1
    done < "$fresh_rows"
    rm -f "$fresh_rows"

    if [ "$bench_fail" -ne 0 ] || [ "$keep" != "--keep" ]; then
        cp "$old" "$snap"
    fi
    rm -f "$old"
    if [ "$bench_fail" -ne 0 ]; then
        fail=1
    fi
}

# chosen_factor of one labeled row in a workloads snapshot.
factor_of() {
    awk -v l="$2" -F'"' '/"label"/ && $4 == l {
        if (match($0, /"chosen_factor": [0-9]+/)) {
            v = substr($0, RSTART, RLENGTH)
            sub(/^"chosen_factor": /, "", v)
            print v
        }
    }' "$1"
}

# Selective-scan pushdown gate (structural, no jitter band): the
# ~10%-selective pushed scan must choose strictly fewer replicas than
# the identical scan with pushdown off. The workloads bench asserts this
# at run time too; this check also pins the committed snapshot.
gate_pushdown() {
    snap="$root/BENCH_workloads.json"
    on=$(factor_of "$snap" pushdown_on)
    off=$(factor_of "$snap" pushdown_off)
    if [ -z "$on" ] || [ -z "$off" ]; then
        echo "perf_gate: BENCH_workloads.json is missing the pushdown rows;" >&2
        echo "run: cargo bench --offline -p genesis-bench --bench workloads" >&2
        fail=1
        return
    fi
    if [ "$on" -lt "$off" ]; then
        echo "  ok   pushdown replication     ${on}x < ${off}x (pushdown on vs off)"
    else
        echo "  FAIL pushdown replication     ${on}x vs ${off}x: pushed selective scan must replicate strictly less"
        fail=1
    fi
}

gate engine_throughput "$root/BENCH_engine.json"
gate tier_overhead "$root/BENCH_tier.json"
gate workloads "$root/BENCH_workloads.json"
gate_pushdown
gate_serve

if [ "$fail" -ne 0 ]; then
    echo "perf_gate: FAILED (snapshots restored)" >&2
    exit 1
fi
if [ "$keep" = "--keep" ]; then
    echo "perf_gate: passed; fresh numbers kept in the snapshot files"
else
    echo "perf_gate: passed (snapshots restored; --keep to adopt fresh numbers)"
fi
